#include "metrics/architecture.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace certkit::metrics {

ArchitectureReport AnalyzeArchitecture(
    const std::vector<ModuleAnalysis>& modules,
    const ArchitectureLimits& limits) {
  ArchitectureReport report;

  // Name-level symbol table: function name -> module index. Ambiguous names
  // (defined in several modules) are dropped from resolution; the coupling
  // proxy favours precision over recall.
  std::unordered_map<std::string, std::size_t> owner;
  std::unordered_set<std::string> ambiguous;
  for (std::size_t mi = 0; mi < modules.size(); ++mi) {
    for (const auto& fm : modules[mi].functions) {
      auto [it, inserted] = owner.emplace(fm.name, mi);
      if (!inserted && it->second != mi) {
        ambiguous.insert(fm.name);
      }
    }
  }
  for (const auto& name : ambiguous) owner.erase(name);

  for (std::size_t mi = 0; mi < modules.size(); ++mi) {
    const ModuleAnalysis& mod = modules[mi];
    report.sizes.push_back(mod.metrics);

    InterfaceStats iface;
    std::int64_t param_sum = 0;
    for (const auto& file : mod.files) {
      for (const auto& type : file.types) {
        if (type.kind == ast::TypeKind::kEnum) continue;
        ++iface.class_count;
        iface.total_public_methods += type.public_method_count;
        iface.max_public_methods =
            std::max(iface.max_public_methods, type.public_method_count);
      }
    }
    for (const auto& fm : mod.functions) {
      param_sum += fm.param_count;
      iface.max_params = std::max(iface.max_params, fm.param_count);
      if (fm.param_count > limits.max_params) {
        ++iface.functions_over_param_limit;
      }
    }
    iface.mean_params = mod.functions.empty()
                            ? 0.0
                            : static_cast<double>(param_sum) /
                                  static_cast<double>(mod.functions.size());
    report.interfaces.push_back(iface);

    CouplingStats cs;
    cs.module = mod.name;
    std::unordered_set<std::size_t> efferent;
    for (const auto& fm : mod.functions) {
      for (const auto& callee : fm.callees) {
        auto it = owner.find(callee);
        if (it == owner.end()) continue;  // unresolved (stdlib, macro, ...)
        if (it->second == mi) {
          ++cs.internal_calls;
        } else {
          ++cs.external_calls;
          efferent.insert(it->second);
        }
      }
    }
    cs.efferent_modules = static_cast<std::int32_t>(efferent.size());
    const std::int64_t resolved = cs.internal_calls + cs.external_calls;
    cs.cohesion = resolved > 0 ? static_cast<double>(cs.internal_calls) /
                                     static_cast<double>(resolved)
                               : 1.0;
    report.coupling.push_back(std::move(cs));
  }
  return report;
}

}  // namespace certkit::metrics
