#include "metrics/halstead.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/check.h"

namespace certkit::metrics {

double HalsteadMetrics::Volume() const {
  const double n = static_cast<double>(Vocabulary());
  if (n < 2.0) return 0.0;
  return static_cast<double>(Length()) * std::log2(n);
}

double HalsteadMetrics::Difficulty() const {
  if (distinct_operands == 0) return 0.0;
  return (static_cast<double>(distinct_operators) / 2.0) *
         (static_cast<double>(total_operands) /
          static_cast<double>(distinct_operands));
}

double HalsteadMetrics::Effort() const { return Difficulty() * Volume(); }

HalsteadMetrics ComputeHalstead(const ast::SourceFileModel& file,
                                const ast::FunctionModel& fn) {
  const auto& toks = file.lexed.tokens;
  CERTKIT_CHECK(fn.body_begin <= fn.body_end && fn.body_end < toks.size());

  HalsteadMetrics m;
  std::unordered_set<std::string_view> operators;
  std::unordered_set<std::string_view> operands;
  for (std::size_t i = fn.body_begin; i <= fn.body_end; ++i) {
    const lex::Token& t = toks[i];
    switch (t.kind) {
      case lex::TokenKind::kKeyword:
      case lex::TokenKind::kPunct:
        ++m.total_operators;
        operators.insert(t.text);
        break;
      case lex::TokenKind::kIdentifier:
      case lex::TokenKind::kNumber:
      case lex::TokenKind::kString:
      case lex::TokenKind::kChar:
        ++m.total_operands;
        operands.insert(t.text);
        break;
    }
  }
  m.distinct_operators = static_cast<std::int64_t>(operators.size());
  m.distinct_operands = static_cast<std::int64_t>(operands.size());
  return m;
}

double MaintainabilityIndex(double volume, int cyclomatic_complexity,
                            int nloc) {
  const double v = std::max(1.0, volume);
  const double loc = std::max(1, nloc);
  const double raw = 171.0 - 5.2 * std::log(v) -
                     0.23 * static_cast<double>(cyclomatic_complexity) -
                     16.2 * std::log(loc);
  return std::clamp(raw * 100.0 / 171.0, 0.0, 100.0);
}

double FunctionMaintainabilityIndex(const ast::SourceFileModel& file,
                                    const ast::FunctionModel& fn) {
  const HalsteadMetrics h = ComputeHalstead(file, fn);
  const FunctionMetrics f = ComputeFunctionMetrics(file, fn);
  return MaintainabilityIndex(h.Volume(), f.cyclomatic_complexity, f.nloc);
}

}  // namespace certkit::metrics
