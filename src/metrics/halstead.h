// certkit metrics: Halstead software-science metrics and the maintainability
// index — the classic complexity measures that accompany cyclomatic
// complexity in verification-cost arguments like the paper's Observation 1.
//
// Token classification (documented, deterministic):
//   operators — keyword and punctuation tokens (';', braces and parentheses
//               included: they are program-structure operators);
//   operands  — identifiers and literals (numbers, strings, chars).
//
// Definitions:
//   n1/n2 — distinct operators/operands;  N1/N2 — total occurrences;
//   vocabulary n = n1 + n2;  length N = N1 + N2;
//   volume V = N log2(n);
//   difficulty D = (n1 / 2) * (N2 / n2);
//   effort E = D * V.
//
// Maintainability index (classic SEI variant, normalized to 0..100):
//   MI = max(0, (171 - 5.2 ln(V) - 0.23 CC - 16.2 ln(NLOC)) * 100 / 171).
#ifndef CERTKIT_METRICS_HALSTEAD_H_
#define CERTKIT_METRICS_HALSTEAD_H_

#include <cstdint>

#include "ast/source_model.h"
#include "metrics/function_metrics.h"

namespace certkit::metrics {

struct HalsteadMetrics {
  std::int64_t distinct_operators = 0;  // n1
  std::int64_t distinct_operands = 0;   // n2
  std::int64_t total_operators = 0;     // N1
  std::int64_t total_operands = 0;      // N2

  std::int64_t Vocabulary() const {
    return distinct_operators + distinct_operands;
  }
  std::int64_t Length() const { return total_operators + total_operands; }
  double Volume() const;
  double Difficulty() const;
  double Effort() const;
};

// Halstead metrics over a function body (tokens [body_begin, body_end]).
HalsteadMetrics ComputeHalstead(const ast::SourceFileModel& file,
                                const ast::FunctionModel& fn);

// Maintainability index from volume, cyclomatic complexity, and NLOC.
// Degenerate inputs (V or NLOC < 1) clamp to the formula's bounds.
double MaintainabilityIndex(double volume, int cyclomatic_complexity,
                            int nloc);

// Convenience: MI of a function, combining both analyses.
double FunctionMaintainabilityIndex(const ast::SourceFileModel& file,
                                    const ast::FunctionModel& fn);

}  // namespace certkit::metrics

#endif  // CERTKIT_METRICS_HALSTEAD_H_
