#include "metrics/module_metrics.h"

#include <algorithm>

namespace certkit::metrics {

ModuleAnalysis AnalyzeModule(std::string name,
                             std::vector<ast::SourceFileModel> files) {
  ModuleAnalysis out;
  out.name = name;
  out.metrics.name = std::move(name);
  out.files = std::move(files);

  std::int64_t cc_sum = 0;
  for (const auto& file : out.files) {
    ++out.metrics.file_count;
    out.metrics.loc += file.lexed.lines.total;
    out.metrics.nloc += file.lexed.lines.code;
    out.metrics.comment_lines += file.lexed.lines.comment_only;
    for (const auto& fn : file.functions) {
      FunctionMetrics m = ComputeFunctionMetrics(file, fn);
      ++out.metrics.function_count;
      cc_sum += m.cyclomatic_complexity;
      out.metrics.max_cc =
          std::max(out.metrics.max_cc, m.cyclomatic_complexity);
      switch (BandOf(m.cyclomatic_complexity)) {
        case ComplexityBand::kLow:
          ++out.metrics.cc_low;
          break;
        case ComplexityBand::kModerate:
          ++out.metrics.cc_moderate;
          break;
        case ComplexityBand::kRisky:
          ++out.metrics.cc_risky;
          break;
        case ComplexityBand::kUnstable:
          ++out.metrics.cc_unstable;
          break;
      }
      out.functions.push_back(std::move(m));
    }
  }
  out.metrics.mean_cc =
      out.metrics.function_count > 0
          ? static_cast<double>(cc_sum) / out.metrics.function_count
          : 0.0;
  return out;
}

}  // namespace certkit::metrics
