#include "metrics/module_metrics.h"

#include <algorithm>

#include "support/check.h"

namespace certkit::metrics {

std::vector<FunctionMetrics> ComputeFileFunctionMetrics(
    const ast::SourceFileModel& file) {
  std::vector<FunctionMetrics> out;
  out.reserve(file.functions.size());
  for (const auto& fn : file.functions) {
    out.push_back(ComputeFunctionMetrics(file, fn));
  }
  return out;
}

ModuleAnalysis MergeModule(
    std::string name, std::vector<ast::SourceFileModel> files,
    std::vector<std::vector<FunctionMetrics>> file_functions) {
  CERTKIT_CHECK(files.size() == file_functions.size());
  ModuleAnalysis out;
  out.name = name;
  out.metrics.name = std::move(name);
  out.files = std::move(files);

  std::int64_t cc_sum = 0;
  for (std::size_t f = 0; f < out.files.size(); ++f) {
    const auto& file = out.files[f];
    ++out.metrics.file_count;
    out.metrics.loc += file.lexed.lines.total;
    out.metrics.nloc += file.lexed.lines.code;
    out.metrics.comment_lines += file.lexed.lines.comment_only;
    for (auto& m : file_functions[f]) {
      ++out.metrics.function_count;
      cc_sum += m.cyclomatic_complexity;
      out.metrics.max_cc =
          std::max(out.metrics.max_cc, m.cyclomatic_complexity);
      switch (BandOf(m.cyclomatic_complexity)) {
        case ComplexityBand::kLow:
          ++out.metrics.cc_low;
          break;
        case ComplexityBand::kModerate:
          ++out.metrics.cc_moderate;
          break;
        case ComplexityBand::kRisky:
          ++out.metrics.cc_risky;
          break;
        case ComplexityBand::kUnstable:
          ++out.metrics.cc_unstable;
          break;
      }
      out.functions.push_back(std::move(m));
    }
  }
  out.metrics.mean_cc =
      out.metrics.function_count > 0
          ? static_cast<double>(cc_sum) / out.metrics.function_count
          : 0.0;
  return out;
}

ModuleAnalysis AnalyzeModule(std::string name,
                             std::vector<ast::SourceFileModel> files) {
  std::vector<std::vector<FunctionMetrics>> file_functions;
  file_functions.reserve(files.size());
  for (const auto& file : files) {
    file_functions.push_back(ComputeFileFunctionMetrics(file));
  }
  return MergeModule(std::move(name), std::move(files),
                     std::move(file_functions));
}

}  // namespace certkit::metrics
