// certkit metrics: per-function code metrics.
//
// Cyclomatic complexity follows Lizard's counting rule (the tool used for the
// paper's Figure 3): CC = 1 + number of decision tokens, where the decision
// tokens are `if`, `for`, `while`, `case`, `catch`, `&&`, `||`, and the
// ternary `?`. `else`, `default` and `do` do not add paths under this rule.
#ifndef CERTKIT_METRICS_FUNCTION_METRICS_H_
#define CERTKIT_METRICS_FUNCTION_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/source_model.h"

namespace certkit::metrics {

struct FunctionMetrics {
  std::string name;
  std::string qualified_name;
  std::int32_t start_line = 0;
  std::int32_t end_line = 0;

  std::int32_t cyclomatic_complexity = 1;
  std::int32_t nloc = 0;         // lines carrying code within the function
  std::int32_t token_count = 0;  // tokens from signature to closing brace
  std::int32_t param_count = 0;
  std::int32_t max_nesting_depth = 0;  // brace depth relative to the body

  std::int32_t return_count = 0;
  std::int32_t goto_count = 0;
  bool is_recursive_direct = false;

  // Distinct names invoked as `name(...)` in the body (fan-out).
  std::vector<std::string> callees;
};

// Computes metrics for `fn`, whose token ranges refer to `file.lexed.tokens`.
FunctionMetrics ComputeFunctionMetrics(const ast::SourceFileModel& file,
                                       const ast::FunctionModel& fn);

// Computes metrics for every function definition in `file`.
std::vector<FunctionMetrics> ComputeAllFunctionMetrics(
    const ast::SourceFileModel& file);

// Cyclomatic-complexity risk bands used in Figure 3 of the paper:
// 1–10 low, 11–20 moderate, 21–50 risky, >50 unstable.
enum class ComplexityBand { kLow, kModerate, kRisky, kUnstable };
ComplexityBand BandOf(std::int32_t cyclomatic_complexity);
const char* ComplexityBandName(ComplexityBand band);

}  // namespace certkit::metrics

#endif  // CERTKIT_METRICS_FUNCTION_METRICS_H_
