// certkit metrics: architectural-design metrics (ISO 26262-6 Table 3;
// the paper's Table 2).
//
// The standard asks for restricted component size, restricted interface
// size, high cohesion within components and restricted coupling between
// components. Without full semantic analysis these are measured structurally:
//  * component size      — LOC / NLOC / function count per module;
//  * interface size      — public methods per class, parameters per function;
//  * coupling            — for each module, the number of distinct callee
//                          names it resolves into *other* modules (efferent
//                          coupling over the name-level call graph);
//  * cohesion            — fraction of resolved calls that stay within the
//                          module (relational cohesion proxy).
#ifndef CERTKIT_METRICS_ARCHITECTURE_H_
#define CERTKIT_METRICS_ARCHITECTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/module_metrics.h"

namespace certkit::metrics {

struct InterfaceStats {
  std::int32_t class_count = 0;
  std::int32_t total_public_methods = 0;
  std::int32_t max_public_methods = 0;   // widest class interface
  std::int32_t max_params = 0;           // widest function signature
  double mean_params = 0.0;
  std::int32_t functions_over_param_limit = 0;  // > limit parameters
};

struct CouplingStats {
  std::string module;
  // Distinct other modules this module calls into.
  std::int32_t efferent_modules = 0;
  // Resolved call-name edges leaving the module.
  std::int64_t external_calls = 0;
  // Resolved call-name edges staying inside the module.
  std::int64_t internal_calls = 0;
  // internal / (internal + external); 1.0 when nothing resolves externally.
  double cohesion = 1.0;
};

struct ArchitectureReport {
  std::vector<ModuleMetrics> sizes;          // per-module component size
  std::vector<InterfaceStats> interfaces;    // parallel to sizes
  std::vector<CouplingStats> coupling;       // parallel to sizes
};

struct ArchitectureLimits {
  std::int64_t max_component_nloc = 10000;  // size limit per component
  std::int32_t max_params = 5;              // interface-width limit
  std::int32_t max_public_methods = 20;
};

// Computes the architectural report over a set of analyzed modules.
ArchitectureReport AnalyzeArchitecture(
    const std::vector<ModuleAnalysis>& modules,
    const ArchitectureLimits& limits = {});

}  // namespace certkit::metrics

#endif  // CERTKIT_METRICS_ARCHITECTURE_H_
