// certkit metrics: per-module aggregation (Figure 3 of the paper).
//
// A "module" is a named set of translation units — in Apollo's case, the
// top-level components (perception, planning, control, ...). The aggregation
// reports LOC, function counts, and the cyclomatic-complexity histogram used
// by Figure 3 (functions with CC over 10 / 20 / 50).
#ifndef CERTKIT_METRICS_MODULE_METRICS_H_
#define CERTKIT_METRICS_MODULE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ast/source_model.h"
#include "metrics/function_metrics.h"

namespace certkit::metrics {

struct ModuleMetrics {
  std::string name;
  std::int32_t file_count = 0;
  std::int64_t loc = 0;   // physical lines
  std::int64_t nloc = 0;  // lines with code
  std::int64_t comment_lines = 0;
  std::int32_t function_count = 0;

  // CC histogram (Figure 3 buckets).
  std::int32_t cc_low = 0;       // 1–10
  std::int32_t cc_moderate = 0;  // 11–20
  std::int32_t cc_risky = 0;     // 21–50
  std::int32_t cc_unstable = 0;  // >50
  std::int32_t max_cc = 0;
  double mean_cc = 0.0;

  std::int32_t FunctionsOverCc(std::int32_t threshold) const {
    // Supports the three thresholds the paper plots.
    if (threshold >= 50) return cc_unstable;
    if (threshold >= 20) return cc_risky + cc_unstable;
    return cc_moderate + cc_risky + cc_unstable;
  }
};

// One analyzed module: parsed files plus their function metrics.
struct ModuleAnalysis {
  std::string name;
  std::vector<ast::SourceFileModel> files;
  std::vector<FunctionMetrics> functions;  // across all files
  ModuleMetrics metrics;
};

// Computes the per-function metrics of one parsed file, in declaration
// order. This is the expensive per-file pass; AnalysisDriver runs it once
// per file on a worker thread and merges with MergeModule.
std::vector<FunctionMetrics> ComputeFileFunctionMetrics(
    const ast::SourceFileModel& file);

// Aggregates files whose function metrics are already computed (one inner
// vector per file, in the same order as `files`) into a ModuleAnalysis.
// Performs no per-function recomputation.
ModuleAnalysis MergeModule(
    std::string name, std::vector<ast::SourceFileModel> files,
    std::vector<std::vector<FunctionMetrics>> file_functions);

// Aggregates `files` (already parsed) into a ModuleAnalysis, computing the
// per-file function metrics serially. Equivalent to ComputeFileFunctionMetrics
// + MergeModule.
ModuleAnalysis AnalyzeModule(std::string name,
                             std::vector<ast::SourceFileModel> files);

}  // namespace certkit::metrics

#endif  // CERTKIT_METRICS_MODULE_METRICS_H_
