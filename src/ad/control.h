// adpilot: control — PID longitudinal control plus pure-pursuit lateral
// control (the Control module of Figure 1).
#ifndef AD_CONTROL_H_
#define AD_CONTROL_H_

#include "ad/common.h"

namespace adpilot {

class PidController {
 public:
  PidController(double kp, double ki, double kd, double integral_limit);
  double Step(double error, double dt);
  void Reset();

 private:
  double kp_, ki_, kd_;
  double integral_limit_;
  double integral_ = 0.0;
  double last_error_ = 0.0;
  bool has_last_ = false;
};

struct ControllerConfig {
  double kp = 0.5, ki = 0.1, kd = 0.02;
  double integral_limit = 2.0;
  double lookahead_base = 3.0;   // meters
  double lookahead_gain = 0.5;   // seconds of travel added to the base
  double wheelbase = 2.8;        // meters
  double max_steering = 0.5;     // radians
};

// Tracks a planned trajectory: returns throttle/brake/steering.
class TrajectoryController {
 public:
  explicit TrajectoryController(const ControllerConfig& config = {});

  ControlCommand Compute(const VehicleState& state,
                         const Trajectory& trajectory, double dt);
  void Reset();

 private:
  ControllerConfig config_;
  PidController speed_pid_;
};

}  // namespace adpilot

#endif  // AD_CONTROL_H_
