// adpilot: common geometry and message types shared by the AD modules.
//
// The pipeline mirrors Figure 1 of the paper: perception (detection +
// tracking) -> prediction -> localization -> routing -> planning -> control
// -> CAN bus. World coordinates are meters in a 2D plane; headings are
// radians, counter-clockwise, 0 along +x.
#ifndef AD_COMMON_H_
#define AD_COMMON_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace adpilot {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  double Dot(const Vec2& o) const { return x * o.x + y * o.y; }
  double Norm() const { return std::sqrt(x * x + y * y); }
  double DistanceTo(const Vec2& o) const { return (*this - o).Norm(); }
};

struct Pose {
  Vec2 position;
  double heading = 0.0;  // radians

  // World -> ego-frame transform (ego at origin, heading along +x).
  Vec2 WorldToEgo(const Vec2& world) const {
    const Vec2 d = world - position;
    const double c = std::cos(-heading), s = std::sin(-heading);
    return {c * d.x - s * d.y, s * d.x + c * d.y};
  }
  Vec2 EgoToWorld(const Vec2& ego) const {
    const double c = std::cos(heading), s = std::sin(heading);
    return {position.x + c * ego.x - s * ego.y,
            position.y + s * ego.x + c * ego.y};
  }
};

// Normalizes an angle to (-pi, pi].
double NormalizeAngle(double angle);

enum class ObstacleClass { kVehicle = 0, kPedestrian = 1 };

// A perceived (or simulated ground-truth) obstacle.
struct Obstacle {
  int id = -1;
  ObstacleClass cls = ObstacleClass::kVehicle;
  Vec2 position;       // world frame, center
  Vec2 velocity;       // world frame, m/s
  double length = 4.5;  // along heading
  double width = 2.0;
  double confidence = 1.0;
};

struct TrajectoryPoint {
  Vec2 position;
  double heading = 0.0;
  double speed = 0.0;       // m/s
  double acceleration = 0.0;
  double t = 0.0;           // relative time, seconds
};

using Trajectory = std::vector<TrajectoryPoint>;

// Vehicle state as reported by localization / chassis.
struct VehicleState {
  Pose pose;
  double speed = 0.0;          // m/s
  double yaw_rate = 0.0;       // rad/s
  double acceleration = 0.0;   // m/s^2
};

struct ControlCommand {
  double throttle = 0.0;  // [0, 1]
  double brake = 0.0;     // [0, 1]
  double steering = 0.0;  // front-wheel angle, radians, [-0.5, 0.5]
};

}  // namespace adpilot

#endif  // AD_COMMON_H_
