#include "ad/control.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace adpilot {

PidController::PidController(double kp, double ki, double kd,
                             double integral_limit)
    : kp_(kp), ki_(ki), kd_(kd), integral_limit_(integral_limit) {}

double PidController::Step(double error, double dt) {
  CERTKIT_CHECK(dt > 0.0);
  integral_ = std::clamp(integral_ + error * dt, -integral_limit_,
                         integral_limit_);
  const double derivative = has_last_ ? (error - last_error_) / dt : 0.0;
  last_error_ = error;
  has_last_ = true;
  return kp_ * error + ki_ * integral_ + kd_ * derivative;
}

void PidController::Reset() {
  integral_ = 0.0;
  last_error_ = 0.0;
  has_last_ = false;
}

TrajectoryController::TrajectoryController(const ControllerConfig& config)
    : config_(config),
      speed_pid_(config.kp, config.ki, config.kd, config.integral_limit) {}

void TrajectoryController::Reset() { speed_pid_.Reset(); }

// REQ-CTRL-001: steering commands shall be bounded by the configured
// maximum front-wheel angle.
// REQ-CTRL-002: on an empty trajectory the controller shall command a
// full stop.
ControlCommand TrajectoryController::Compute(const VehicleState& state,
                                             const Trajectory& trajectory,
                                             double dt) {
  ControlCommand cmd;
  if (trajectory.empty()) {
    cmd.brake = 1.0;  // no plan: full stop
    return cmd;
  }

  // --- longitudinal: PID on the speed of the near-future plan point ---
  std::size_t speed_idx = 0;
  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    if (trajectory[i].t >= dt) {
      speed_idx = i;
      break;
    }
    speed_idx = i;
  }
  const double target_speed = trajectory[speed_idx].speed;
  const double u = speed_pid_.Step(target_speed - state.speed, dt);
  if (u >= 0.0) {
    cmd.throttle = std::min(1.0, u);
    cmd.brake = 0.0;
  } else {
    cmd.throttle = 0.0;
    cmd.brake = std::min(1.0, -u);
  }

  // --- lateral: pure pursuit toward a lookahead point ---
  const double lookahead =
      config_.lookahead_base + config_.lookahead_gain * state.speed;
  std::size_t target_idx = trajectory.size() - 1;
  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    if (state.pose.position.DistanceTo(trajectory[i].position) >= lookahead) {
      target_idx = i;
      break;
    }
  }
  const Vec2 target_ego =
      state.pose.WorldToEgo(trajectory[target_idx].position);
  const double ld2 = std::max(1e-3, target_ego.Dot(target_ego));
  // Pure pursuit: steering = atan(2 L y / ld^2).
  const double steering =
      std::atan2(2.0 * config_.wheelbase * target_ego.y, ld2);
  cmd.steering =
      std::clamp(steering, -config_.max_steering, config_.max_steering);
  return cmd;
}

}  // namespace adpilot
