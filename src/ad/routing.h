// adpilot: routing — a lane-level graph with A* shortest-path search
// (the Routing module of Figure 1).
#ifndef AD_ROUTING_H_
#define AD_ROUTING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ad/common.h"
#include "support/status.h"

namespace adpilot {

struct LaneNode {
  int id = -1;
  Vec2 position;
};

struct LaneEdge {
  int from = -1;
  int to = -1;
  double length = 0.0;  // travel cost, meters
};

// Directed lane graph.
class LaneGraph {
 public:
  // Adds a node; ids must be dense from 0 in insertion order.
  int AddNode(const Vec2& position);
  // Adds a directed edge; length defaults to the Euclidean distance.
  void AddEdge(int from, int to, double length = -1.0);

  int node_count() const { return static_cast<int>(nodes_.size()); }
  const LaneNode& node(int id) const;
  const std::vector<LaneEdge>& edges_from(int id) const;

  // Nearest node to a position.
  int NearestNode(const Vec2& position) const;

  // Builds a straight multi-lane road: `segments` nodes per lane spaced
  // `spacing` meters, with lane changes allowed between adjacent lanes.
  static LaneGraph StraightRoad(int lanes, int segments, double spacing,
                                double lane_width);

 private:
  std::vector<LaneNode> nodes_;
  std::vector<std::vector<LaneEdge>> adjacency_;
};

struct Route {
  std::vector<int> node_ids;
  std::vector<Vec2> waypoints;
  double length = 0.0;
};

// A* shortest path (admissible Euclidean heuristic). NotFound if the goal is
// unreachable.
certkit::support::Result<Route> FindRoute(const LaneGraph& graph, int start,
                                          int goal);

}  // namespace adpilot

#endif  // AD_ROUTING_H_
