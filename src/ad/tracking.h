// adpilot: object tracking — constant-velocity Kalman filters with Hungarian
// data association (the Object Tracking stage of Figure 1).
#ifndef AD_TRACKING_H_
#define AD_TRACKING_H_

#include <vector>

#include "ad/common.h"

namespace adpilot {

// Optimal assignment (Hungarian / Kuhn–Munkres, O(n^3)) for a rectangular
// cost matrix given as rows x cols. Returns for each row the assigned column
// or -1. Entries >= `infeasible_cost` are treated as forbidden pairings.
std::vector<int> HungarianAssign(
    const std::vector<std::vector<double>>& cost,
    double infeasible_cost = 1e8);

// Constant-velocity Kalman filter over state [x, y, vx, vy] with position
// measurements.
class KalmanCv2d {
 public:
  KalmanCv2d(const Vec2& position, double pos_var, double vel_var);

  void Predict(double dt, double process_noise);
  void Update(const Vec2& measured_position, double measurement_noise);

  Vec2 position() const { return {x_[0], x_[1]}; }
  Vec2 velocity() const { return {x_[2], x_[3]}; }
  // Trace of the position covariance block (uncertainty proxy).
  double position_uncertainty() const { return p_[0][0] + p_[1][1]; }

 private:
  double x_[4];      // state
  double p_[4][4];   // covariance
};

struct Track {
  int id = -1;
  ObstacleClass cls = ObstacleClass::kVehicle;
  KalmanCv2d filter;
  int hits = 0;      // consecutive updates
  int misses = 0;    // consecutive missed associations
  double last_confidence = 0.0;
};

struct TrackerConfig {
  double gate_distance = 6.0;       // max association distance, meters
  int confirm_hits = 2;             // updates before a track is confirmed
  int max_misses = 3;               // drop after this many missed frames
  double process_noise = 0.5;
  double measurement_noise = 1.0;
  // Ablation switch: row-greedy nearest-neighbour association instead of
  // the optimal Hungarian assignment (see bench/ablation_design_choices).
  bool use_greedy_association = false;
};

// Row-greedy assignment baseline: each row takes its cheapest unused column
// below `infeasible_cost`. Suboptimal; exists for the ablation study.
std::vector<int> GreedyAssign(const std::vector<std::vector<double>>& cost,
                              double infeasible_cost = 1e8);

// Multi-object tracker: associate detections to tracks each frame.
class Tracker {
 public:
  explicit Tracker(const TrackerConfig& config = {});

  // `detections` are instantaneous obstacle observations (world frame).
  // Returns the confirmed tracks as obstacles with filtered kinematics.
  std::vector<Obstacle> Update(const std::vector<Obstacle>& detections,
                               double dt);

  const std::vector<Track>& tracks() const { return tracks_; }

 private:
  TrackerConfig config_;
  std::vector<Track> tracks_;
  int next_id_ = 0;
};

}  // namespace adpilot

#endif  // AD_TRACKING_H_
