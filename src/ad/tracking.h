// adpilot: object tracking — constant-velocity Kalman filters with Hungarian
// data association (the Object Tracking stage of Figure 1).
#ifndef AD_TRACKING_H_
#define AD_TRACKING_H_

#include <vector>

#include "ad/common.h"

namespace adpilot {

// Optimal assignment (Hungarian / Kuhn–Munkres, O(n^3)) for a rectangular
// cost matrix given as rows x cols. Returns for each row the assigned column
// or -1. Entries >= `infeasible_cost` are treated as forbidden pairings.
std::vector<int> HungarianAssign(
    const std::vector<std::vector<double>>& cost,
    double infeasible_cost = 1e8);

// Reusable working set for the *Into assignment variants: each buffer only
// ever grows to the largest problem size seen, so a steady tracker
// associates without allocating.
struct AssignScratch {
  std::vector<double> u, v, minv;
  std::vector<int> p, way;
  std::vector<char> used;
};

// Allocation-free core of HungarianAssign: `cost` is row-major rows x cols,
// working storage lives in *scratch, the result is written into *assignment
// (resized to `rows`). Produces exactly the same assignment as
// HungarianAssign on the equivalent nested matrix.
void HungarianAssignInto(const double* cost, int rows, int cols,
                         double infeasible_cost, AssignScratch* scratch,
                         std::vector<int>* assignment);

// Flat, capacity-reusing form of GreedyAssign (same contract as above).
void GreedyAssignInto(const double* cost, int rows, int cols,
                      double infeasible_cost, AssignScratch* scratch,
                      std::vector<int>* assignment);

// Constant-velocity Kalman filter over state [x, y, vx, vy] with position
// measurements.
class KalmanCv2d {
 public:
  KalmanCv2d(const Vec2& position, double pos_var, double vel_var);

  void Predict(double dt, double process_noise);
  void Update(const Vec2& measured_position, double measurement_noise);

  Vec2 position() const { return {x_[0], x_[1]}; }
  Vec2 velocity() const { return {x_[2], x_[3]}; }
  // Trace of the position covariance block (uncertainty proxy).
  double position_uncertainty() const { return p_[0][0] + p_[1][1]; }

 private:
  double x_[4];      // state
  double p_[4][4];   // covariance
};

struct Track {
  int id = -1;
  ObstacleClass cls = ObstacleClass::kVehicle;
  KalmanCv2d filter;
  int hits = 0;      // consecutive updates
  int misses = 0;    // consecutive missed associations
  double last_confidence = 0.0;
};

struct TrackerConfig {
  double gate_distance = 6.0;       // max association distance, meters
  int confirm_hits = 2;             // updates before a track is confirmed
  int max_misses = 3;               // drop after this many missed frames
  double process_noise = 0.5;
  double measurement_noise = 1.0;
  // Ablation switch: row-greedy nearest-neighbour association instead of
  // the optimal Hungarian assignment (see bench/ablation_design_choices).
  bool use_greedy_association = false;
};

// Row-greedy assignment baseline: each row takes its cheapest unused column
// below `infeasible_cost`. Suboptimal; exists for the ablation study.
std::vector<int> GreedyAssign(const std::vector<std::vector<double>>& cost,
                              double infeasible_cost = 1e8);

// Multi-object tracker: associate detections to tracks each frame.
class Tracker {
 public:
  explicit Tracker(const TrackerConfig& config = {});

  // `detections` are instantaneous obstacle observations (world frame).
  // Returns the confirmed tracks as obstacles with filtered kinematics.
  std::vector<Obstacle> Update(const std::vector<Obstacle>& detections,
                               double dt);

  // Capacity-reusing variant: confirmed tracks are written into *out. With a
  // steady obstacle population this performs no heap allocation (new tracks
  // may still grow tracks_ when the world changes).
  void UpdateInto(const std::vector<Obstacle>& detections, double dt,
                  std::vector<Obstacle>* out);

  const std::vector<Track>& tracks() const { return tracks_; }

 private:
  TrackerConfig config_;
  std::vector<Track> tracks_;
  int next_id_ = 0;
  // Association working set, reused across frames.
  std::vector<double> cost_;
  std::vector<int> assignment_;
  std::vector<char> detection_used_;
  AssignScratch assign_scratch_;
};

}  // namespace adpilot

#endif  // AD_TRACKING_H_
