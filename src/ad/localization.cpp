#include "ad/localization.h"

#include <cmath>

#include "support/check.h"

namespace adpilot {

EkfLocalizer::EkfLocalizer(const Pose& initial_pose, double initial_speed,
                           const LocalizationConfig& config)
    : config_(config) {
  x_[0] = initial_pose.position.x;
  x_[1] = initial_pose.position.y;
  x_[2] = initial_pose.heading;
  x_[3] = initial_speed;
  for (auto& row : p_) {
    for (auto& v : row) v = 0.0;
  }
  p_[0][0] = p_[1][1] = config.init_pos_var;
  p_[2][2] = config.init_heading_var;
  p_[3][3] = config.init_speed_var;
}

void EkfLocalizer::Predict(double acceleration, double yaw_rate, double dt) {
  CERTKIT_CHECK(dt > 0.0);
  last_yaw_rate_ = yaw_rate;
  last_acceleration_ = acceleration;
  const double theta = x_[2];
  const double v = x_[3];
  const double c = std::cos(theta), s = std::sin(theta);

  // Nonlinear propagation.
  x_[0] += v * c * dt;
  x_[1] += v * s * dt;
  x_[2] = NormalizeAngle(theta + yaw_rate * dt);
  x_[3] += acceleration * dt;
  if (x_[3] < 0.0) x_[3] = 0.0;

  // Jacobian F = d f / d x.
  double f[4][4] = {{1.0, 0.0, -v * s * dt, c * dt},
                    {0.0, 1.0, v * c * dt, s * dt},
                    {0.0, 0.0, 1.0, 0.0},
                    {0.0, 0.0, 0.0, 1.0}};
  // P = F P F^T + Q.
  double fp[4][4] = {};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int k = 0; k < 4; ++k) fp[i][j] += f[i][k] * p_[k][j];
    }
  }
  double np[4][4] = {};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      for (int k = 0; k < 4; ++k) np[i][j] += fp[i][k] * f[j][k];
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) p_[i][j] = np[i][j];
  }
  p_[0][0] += config_.process_pos * dt;
  p_[1][1] += config_.process_pos * dt;
  p_[2][2] += config_.process_heading * dt;
  p_[3][3] += config_.process_speed * dt;
}

// REQ-LOC-001: position fixes shall be fused with bounded covariance
// (symmetrized after every update).
void EkfLocalizer::UpdatePosition(const Vec2& z) {
  // H = [I2 0 0]. Same 2x2 innovation structure as the tracker filter.
  const double r = config_.gnss_noise * config_.gnss_noise;
  const double s00 = p_[0][0] + r, s01 = p_[0][1];
  const double s10 = p_[1][0], s11 = p_[1][1] + r;
  const double det = s00 * s11 - s01 * s10;
  CERTKIT_CHECK_MSG(det > 1e-12, "singular innovation covariance");
  const double i00 = s11 / det, i01 = -s01 / det;
  const double i10 = -s10 / det, i11 = s00 / det;
  const double r0 = z.x - x_[0];
  const double r1 = z.y - x_[1];

  double k[4][2];
  for (int i = 0; i < 4; ++i) {
    k[i][0] = p_[i][0] * i00 + p_[i][1] * i10;
    k[i][1] = p_[i][0] * i01 + p_[i][1] * i11;
  }
  for (int i = 0; i < 4; ++i) x_[i] += k[i][0] * r0 + k[i][1] * r1;
  x_[2] = NormalizeAngle(x_[2]);

  double np[4][4];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      np[i][j] = p_[i][j] - (k[i][0] * p_[0][j] + k[i][1] * p_[1][j]);
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) p_[i][j] = np[i][j];
  }
  SymmetrizeCovariance();
}

void EkfLocalizer::UpdateSpeed(double measured_speed) {
  // H = [0 0 0 1], scalar update.
  const double r = config_.speed_noise * config_.speed_noise;
  const double s = p_[3][3] + r;
  CERTKIT_CHECK(s > 1e-12);
  const double innovation = measured_speed - x_[3];
  double k[4];
  for (int i = 0; i < 4; ++i) k[i] = p_[i][3] / s;
  for (int i = 0; i < 4; ++i) x_[i] += k[i] * innovation;
  x_[2] = NormalizeAngle(x_[2]);
  double np[4][4];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      np[i][j] = p_[i][j] - k[i] * p_[3][j];
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) p_[i][j] = np[i][j];
  }
  SymmetrizeCovariance();
}

VehicleState EkfLocalizer::state() const {
  VehicleState st;
  st.pose.position = {x_[0], x_[1]};
  st.pose.heading = x_[2];
  st.speed = x_[3];
  st.yaw_rate = last_yaw_rate_;
  st.acceleration = last_acceleration_;
  return st;
}

void EkfLocalizer::SymmetrizeCovariance() {
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      const double avg = 0.5 * (p_[i][j] + p_[j][i]);
      p_[i][j] = p_[j][i] = avg;
    }
  }
}

}  // namespace adpilot
