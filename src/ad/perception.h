// adpilot: perception — camera-based object detection (the YOLO-backed
// Perception module of Figure 1, incl. detection and tracking).
#ifndef AD_PERCEPTION_H_
#define AD_PERCEPTION_H_

#include <memory>
#include <vector>

#include "ad/common.h"
#include "ad/scenario.h"
#include "ad/tracking.h"
#include "nn/detector.h"

namespace adpilot {

struct PerceptionConfig {
  nn::Backend backend = nn::Backend::kClosedSim;
  float score_threshold = 0.5f;
  // Detector input size; 0 means "match the camera" (CameraModel::kImageSize).
  // Non-matching sizes exercise the detector's resize/letterbox front end —
  // the campaign engine mutates these to reach those branches.
  int detector_input_h = 0;
  int detector_input_w = 0;
  // Fake-int8 detector inference (nn::QuantizeDetectorWeights). Only the
  // replay differential oracle sets this — campaign breeding never mutates
  // it — so fp32 remains the reference and the quantized variant the
  // deliberately-perturbed diff arm.
  bool quantized_weights = false;
  TrackerConfig tracker;
};

// Runs the detector on camera frames and maintains object tracks in the
// world frame.
class Perception {
 public:
  explicit Perception(const PerceptionConfig& config = {});

  // One perception cycle: detect on `frame` (rendered at `ego_pose`),
  // back-project to world, update the tracker. Returns confirmed obstacles.
  std::vector<Obstacle> Process(const nn::Tensor& frame,
                                const Pose& ego_pose, double dt);

  // Multi-camera perception cycle: runs the detector ONCE over all frames
  // (one batched forward pass), merges the back-projected detections, then
  // performs a single tracker update. With one frame this is bit-identical
  // to Process(). Frames must all be rendered at `ego_pose`.
  std::vector<Obstacle> ProcessBatch(const std::vector<nn::Tensor>& frames,
                                     const Pose& ego_pose, double dt);

  // Capacity-reusing variant of ProcessBatch for the allocation-free tick
  // path: confirmed obstacles are written into *out, all intermediate
  // buffers (per-frame detections, association matrices) are members reused
  // across cycles.
  void ProcessBatchInto(const std::vector<nn::Tensor>& frames,
                        const Pose& ego_pose, double dt,
                        std::vector<Obstacle>* out);

  // Instantaneous detections of the last cycle (world frame), pre-tracking.
  const std::vector<Obstacle>& last_detections() const {
    return last_detections_;
  }

 private:
  PerceptionConfig config_;
  std::unique_ptr<nn::TinyYoloDetector> detector_;
  Tracker tracker_;
  std::vector<Obstacle> last_detections_;
  std::vector<std::vector<nn::Detection>> per_frame_scratch_;
};

}  // namespace adpilot

#endif  // AD_PERCEPTION_H_
