// adpilot: behavior planning — the decision layer above the lattice planner
// (Apollo's planning module separates behavior/scenario decisions from
// trajectory optimization; this mirrors that split).
//
// The behavior planner inspects predicted obstacles along the route and
// selects a driving behavior plus the planner constraints implementing it:
//   kCruise   — free road: drive at cruise speed, keep the centerline;
//   kFollow   — slower lead vehicle, passing not worthwhile: match its
//               speed with a time-gap buffer;
//   kOvertake — lead clearly slower and the adjacent corridor is free:
//               keep speed, bias lateral candidates to the passing side;
//   kStop     — stationary obstruction close ahead: come to a halt.
#ifndef AD_BEHAVIOR_H_
#define AD_BEHAVIOR_H_

#include <vector>

#include "ad/common.h"
#include "ad/planning.h"
#include "ad/prediction.h"

namespace adpilot {

enum class DrivingBehavior { kCruise, kFollow, kOvertake, kStop };
const char* DrivingBehaviorName(DrivingBehavior behavior);

struct BehaviorDecision {
  DrivingBehavior behavior = DrivingBehavior::kCruise;
  double target_speed = 0.0;   // m/s the longitudinal profile should seek
  int lead_obstacle_id = -1;   // -1 when no lead
  double lead_gap = 0.0;       // longitudinal gap to the lead, meters
  // Human-readable justification. Always a string literal (static storage),
  // so copying a decision never allocates — a std::string here exceeded the
  // SSO limit for every reason text and cost one heap allocation per tick.
  const char* reason = "";
};

struct BehaviorConfig {
  double cruise_speed = 8.0;        // m/s
  double corridor_half_width = 2.0; // lead detection corridor, meters
  double lookahead = 40.0;          // how far ahead a lead matters
  double time_gap = 1.5;            // following time gap, seconds
  double min_gap = 6.0;             // never follow closer than this
  double stop_gap = 12.0;           // stationary obstacle -> stop inside this
  double stationary_speed = 0.5;    // below this a lead is stationary
  // Overtake only if the lead is at least this much slower than cruise...
  double overtake_speed_deficit = 3.0;
  // ...and the passing corridor is free of obstacles within the lookahead.
  double passing_lane_offset = 4.0;  // lateral offset of the passing corridor
};

class BehaviorPlanner {
 public:
  explicit BehaviorPlanner(const BehaviorConfig& config = {});

  // Decides the behavior for the current situation. Obstacle positions are
  // evaluated in the ego frame of `state`.
  BehaviorDecision Decide(
      const VehicleState& state,
      const std::vector<PredictedObstacle>& predictions) const;

  const BehaviorConfig& config() const { return config_; }

 private:
  BehaviorConfig config_;
};

// Translates a behavior decision into planner constraints: target speed
// (via cruise_speed and speed factors) and the admissible lateral offsets.
PlannerConfig ApplyBehavior(const PlannerConfig& base,
                            const BehaviorDecision& decision);

// Capacity-reusing variant: *out's offset/factor vectors are overwritten in
// place (their capacities only ever grow to the largest set seen).
void ApplyBehaviorInto(const PlannerConfig& base,
                       const BehaviorDecision& decision, PlannerConfig* out);

}  // namespace adpilot

#endif  // AD_BEHAVIOR_H_
