// adpilot: prediction — future motion trajectories for perceived obstacles
// (the Prediction module of Figure 1).
#ifndef AD_PREDICTION_H_
#define AD_PREDICTION_H_

#include <vector>

#include "ad/common.h"

namespace adpilot {

enum class Maneuver { kStationary, kCruising, kCrossing };
const char* ManeuverName(Maneuver maneuver);

struct PredictedObstacle {
  Obstacle obstacle;
  Maneuver maneuver = Maneuver::kCruising;
  Trajectory trajectory;  // sampled future positions
};

struct PredictionConfig {
  double horizon = 4.0;          // seconds
  double step = 0.25;            // trajectory sampling period
  double stationary_speed = 0.3;  // below this, an obstacle is stationary
  double crossing_ratio = 0.6;    // |vy|/|v| above this means crossing
};

// Classifies each obstacle's maneuver and rolls out a constant-velocity
// trajectory over the horizon (stationary obstacles keep their position).
std::vector<PredictedObstacle> PredictObstacles(
    const std::vector<Obstacle>& obstacles,
    const PredictionConfig& config = {});

// Capacity-reusing variant: resizes *out and refills each slot's trajectory
// in place, so a steady obstacle count predicts without allocating.
void PredictObstaclesInto(const std::vector<Obstacle>& obstacles,
                          const PredictionConfig& config,
                          std::vector<PredictedObstacle>* out);

}  // namespace adpilot

#endif  // AD_PREDICTION_H_
