#include "ad/scenario.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/check.h"
#include "support/json.h"

namespace adpilot {

std::string ValidateScenarioConfig(const ScenarioConfig& config) {
  std::ostringstream reason;
  if (config.num_lanes < 1) {
    reason << "scenario requires at least one lane (num_lanes = "
           << config.num_lanes << ")";
  } else if (config.num_vehicles < 0) {
    reason << "negative vehicle count: " << config.num_vehicles;
  } else if (config.num_vehicles > ScenarioConfig::kMaxVehicles) {
    reason << "vehicle count " << config.num_vehicles << " exceeds cap "
           << ScenarioConfig::kMaxVehicles;
  } else if (config.num_pedestrians < 0) {
    reason << "negative pedestrian count: " << config.num_pedestrians;
  } else if (config.num_pedestrians > ScenarioConfig::kMaxPedestrians) {
    reason << "pedestrian count " << config.num_pedestrians << " exceeds cap "
           << ScenarioConfig::kMaxPedestrians;
  } else if (!(config.lane_width > 0.0)) {
    reason << "lane width must be positive: " << config.lane_width;
  } else if (!(config.road_length > 0.0)) {
    reason << "road length must be positive: " << config.road_length;
  } else if (!(config.vehicle_speed_min >= 0.0)) {
    reason << "vehicle speed min must be non-negative: "
           << config.vehicle_speed_min;
  } else if (!(config.vehicle_speed_max > config.vehicle_speed_min)) {
    reason << "vehicle speed range is empty: [" << config.vehicle_speed_min
           << ", " << config.vehicle_speed_max << ")";
  }
  return reason.str();
}

ScenarioConfig ClampScenarioConfig(const ScenarioConfig& config) {
  ScenarioConfig out = config;
  out.num_vehicles =
      std::clamp(out.num_vehicles, 0, ScenarioConfig::kMaxVehicles);
  out.num_pedestrians =
      std::clamp(out.num_pedestrians, 0, ScenarioConfig::kMaxPedestrians);
  out.num_lanes = std::clamp(out.num_lanes, 1, 8);
  out.lane_width = std::clamp(out.lane_width, 2.0, 8.0);
  out.road_length = std::clamp(out.road_length, 50.0, 2000.0);
  out.vehicle_speed_min = std::clamp(out.vehicle_speed_min, 0.0, 30.0);
  if (out.vehicle_speed_max <= out.vehicle_speed_min) {
    out.vehicle_speed_max = out.vehicle_speed_min + 1.0;
  }
  out.vehicle_speed_max = std::clamp(out.vehicle_speed_max,
                                     out.vehicle_speed_min + 0.5, 40.0);
  return out;
}

std::string ScenarioConfigJson(const ScenarioConfig& config) {
  // Doubles use the shortest round-trip form (support::JsonNumber): the
  // campaign mutator produces full-precision values, and the replay
  // deserializer must reconstruct them bit-exactly from this JSON.
  using certkit::support::JsonNumber;
  std::ostringstream out;
  out << "{\"num_vehicles\":" << config.num_vehicles
      << ",\"num_pedestrians\":" << config.num_pedestrians
      << ",\"road_length\":" << JsonNumber(config.road_length)
      << ",\"lane_width\":" << JsonNumber(config.lane_width)
      << ",\"num_lanes\":" << config.num_lanes
      << ",\"vehicle_speed_min\":" << JsonNumber(config.vehicle_speed_min)
      << ",\"vehicle_speed_max\":" << JsonNumber(config.vehicle_speed_max)
      << ",\"seed\":" << config.seed << "}";
  return out.str();
}

bool CameraModel::EgoToPixel(const Vec2& ego, double* px, double* py) {
  CERTKIT_CHECK(px != nullptr && py != nullptr);
  if (ego.x < -kBehind || ego.x >= kAhead || ego.y < -kHalfWidth ||
      ego.y >= kHalfWidth) {
    return false;
  }
  // Row 0 is the far edge; columns grow to the right (negative y is left).
  *px = (ego.y + kHalfWidth) / kMetersPerPixel;
  *py = (kAhead - ego.x) / kMetersPerPixel;
  return true;
}

Vec2 CameraModel::PixelToEgo(double px, double py) {
  return {kAhead - (py + 0.5) * kMetersPerPixel,
          (px + 0.5) * kMetersPerPixel - kHalfWidth};
}

Scenario::Scenario(const ScenarioConfig& config)
    : config_(config), rng_(config.seed) {
  // REQ-SCEN-001: a scenario shall only be constructed from a valid world
  // description. In particular num_lanes == 0 would underflow the lane
  // sampling bound below.
  const std::string reason = ValidateScenarioConfig(config);
  CERTKIT_CHECK_MSG(reason.empty(), "REQ-SCEN-001: " << reason);
  // Vehicles ahead of the origin in random lanes, driving forward at
  // varied speeds.
  for (int i = 0; i < config_.num_vehicles; ++i) {
    Obstacle v;
    v.id = i;
    v.cls = ObstacleClass::kVehicle;
    const int lane =
        static_cast<int>(rng_.UniformInt(0, config_.num_lanes - 1));
    v.position = {20.0 + 25.0 * i + rng_.UniformDouble(0.0, 10.0),
                  (lane + 0.5) * config_.lane_width -
                      config_.num_lanes * config_.lane_width / 2.0};
    v.velocity = {rng_.UniformDouble(config_.vehicle_speed_min,
                                     config_.vehicle_speed_max),
                  0.0};
    v.length = 4.5;
    v.width = 2.0;
    agents_.push_back(v);
  }
  for (int i = 0; i < config_.num_pedestrians; ++i) {
    Obstacle p;
    p.id = config_.num_vehicles + i;
    p.cls = ObstacleClass::kPedestrian;
    p.position = {30.0 + 20.0 * i, rng_.UniformDouble(-6.0, 6.0)};
    p.velocity = {0.0, rng_.UniformDouble(-1.0, 1.0)};
    p.length = 1.0;
    p.width = 1.0;
    agents_.push_back(p);
  }
}

void Scenario::Step(double dt) {
  CERTKIT_CHECK(dt > 0.0);
  time_ += dt;
  for (Obstacle& a : agents_) {
    a.position = a.position + a.velocity * dt;
    // Vehicles loop back so the scenario never empties.
    if (a.position.x > config_.road_length) {
      a.position.x -= config_.road_length;
    }
    // Pedestrians bounce between the road edges.
    if (a.cls == ObstacleClass::kPedestrian) {
      const double half_road =
          config_.num_lanes * config_.lane_width / 2.0 + 2.0;
      if (a.position.y > half_road || a.position.y < -half_road) {
        a.velocity.y = -a.velocity.y;
      }
    }
  }
}

nn::Tensor Scenario::RenderCameraFrame(const Pose& ego_pose) {
  nn::Tensor frame;
  RenderCameraFrameInto(ego_pose, &frame);
  return frame;
}

void Scenario::RenderCameraFrameInto(const Pose& ego_pose,
                                     nn::Tensor* frame_out) {
  constexpr int kSize = CameraModel::kImageSize;
  // Every pixel is overwritten below, so reshaping without clearing is safe.
  frame_out->Reshape(1, 3, kSize, kSize);
  nn::Tensor& frame = *frame_out;
  // Road background with mild sensor noise.
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < kSize; ++y) {
      for (int x = 0; x < kSize; ++x) {
        frame.At(0, c, y, x) =
            20.0f + static_cast<float>(rng_.UniformDouble(0.0, 6.0));
      }
    }
  }
  // Obstacles as bright axis-aligned rectangles (ego frame).
  for (const Obstacle& a : agents_) {
    const Vec2 center = ego_pose.WorldToEgo(a.position);
    const double hx = a.length / 2.0;
    const double hy = a.width / 2.0;
    const float brightness = a.cls == ObstacleClass::kVehicle ? 230.0f
                                                              : 180.0f;
    for (double ex = center.x - hx; ex <= center.x + hx;
         ex += CameraModel::kMetersPerPixel / 2.0) {
      for (double ey = center.y - hy; ey <= center.y + hy;
           ey += CameraModel::kMetersPerPixel / 2.0) {
        double px = 0.0, py = 0.0;
        if (!CameraModel::EgoToPixel({ex, ey}, &px, &py)) continue;
        const int ix = std::clamp(static_cast<int>(px), 0, kSize - 1);
        const int iy = std::clamp(static_cast<int>(py), 0, kSize - 1);
        for (int c = 0; c < 3; ++c) {
          frame.At(0, c, iy, ix) = brightness;
        }
      }
    }
  }
}

}  // namespace adpilot
