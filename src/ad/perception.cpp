#include "ad/perception.h"

namespace adpilot {

Perception::Perception(const PerceptionConfig& config)
    : config_(config), tracker_(config.tracker) {
  nn::DetectorConfig det_config;
  det_config.input_h = config.detector_input_h > 0 ? config.detector_input_h
                                                   : CameraModel::kImageSize;
  det_config.input_w = config.detector_input_w > 0 ? config.detector_input_w
                                                   : CameraModel::kImageSize;
  det_config.num_classes = 2;
  det_config.score_threshold = config.score_threshold;
  det_config.backend = config.backend;
  detector_ = std::make_unique<nn::TinyYoloDetector>(det_config);
  nn::InitBlobDetectorWeights(detector_.get());
  if (config.quantized_weights) {
    nn::QuantizeDetectorWeights(detector_.get());
  }
}

// REQ-PERC-001: obstacles shall only be reported after confirmation
// across consecutive frames (track gating).
std::vector<Obstacle> Perception::Process(const nn::Tensor& frame,
                                          const Pose& ego_pose, double dt) {
  // Route through the batch engine as a batch of one: same forward math,
  // same probes, and a single code path to qualify for both entry points.
  return ProcessBatch({frame}, ego_pose, dt);
}

std::vector<Obstacle> Perception::ProcessBatch(
    const std::vector<nn::Tensor>& frames, const Pose& ego_pose, double dt) {
  std::vector<Obstacle> out;
  ProcessBatchInto(frames, ego_pose, dt, &out);
  return out;
}

void Perception::ProcessBatchInto(const std::vector<nn::Tensor>& frames,
                                  const Pose& ego_pose, double dt,
                                  std::vector<Obstacle>* out) {
  // Inline batch (no pool): perception runs on the caller's thread so
  // campaign per-candidate coverage/trace attribution stays intact.
  detector_->DetectBatchInto(frames, &per_frame_scratch_);
  const std::vector<std::vector<nn::Detection>>& per_frame =
      per_frame_scratch_;

  last_detections_.clear();
  for (const std::vector<nn::Detection>& detections : per_frame) {
    for (const nn::Detection& d : detections) {
      // Back-project the box center from pixels to the ego frame, then world.
      const Vec2 ego = CameraModel::PixelToEgo(d.x, d.y);
      Obstacle o;
      o.id = -1;  // assigned by the tracker
      o.cls = d.cls == 0 ? ObstacleClass::kVehicle : ObstacleClass::kPedestrian;
      o.position = ego_pose.EgoToWorld(ego);
      o.length = d.h * CameraModel::kMetersPerPixel;  // rows are longitudinal
      o.width = d.w * CameraModel::kMetersPerPixel;
      o.confidence = d.score;
      last_detections_.push_back(o);
    }
  }
  tracker_.UpdateInto(last_detections_, dt, out);
}

}  // namespace adpilot
