// adpilot: planning — a lattice planner that samples lateral-offset
// candidates along the route, scores them for safety and comfort against
// predicted obstacle trajectories, and picks the best collision-free one
// (the Planning module of Figure 1).
#ifndef AD_PLANNING_H_
#define AD_PLANNING_H_

#include <vector>

#include "ad/common.h"
#include "ad/prediction.h"
#include "ad/routing.h"

namespace adpilot {

struct PlannerConfig {
  double horizon = 4.0;      // seconds
  double step = 0.25;        // trajectory sampling period
  double cruise_speed = 8.0;  // target speed, m/s
  double max_accel = 2.0;
  double max_decel = 4.0;
  std::vector<double> lateral_offsets = {0.0, -2.0, 2.0, -4.0, 4.0};
  std::vector<double> speed_factors = {1.0, 0.6, 0.3, 0.0};
  double lateral_horizon_factor = 0.6;  // converge laterally by this * horizon
  double safety_radius = 1.2;   // clearance beyond the obstacle extent, meters
  double w_collision = 1e6;
  double w_offset = 0.5;
  double w_speed_dev = 1.0;
  double w_accel = 0.05;
};

// A quintic polynomial d(t) satisfying boundary conditions; used for the
// lateral dimension of lattice candidates.
class QuinticPolynomial {
 public:
  QuinticPolynomial(double d0, double dd0, double ddd0, double d1,
                    double dd1, double ddd1, double duration);
  double Value(double t) const;
  double FirstDerivative(double t) const;
  double SecondDerivative(double t) const;

 private:
  double c_[6];
  double duration_;
};

struct PlanResult {
  Trajectory trajectory;
  double cost = 0.0;
  bool collision_free = true;
  int candidates_evaluated = 0;
};

// Reusable working set for PlanTrajectoryInto: reference-line stations and
// the candidate/best trajectory buffers. Warm after one call; subsequent
// plans with the same horizon/step allocate nothing.
struct PlannerScratch {
  std::vector<double> ref_station;
  Trajectory candidate;
  Trajectory best;
};

// Plans a trajectory from `state` along `route` avoiding `predictions`.
// Falls back to an emergency-stop trajectory when every candidate collides.
PlanResult PlanTrajectory(const VehicleState& state, const Route& route,
                          const std::vector<PredictedObstacle>& predictions,
                          const PlannerConfig& config = {});

// Capacity-reusing variant: *result's trajectory and *scratch's buffers are
// overwritten in place. Identical output to PlanTrajectory.
void PlanTrajectoryInto(const VehicleState& state, const Route& route,
                        const std::vector<PredictedObstacle>& predictions,
                        const PlannerConfig& config, PlannerScratch* scratch,
                        PlanResult* result);

}  // namespace adpilot

#endif  // AD_PLANNING_H_
