#include "ad/routing.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "support/check.h"

namespace adpilot {

int LaneGraph::AddNode(const Vec2& position) {
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(LaneNode{id, position});
  adjacency_.emplace_back();
  return id;
}

void LaneGraph::AddEdge(int from, int to, double length) {
  CERTKIT_CHECK(from >= 0 && from < node_count());
  CERTKIT_CHECK(to >= 0 && to < node_count());
  if (length < 0.0) {
    length = nodes_[static_cast<std::size_t>(from)].position.DistanceTo(
        nodes_[static_cast<std::size_t>(to)].position);
  }
  adjacency_[static_cast<std::size_t>(from)].push_back(
      LaneEdge{from, to, length});
}

const LaneNode& LaneGraph::node(int id) const {
  CERTKIT_CHECK(id >= 0 && id < node_count());
  return nodes_[static_cast<std::size_t>(id)];
}

const std::vector<LaneEdge>& LaneGraph::edges_from(int id) const {
  CERTKIT_CHECK(id >= 0 && id < node_count());
  return adjacency_[static_cast<std::size_t>(id)];
}

int LaneGraph::NearestNode(const Vec2& position) const {
  CERTKIT_CHECK(!nodes_.empty());
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (const LaneNode& n : nodes_) {
    const double d = n.position.DistanceTo(position);
    if (d < best_d) {
      best_d = d;
      best = n.id;
    }
  }
  return best;
}

LaneGraph LaneGraph::StraightRoad(int lanes, int segments, double spacing,
                                  double lane_width) {
  CERTKIT_CHECK(lanes >= 1 && segments >= 2 && spacing > 0.0);
  LaneGraph g;
  // Node id = lane * segments + index.
  for (int lane = 0; lane < lanes; ++lane) {
    const double y =
        (lane + 0.5) * lane_width - lanes * lane_width / 2.0;
    for (int i = 0; i < segments; ++i) {
      g.AddNode({i * spacing, y});
    }
  }
  for (int lane = 0; lane < lanes; ++lane) {
    for (int i = 0; i + 1 < segments; ++i) {
      const int a = lane * segments + i;
      g.AddEdge(a, a + 1);
      // Diagonal lane changes to adjacent lanes.
      if (lane + 1 < lanes) {
        g.AddEdge(a, (lane + 1) * segments + i + 1);
      }
      if (lane > 0) {
        g.AddEdge(a, (lane - 1) * segments + i + 1);
      }
    }
  }
  return g;
}

// REQ-ROUTE-001: routing shall fail explicitly (no fallback path) when
// the goal is unreachable.
certkit::support::Result<Route> FindRoute(const LaneGraph& graph, int start,
                                          int goal) {
  if (start < 0 || start >= graph.node_count() || goal < 0 ||
      goal >= graph.node_count()) {
    return certkit::support::InvalidArgumentError(
        "start or goal outside the graph");
  }
  const Vec2 goal_pos = graph.node(goal).position;
  const std::size_t n = static_cast<std::size_t>(graph.node_count());
  std::vector<double> g_cost(n, std::numeric_limits<double>::infinity());
  std::vector<int> parent(n, -1);
  std::vector<bool> closed(n, false);

  using QueueItem = std::pair<double, int>;  // (f, node)
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> open;
  g_cost[static_cast<std::size_t>(start)] = 0.0;
  open.push({graph.node(start).position.DistanceTo(goal_pos), start});

  while (!open.empty()) {
    const auto [f, u] = open.top();
    open.pop();
    if (closed[static_cast<std::size_t>(u)]) continue;
    closed[static_cast<std::size_t>(u)] = true;
    if (u == goal) break;
    for (const LaneEdge& e : graph.edges_from(u)) {
      const double candidate = g_cost[static_cast<std::size_t>(u)] + e.length;
      if (candidate < g_cost[static_cast<std::size_t>(e.to)]) {
        g_cost[static_cast<std::size_t>(e.to)] = candidate;
        parent[static_cast<std::size_t>(e.to)] = u;
        open.push(
            {candidate + graph.node(e.to).position.DistanceTo(goal_pos),
             e.to});
      }
    }
  }

  if (!closed[static_cast<std::size_t>(goal)]) {
    return certkit::support::NotFoundError("goal unreachable from start");
  }
  Route route;
  for (int v = goal; v != -1; v = parent[static_cast<std::size_t>(v)]) {
    route.node_ids.push_back(v);
  }
  std::reverse(route.node_ids.begin(), route.node_ids.end());
  for (int id : route.node_ids) {
    route.waypoints.push_back(graph.node(id).position);
  }
  route.length = g_cost[static_cast<std::size_t>(goal)];
  return route;
}

}  // namespace adpilot
