// adpilot: localization — an extended Kalman filter fusing odometry with a
// GNSS-like position sensor (the Localization module of Figure 1).
//
// State: [x, y, theta, v]. Prediction uses the kinematic bicycle model
// driven by (acceleration, yaw rate) from the chassis; updates fuse noisy
// position fixes and speed measurements.
#ifndef AD_LOCALIZATION_H_
#define AD_LOCALIZATION_H_

#include "ad/common.h"

namespace adpilot {

struct LocalizationConfig {
  double init_pos_var = 1.0;
  double init_heading_var = 0.1;
  double init_speed_var = 1.0;
  double process_pos = 0.05;
  double process_heading = 0.01;
  double process_speed = 0.2;
  double gnss_noise = 1.5;   // meters std
  double speed_noise = 0.2;  // m/s std
};

class EkfLocalizer {
 public:
  EkfLocalizer(const Pose& initial_pose, double initial_speed,
               const LocalizationConfig& config = {});

  // IMU/odometry propagation.
  void Predict(double acceleration, double yaw_rate, double dt);
  // GNSS position fix.
  void UpdatePosition(const Vec2& measured);
  // Wheel-speed measurement.
  void UpdateSpeed(double measured_speed);

  VehicleState state() const;
  double position_uncertainty() const { return p_[0][0] + p_[1][1]; }

 private:
  void SymmetrizeCovariance();

  LocalizationConfig config_;
  double x_[4];     // x, y, theta, v
  double p_[4][4];  // covariance
  double last_yaw_rate_ = 0.0;
  double last_acceleration_ = 0.0;
};

}  // namespace adpilot

#endif  // AD_LOCALIZATION_H_
