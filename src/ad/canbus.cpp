#include "ad/canbus.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace adpilot {

namespace {
// Fixed-point scaling used on the wire: 1/1000 resolution, saturated to the
// int16 range. Values beyond +/-32.767 used to wrap silently on the wire
// (e.g. a steering angle of +40 rad decoded as a hard-left command) — the
// defensive-programming gap Observation 4 flags. Non-finite inputs encode
// as 0; the safety monitors upstream are expected to have replaced them.
std::int16_t ToFixed(double v) {
  if (!std::isfinite(v)) return 0;
  const long scaled = std::lround(v * 1000.0);
  return static_cast<std::int16_t>(
      std::clamp<long>(scaled, INT16_MIN, INT16_MAX));
}
double FromFixed(std::int16_t v) { return static_cast<double>(v) / 1000.0; }
}  // namespace

std::uint16_t CommandFrameChecksum(const CanFrame& frame) {
  // Fletcher-16 over the six payload bytes.
  std::uint32_t sum1 = 0, sum2 = 0;
  for (int i = 0; i < 6; ++i) {
    sum1 = (sum1 + frame.data[i]) % 255u;
    sum2 = (sum2 + sum1) % 255u;
  }
  return static_cast<std::uint16_t>((sum2 << 8) | sum1);
}

bool VerifyCommandFrame(const CanFrame& frame) {
  if (frame.can_id != 0x110 || frame.dlc < 8) return false;
  const std::uint16_t expected = CommandFrameChecksum(frame);
  const std::uint16_t actual = static_cast<std::uint16_t>(
      frame.data[6] | (static_cast<std::uint16_t>(frame.data[7]) << 8));
  return expected == actual;
}

CanFrame EncodeCommand(const ControlCommand& command) {
  CanFrame frame;
  frame.can_id = 0x110;  // throttle/brake/steer command frame
  frame.dlc = 8;
  const std::int16_t throttle = ToFixed(command.throttle);
  const std::int16_t brake = ToFixed(command.brake);
  const std::int16_t steering = ToFixed(command.steering);
  frame.data[0] = static_cast<std::uint8_t>(throttle & 0xFF);
  frame.data[1] = static_cast<std::uint8_t>((throttle >> 8) & 0xFF);
  frame.data[2] = static_cast<std::uint8_t>(brake & 0xFF);
  frame.data[3] = static_cast<std::uint8_t>((brake >> 8) & 0xFF);
  frame.data[4] = static_cast<std::uint8_t>(steering & 0xFF);
  frame.data[5] = static_cast<std::uint8_t>((steering >> 8) & 0xFF);
  const std::uint16_t checksum = CommandFrameChecksum(frame);
  frame.data[6] = static_cast<std::uint8_t>(checksum & 0xFF);
  frame.data[7] = static_cast<std::uint8_t>((checksum >> 8) & 0xFF);
  return frame;
}

// REQ-CAN-001: only frames with the command identifier shall be decoded
// as actuation commands.
ControlCommand DecodeCommand(const CanFrame& frame) {
  CERTKIT_CHECK_MSG(frame.can_id == 0x110, "not a command frame");
  CERTKIT_CHECK(frame.dlc >= 6);
  auto read16 = [&](int at) {
    return static_cast<std::int16_t>(
        static_cast<std::uint16_t>(frame.data[at]) |
        (static_cast<std::uint16_t>(frame.data[at + 1]) << 8));
  };
  ControlCommand cmd;
  cmd.throttle = FromFixed(read16(0));
  cmd.brake = FromFixed(read16(2));
  cmd.steering = FromFixed(read16(4));
  return cmd;
}

SimulatedVehicle::SimulatedVehicle(const Pose& initial_pose,
                                   const VehicleParams& params,
                                   std::uint64_t noise_seed)
    : params_(params), rng_(noise_seed) {
  state_.pose = initial_pose;
}

void SimulatedVehicle::Apply(const ControlCommand& command, double dt) {
  CERTKIT_CHECK(dt > 0.0);
  // Requested acceleration from pedals.
  const double requested =
      std::clamp(command.throttle, 0.0, 1.0) * params_.max_accel -
      std::clamp(command.brake, 0.0, 1.0) * params_.max_decel -
      params_.drag * state_.speed;
  // First-order actuator lag.
  const double alpha =
      params_.actuator_lag > 1e-6 ? dt / (params_.actuator_lag + dt) : 1.0;
  commanded_accel_ += alpha * (requested - commanded_accel_);

  // Kinematic bicycle.
  const double steer =
      std::clamp(command.steering, -0.6, 0.6);
  const double v = state_.speed;
  const double yaw_rate = v * std::tan(steer) / params_.wheelbase;
  state_.pose.heading = NormalizeAngle(state_.pose.heading + yaw_rate * dt);
  state_.pose.position.x += v * std::cos(state_.pose.heading) * dt;
  state_.pose.position.y += v * std::sin(state_.pose.heading) * dt;
  state_.speed =
      std::clamp(v + commanded_accel_ * dt, 0.0, params_.max_speed);
  state_.yaw_rate = yaw_rate;
  state_.acceleration = commanded_accel_;
}

ChassisFeedback SimulatedVehicle::Feedback(double gnss_noise,
                                           double speed_noise) {
  ChassisFeedback fb;
  fb.state = state_;
  fb.gnss_position = {
      state_.pose.position.x + rng_.Gaussian(0.0, gnss_noise),
      state_.pose.position.y + rng_.Gaussian(0.0, gnss_noise)};
  fb.wheel_speed = std::max(0.0, state_.speed +
                                     rng_.Gaussian(0.0, speed_noise));
  return fb;
}

CanBus::CanBus(const Pose& initial_pose, const VehicleParams& params,
               std::uint64_t noise_seed)
    : vehicle_(initial_pose, params, noise_seed) {}

void CanBus::SendCommand(const ControlCommand& command) {
  queue_.push_back(EncodeCommand(command));
  ++frames_sent_;
}

ChassisFeedback CanBus::Step(double dt, double gnss_noise,
                             double speed_noise) {
  while (queue_head_ < queue_.size()) {
    CanFrame frame = queue_[queue_head_];
    ++queue_head_;
    if (frame_fault_ && !frame_fault_(&frame)) {
      continue;  // frame lost on the wire
    }
    // Receiver-side validity check: a corrupted frame is discarded and the
    // vehicle keeps executing the last valid command.
    if (!VerifyCommandFrame(frame)) {
      ++frames_rejected_;
      continue;
    }
    last_command_ = DecodeCommand(frame);
    ++frames_delivered_;
  }
  queue_.clear();
  queue_head_ = 0;
  vehicle_.Apply(last_command_, dt);
  return vehicle_.Feedback(gnss_noise, speed_noise);
}

}  // namespace adpilot
