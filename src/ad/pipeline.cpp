#include "ad/pipeline.h"

#include <algorithm>

#include "coverage/coverage.h"
#include "support/check.h"
#include "timing/timing.h"

namespace adpilot {

namespace {

// Architectural-level coverage probes (ISO 26262-6 Table 12): one function
// probe per pipeline stage, one call probe per Tick -> stage edge.
struct PipeProbes {
  certkit::cov::Unit* u;
  int f_routing, f_perception, f_prediction, f_localization, f_planning,
      f_control, f_canbus;
  int c_perception, c_prediction, c_localization, c_planning, c_control,
      c_canbus;
};

PipeProbes& P() {
  static PipeProbes p = [] {
    PipeProbes q;
    q.u = &certkit::cov::Registry::Instance().GetOrCreate(
        "adpilot/pipeline.cc");
    q.f_routing = q.u->DeclareFunctionProbe("routing::FindRoute");
    q.f_perception = q.u->DeclareFunctionProbe("perception::Process");
    q.f_prediction = q.u->DeclareFunctionProbe("prediction::Predict");
    q.f_localization = q.u->DeclareFunctionProbe("localization::Update");
    q.f_planning = q.u->DeclareFunctionProbe("planning::PlanTrajectory");
    q.f_control = q.u->DeclareFunctionProbe("control::Compute");
    q.f_canbus = q.u->DeclareFunctionProbe("canbus::Step");
    q.c_perception = q.u->DeclareCallProbe("Tick", "perception");
    q.c_prediction = q.u->DeclareCallProbe("Tick", "prediction");
    q.c_localization = q.u->DeclareCallProbe("Tick", "localization");
    q.c_planning = q.u->DeclareCallProbe("Tick", "planning");
    q.c_control = q.u->DeclareCallProbe("Tick", "control");
    q.c_canbus = q.u->DeclareCallProbe("Tick", "canbus");
    return q;
  }();
  return p;
}

}  // namespace

ApolloPilot::ApolloPilot(const PilotConfig& config)
    : config_(config),
      scenario_(config.scenario),
      perception_(config.perception),
      behavior_(config.behavior),
      canbus_(Pose{{0.0, -config.scenario.lane_width / 2.0}, 0.0},
              config.vehicle) {
  // Route: lane graph down the road, start near the ego, goal at goal_x.
  const double spacing = 10.0;
  const int segments =
      static_cast<int>(config_.scenario.road_length / spacing) + 1;
  graph_ = LaneGraph::StraightRoad(config_.scenario.num_lanes, segments,
                                   spacing, config_.scenario.lane_width);
  const Pose initial = canbus_.vehicle().state().pose;
  const int start = graph_.NearestNode(initial.position);
  const int goal =
      graph_.NearestNode({config_.goal_x, initial.position.y});
  P().u->EnterFunction(P().f_routing);
  auto route = FindRoute(graph_, start, goal);
  CERTKIT_CHECK_MSG(route.ok(), "no route to goal: "
                                    << route.status().ToString());
  route_ = std::move(route).value();

  localizer_ = std::make_unique<EkfLocalizer>(initial, 0.0,
                                              config_.localization);
}

TickReport ApolloPilot::Tick() {
  auto& timers = certkit::timing::TimerRegistry::Instance();
  certkit::timing::ScopedTimer tick_timer(
      timers.GetOrCreate("adpilot/tick"));
  const double dt = config_.tick;
  TickReport report;
  time_ += dt;
  report.time = time_;

  // 1. World advances.
  scenario_.Step(dt);

  // 2. Localization estimate (used as the ego pose everywhere downstream).
  VehicleState est = localizer_->state();
  report.localized = est;

  // 3. Perception on the camera frame rendered at the *estimated* pose.
  const nn::Tensor frame = scenario_.RenderCameraFrame(est.pose);
  P().u->EnterFunction(P().f_perception);
  P().u->CallSite(P().c_perception);
  std::vector<Obstacle> tracked;
  {
    certkit::timing::ScopedTimer timer(
        timers.GetOrCreate("adpilot/perception"));
    tracked = perception_.Process(frame, est.pose, dt);
  }
  report.detections = perception_.last_detections().size();
  report.tracked_obstacles = tracked.size();

  // 4. Prediction.
  P().u->EnterFunction(P().f_prediction);
  P().u->CallSite(P().c_prediction);
  std::vector<PredictedObstacle> predictions;
  {
    certkit::timing::ScopedTimer timer(
        timers.GetOrCreate("adpilot/prediction"));
    predictions = PredictObstacles(tracked, config_.prediction);
  }

  // 5. Planning along the route.
  // 5a. Behavior decision (cruise / follow / overtake / stop).
  const BehaviorDecision decision = behavior_.Decide(est, predictions);
  report.behavior = decision.behavior;

  P().u->EnterFunction(P().f_planning);
  P().u->CallSite(P().c_planning);
  PlanResult plan;
  {
    certkit::timing::ScopedTimer timer(
        timers.GetOrCreate("adpilot/planning"));
    plan = PlanTrajectory(est, route_,
                          predictions,
                          ApplyBehavior(config_.planner, decision));
  }
  report.plan_collision_free = plan.collision_free;

  // 6. Control.
  P().u->EnterFunction(P().f_control);
  P().u->CallSite(P().c_control);
  ControlCommand cmd;
  {
    certkit::timing::ScopedTimer timer(
        timers.GetOrCreate("adpilot/control"));
    cmd = controller_.Compute(est, plan.trajectory, dt);
  }
  report.command = cmd;

  // 7. Actuation over the CAN bus; chassis feedback drives localization.
  P().u->EnterFunction(P().f_canbus);
  P().u->CallSite(P().c_canbus);
  canbus_.SendCommand(cmd);
  const ChassisFeedback fb = canbus_.Step(dt, config_.localization.gnss_noise,
                                          config_.localization.speed_noise);
  P().u->EnterFunction(P().f_localization);
  P().u->CallSite(P().c_localization);
  localizer_->Predict(fb.state.acceleration, fb.state.yaw_rate, dt);
  localizer_->UpdatePosition(fb.gnss_position);
  localizer_->UpdateSpeed(fb.wheel_speed);

  report.ground_truth = fb.state;

  // Safety bookkeeping against ground truth.
  for (const Obstacle& o : scenario_.ground_truth()) {
    const double d =
        fb.state.pose.position.DistanceTo(o.position) -
        std::max(o.length, o.width) / 2.0;
    report.min_obstacle_distance =
        std::min(report.min_obstacle_distance, d);
  }
  min_clearance_ = std::min(min_clearance_, report.min_obstacle_distance);
  return report;
}

std::vector<TickReport> ApolloPilot::Run(double seconds) {
  CERTKIT_CHECK(seconds > 0.0);
  std::vector<TickReport> reports;
  const int ticks = static_cast<int>(seconds / config_.tick);
  reports.reserve(static_cast<std::size_t>(ticks));
  for (int i = 0; i < ticks; ++i) {
    reports.push_back(Tick());
  }
  return reports;
}

bool ApolloPilot::ReachedGoal() const {
  return canbus_.vehicle().state().pose.position.x >= config_.goal_x;
}

}  // namespace adpilot
