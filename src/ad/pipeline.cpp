#include "ad/pipeline.h"

#include <algorithm>
#include <chrono>

#include "coverage/coverage.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/check.h"
#include "support/fnv.h"
#include "timing/timing.h"

namespace adpilot {

namespace {

// Architectural-level coverage probes (ISO 26262-6 Table 12): one function
// probe per pipeline stage, one call probe per Tick -> stage edge.
struct PipeProbes {
  certkit::cov::Unit* u;
  int f_routing, f_perception, f_prediction, f_localization, f_planning,
      f_control, f_canbus;
  int c_perception, c_prediction, c_localization, c_planning, c_control,
      c_canbus;
};

PipeProbes& P() {
  static PipeProbes p = [] {
    PipeProbes q;
    q.u = &certkit::cov::Registry::Instance().GetOrCreate(
        "adpilot/pipeline.cc");
    q.f_routing = q.u->DeclareFunctionProbe("routing::FindRoute");
    q.f_perception = q.u->DeclareFunctionProbe("perception::Process");
    q.f_prediction = q.u->DeclareFunctionProbe("prediction::Predict");
    q.f_localization = q.u->DeclareFunctionProbe("localization::Update");
    q.f_planning = q.u->DeclareFunctionProbe("planning::PlanTrajectory");
    q.f_control = q.u->DeclareFunctionProbe("control::Compute");
    q.f_canbus = q.u->DeclareFunctionProbe("canbus::Step");
    q.c_perception = q.u->DeclareCallProbe("Tick", "perception");
    q.c_prediction = q.u->DeclareCallProbe("Tick", "prediction");
    q.c_localization = q.u->DeclareCallProbe("Tick", "localization");
    q.c_planning = q.u->DeclareCallProbe("Tick", "planning");
    q.c_control = q.u->DeclareCallProbe("Tick", "control");
    q.c_canbus = q.u->DeclareCallProbe("Tick", "canbus");
    return q;
  }();
  return p;
}

// Observability sinks, one set per pipeline stage: the ExecutionTimer that
// WCET/pWCET estimation reads and the per-stage duration histogram, both fed
// by the same obs::Span that records the trace event — one instrumentation
// point, three consumers. References are stable across
// MetricsRegistry::ResetAll / TimerRegistry::ResetAll (both reset values in
// place), so caching them is safe.
struct StageSinks {
  certkit::timing::ExecutionTimer* timer;
  certkit::obs::Histogram* hist;
};

struct PipeObs {
  StageSinks tick, perception, prediction, planning, control, canbus,
      localization, safety;
  certkit::obs::Counter* ticks;
};

PipeObs& O() {
  static PipeObs o = [] {
    auto& timers = certkit::timing::TimerRegistry::Instance();
    auto& metrics = certkit::obs::MetricsRegistry::Instance();
    // Stage costs on this workload sit between ~10us (control) and ~10ms
    // (perception on the simulated detector); half-decade buckets cover the
    // whole range with an overflow bucket for pathological cycles.
    const std::vector<double> bounds = {1e-5, 5e-5, 1e-4, 5e-4, 1e-3,
                                        5e-3, 1e-2, 5e-2, 1e-1, 5e-1};
    auto mk = [&](const char* stage) {
      return StageSinks{
          &timers.GetOrCreate(std::string("adpilot/") + stage),
          &metrics.GetHistogram(
              std::string("adpilot/stage_seconds/") + stage, bounds)};
    };
    PipeObs q;
    q.tick = mk("tick");
    q.perception = mk("perception");
    q.prediction = mk("prediction");
    q.planning = mk("planning");
    q.control = mk("control");
    q.canbus = mk("canbus");
    q.localization = mk("localization");
    q.safety = mk("safety");
    q.ticks = &metrics.GetCounter("adpilot/ticks");
    return q;
  }();
  return o;
}

}  // namespace

ApolloPilot::ApolloPilot(const PilotConfig& config)
    : config_(config),
      scenario_(config.scenario),
      perception_(config.perception),
      behavior_(config.behavior),
      canbus_(Pose{{0.0, -config.scenario.lane_width / 2.0}, 0.0},
              config.vehicle),
      range_monitor_(config.safety),
      plausibility_monitor_(config.safety),
      watchdog_(config.safety,
                &certkit::timing::TimerRegistry::Instance().GetOrCreate(
                    "adpilot/tick_effective")),
      degradation_(config.safety) {
  // Route: lane graph down the road, start near the ego, goal at goal_x.
  const double spacing = 10.0;
  const int segments =
      static_cast<int>(config_.scenario.road_length / spacing) + 1;
  graph_ = LaneGraph::StraightRoad(config_.scenario.num_lanes, segments,
                                   spacing, config_.scenario.lane_width);
  const Pose initial = canbus_.vehicle().state().pose;
  const int start = graph_.NearestNode(initial.position);
  const int goal =
      graph_.NearestNode({config_.goal_x, initial.position.y});
  P().u->EnterFunction(P().f_routing);
  auto route = FindRoute(graph_, start, goal);
  CERTKIT_CHECK_MSG(route.ok(), "no route to goal: "
                                    << route.status().ToString());
  route_ = std::move(route).value();

  localizer_ = std::make_unique<EkfLocalizer>(initial, 0.0,
                                              config_.localization);
  last_published_est_ = localizer_->state();
}

void ApolloPilot::SetFaultInjector(FaultInjector* injector) {
  injector_ = injector;
  if (injector_ == nullptr) {
    canbus_.SetFrameFault(nullptr);
    return;
  }
  canbus_.SetFrameFault([this](CanFrame* frame) {
    if (injector_->DropFrame()) return false;
    injector_->MutateFrame(frame);
    return true;
  });
}

TickReport ApolloPilot::Tick() {
  certkit::obs::Span tick_span("tick", "pipeline", O().tick.timer,
                               O().tick.hist);
  O().ticks->Add();
  const auto tick_start = std::chrono::steady_clock::now();
  const double dt = config_.tick;
  const bool safety_on = config_.safety.enabled;
  TickReport report;
  ++tick_index_;
  // Black-box journal entry for the whole tick; per-stage scopes below sit
  // beside the obs::Span of each stage (the flight recorder is the
  // crash-surviving counterpart of the post-run trace).
  certkit::obs::FlightStageScope flight_tick(certkit::obs::FlightStage::kTick,
                                             tick_index_);
  time_ += dt;
  report.time = time_;
  // Replay capture (tap installed only): stream signatures accumulate as
  // each pipeline point produces its data, and fire in one OnTick at the
  // end. The digests hash exact bit patterns, so they cost a pass over the
  // frame/lists and nothing else.
  TickSignature tick_sig;
  const bool tapped = tick_tap_ != nullptr;
  tick_sig.tick = tick_index_;
  const std::int64_t log_at_tick_start = safety_log_.size();

  if (injector_ != nullptr) injector_->BeginTick(tick_index_);
  control_flow_monitor_.BeginTick(tick_index_);

  // 1. World advances.
  {
    certkit::obs::Span span("scenario", "pipeline");
    certkit::obs::FlightStageScope flight(
        certkit::obs::FlightStage::kScenario, tick_index_);
    scenario_.Step(dt);
  }

  // 2. Localization estimate (used as the ego pose everywhere downstream).
  // A stale-localization fault freezes the published estimate at its last
  // value; the plausibility monitor compares whatever is published against
  // its dead-reckoning envelope (propagated from last tick's odometry).
  VehicleState est = localizer_->state();
  if (injector_ != nullptr && injector_->StaleLocalization()) {
    est = last_published_est_;
  }
  last_published_est_ = est;
  report.localized = est;
  if (tapped) {
    tick_sig.state =
        DigestVehicleState(est, certkit::support::kFnvOffsetBasis);
  }
  if (safety_on) {
    plausibility_monitor_.Check(tick_index_, est, &safety_log_);
  }

  // 3. Perception on the camera frame rendered at the *estimated* pose.
  // A sensor-dropout fault loses the frame: the perception stage does not
  // run (the control-flow monitor flags the missing stage) and the pipeline
  // coasts on the previous tick's tracks.
  std::vector<Obstacle>& tracked = tracked_scratch_;
  if (injector_ != nullptr && injector_->SensorDropout()) {
    tracked = last_tracked_;
    report.detections = 0;
  } else {
    if (frame_scratch_.empty()) frame_scratch_.resize(1);
    scenario_.RenderCameraFrameInto(est.pose, &frame_scratch_[0]);
    const nn::Tensor& frame = frame_scratch_[0];
    if (tapped) {
      tick_sig.frame =
          DigestTensor(frame, certkit::support::kFnvOffsetBasis);
    }
    P().u->EnterFunction(P().f_perception);
    P().u->CallSite(P().c_perception);
    control_flow_monitor_.Enter(TickStage::kPerception);
    {
      certkit::obs::Span span("perception", "pipeline",
                              O().perception.timer, O().perception.hist);
      certkit::obs::FlightStageScope flight(
          certkit::obs::FlightStage::kPerception, tick_index_);
      // Batch-of-one through the batch engine: bit-identical to the
      // single-frame path, but every intermediate is member scratch.
      perception_.ProcessBatchInto(frame_scratch_, est.pose, dt, &tracked);
    }
    report.detections = perception_.last_detections().size();
    if (tapped) {
      tick_sig.detections = DigestObstacles(
          perception_.last_detections(), certkit::support::kFnvOffsetBasis);
    }
  }
  if (injector_ != nullptr) injector_->CorruptObstacles(&tracked);
  // Table 4 range check on the perception output; implausible obstacles are
  // discarded before they reach prediction/planning.
  if (safety_on) {
    range_monitor_.CheckAndSanitizeObstacles(tick_index_, est.pose, &tracked,
                                             &safety_log_);
  }
  last_tracked_ = tracked;
  report.tracked_obstacles = tracked.size();
  if (tapped) {
    tick_sig.tracked =
        DigestObstacles(tracked, certkit::support::kFnvOffsetBasis);
  }

  // 4. Prediction.
  P().u->EnterFunction(P().f_prediction);
  P().u->CallSite(P().c_prediction);
  control_flow_monitor_.Enter(TickStage::kPrediction);
  std::vector<PredictedObstacle>& predictions = predictions_scratch_;
  {
    certkit::obs::Span span("prediction", "pipeline", O().prediction.timer,
                            O().prediction.hist);
    certkit::obs::FlightStageScope flight(
        certkit::obs::FlightStage::kPrediction, tick_index_);
    PredictObstaclesInto(tracked, config_.prediction, &predictions);
  }

  // 5. Planning along the route.
  // 5a. Behavior decision (cruise / follow / overtake / stop).
  const BehaviorDecision decision = behavior_.Decide(est, predictions);
  report.behavior = decision.behavior;

  P().u->EnterFunction(P().f_planning);
  P().u->CallSite(P().c_planning);
  control_flow_monitor_.Enter(TickStage::kPlanning);
  PlanResult& plan = plan_scratch_;
  {
    certkit::obs::Span span("planning", "pipeline", O().planning.timer,
                            O().planning.hist);
    certkit::obs::FlightStageScope flight(
        certkit::obs::FlightStage::kPlanning, tick_index_);
    ApplyBehaviorInto(config_.planner, decision, &planner_config_scratch_);
    PlanTrajectoryInto(est, route_, predictions, planner_config_scratch_,
                       &planner_scratch_, &plan);
  }
  report.plan_collision_free = plan.collision_free;

  // 6. Control.
  P().u->EnterFunction(P().f_control);
  P().u->CallSite(P().c_control);
  control_flow_monitor_.Enter(TickStage::kControl);
  ControlCommand cmd;
  {
    certkit::obs::Span span("control", "pipeline", O().control.timer,
                            O().control.hist);
    certkit::obs::FlightStageScope flight(
        certkit::obs::FlightStage::kControl, tick_index_);
    cmd = controller_.Compute(est, plan.trajectory, dt);
  }
  bool overridden = false;

  if (safety_on) {
    certkit::obs::Span span("safety", "safety", O().safety.timer,
                            O().safety.hist);
    certkit::obs::FlightStageScope flight(certkit::obs::FlightStage::kSafety,
                                          tick_index_);
    // Table 4 range check on the actuation output (critical on failure).
    overridden |= range_monitor_.CheckCommand(tick_index_, &cmd, &safety_log_);

    // Deadline watchdog over the tick execution time (plus any injected
    // overrun). Checked before actuation so a timing fault can degrade this
    // very cycle.
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      tick_start)
            .count() +
        (injector_ != nullptr ? injector_->TimingOverrunSeconds() : 0.0);
    watchdog_.Check(tick_index_, elapsed, &safety_log_);

    // Close the tick's verdict: everything logged since the last tally
    // (including last tick's post-actuation monitors) drives degradation.
    std::size_t warnings = 0, criticals = 0;
    safety_log_.TallySince(violations_tallied_, &warnings, &criticals);
    violations_tallied_ = safety_log_.size();
    degradation_.Update(warnings, criticals);
    overridden |= degradation_.ApplyToCommand(&cmd, est.speed);
  }
  report.safety_state = degradation_.state();
  report.command = cmd;
  report.command_overridden = overridden;
  if (tapped) {
    tick_sig.command = DigestCommand(cmd, certkit::support::kFnvOffsetBasis);
  }

  // 7. Actuation over the CAN bus; chassis feedback drives localization.
  P().u->EnterFunction(P().f_canbus);
  P().u->CallSite(P().c_canbus);
  control_flow_monitor_.Enter(TickStage::kCanBus);
  const std::int64_t delivered_before = canbus_.frames_delivered();
  const std::int64_t rejected_before = canbus_.frames_rejected();
  ChassisFeedback fb;
  {
    certkit::obs::Span span("canbus", "pipeline", O().canbus.timer,
                            O().canbus.hist);
    certkit::obs::FlightStageScope flight(certkit::obs::FlightStage::kCanBus,
                                          tick_index_);
    canbus_.SendCommand(cmd);
    fb = canbus_.Step(dt, config_.localization.gnss_noise,
                      config_.localization.speed_noise);
  }
  if (safety_on) {
    // Bus supervision: a corrupted frame was rejected by the receiver-side
    // checksum, a lost frame never arrived. Both are handled by the bus
    // holding the last valid command.
    if (canbus_.frames_rejected() > rejected_before) {
      safety_log_.Record({tick_index_, MonitorId::kCanBus, Severity::kWarning,
                          /*handled=*/true,
                          "corrupted command frame rejected by checksum"});
    } else if (canbus_.frames_delivered() == delivered_before) {
      safety_log_.Record({tick_index_, MonitorId::kCanBus, Severity::kWarning,
                          /*handled=*/true,
                          "command frame lost; holding last valid command"});
    }
  }

  P().u->EnterFunction(P().f_localization);
  P().u->CallSite(P().c_localization);
  control_flow_monitor_.Enter(TickStage::kLocalization);
  {
    certkit::obs::Span span("localization", "pipeline",
                            O().localization.timer, O().localization.hist);
    certkit::obs::FlightStageScope flight(
        certkit::obs::FlightStage::kLocalization, tick_index_);
    localizer_->Predict(fb.state.acceleration, fb.state.yaw_rate, dt);
    localizer_->UpdatePosition(fb.gnss_position);
    localizer_->UpdateSpeed(fb.wheel_speed);
  }
  // Advance the dead-reckoning envelope with this tick's odometry; it is
  // compared against the published estimate at the top of the next tick.
  plausibility_monitor_.Propagate(fb.state.acceleration, fb.state.yaw_rate,
                                  dt);

  report.ground_truth = fb.state;

  if (safety_on) {
    control_flow_monitor_.EndTick(&safety_log_);
  }
  report.new_violations =
      static_cast<std::size_t>(safety_log_.size() - log_at_tick_start);

  // Safety bookkeeping against ground truth. An empty world is reported as
  // the explicit no-obstacle state, not a sentinel distance.
  for (const Obstacle& o : scenario_.ground_truth()) {
    const double d =
        fb.state.pose.position.DistanceTo(o.position) -
        std::max(o.length, o.width) / 2.0;
    if (!report.obstacle_in_range || d < report.min_obstacle_distance) {
      report.min_obstacle_distance = d;
    }
    report.obstacle_in_range = true;
  }
  if (report.obstacle_in_range) {
    min_clearance_ = std::min(min_clearance_, report.min_obstacle_distance);
    clearance_sampled_ = true;
  }
  if (tapped) {
    tick_sig.faults_injected =
        injector_ != nullptr ? injector_->total_injected() : 0;
    tick_tap_->OnTick(tick_sig);
  }
  return report;
}

std::vector<TickReport> ApolloPilot::Run(double seconds) {
  CERTKIT_CHECK(seconds > 0.0);
  std::vector<TickReport> reports;
  const int ticks = static_cast<int>(seconds / config_.tick);
  reports.reserve(static_cast<std::size_t>(ticks));
  for (int i = 0; i < ticks; ++i) {
    reports.push_back(Tick());
  }
  return reports;
}

bool ApolloPilot::ReachedGoal() const {
  return canbus_.vehicle().state().pose.position.x >= config_.goal_x;
}

}  // namespace adpilot
