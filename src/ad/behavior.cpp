#include "ad/behavior.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace adpilot {

const char* DrivingBehaviorName(DrivingBehavior behavior) {
  switch (behavior) {
    case DrivingBehavior::kCruise:
      return "cruise";
    case DrivingBehavior::kFollow:
      return "follow";
    case DrivingBehavior::kOvertake:
      return "overtake";
    case DrivingBehavior::kStop:
      return "stop";
  }
  return "?";
}

BehaviorPlanner::BehaviorPlanner(const BehaviorConfig& config)
    : config_(config) {
  CERTKIT_CHECK(config.cruise_speed > 0.0 && config.lookahead > 0.0);
}

BehaviorDecision BehaviorPlanner::Decide(
    const VehicleState& state,
    const std::vector<PredictedObstacle>& predictions) const {
  BehaviorDecision decision;
  decision.behavior = DrivingBehavior::kCruise;
  decision.target_speed = config_.cruise_speed;
  decision.reason = "no lead vehicle within the lookahead";

  // Find the nearest lead: ahead of the ego, inside the lane corridor.
  const PredictedObstacle* lead = nullptr;
  double lead_gap = config_.lookahead;
  for (const auto& p : predictions) {
    const Vec2 ego = state.pose.WorldToEgo(p.obstacle.position);
    if (ego.x <= 0.0 || ego.x > config_.lookahead) continue;
    if (std::abs(ego.y) > config_.corridor_half_width) continue;
    const double gap = ego.x - p.obstacle.length / 2.0;
    if (gap < lead_gap) {
      lead_gap = gap;
      lead = &p;
    }
  }
  if (lead == nullptr) return decision;

  decision.lead_obstacle_id = lead->obstacle.id;
  decision.lead_gap = lead_gap;
  const double lead_speed = lead->obstacle.velocity.Norm();

  // Stationary obstruction close ahead: stop.
  if (lead_speed < config_.stationary_speed &&
      lead_gap < config_.stop_gap) {
    decision.behavior = DrivingBehavior::kStop;
    decision.target_speed = 0.0;
    decision.reason = "stationary obstruction ahead";
    return decision;
  }

  // Overtake: lead much slower than cruise and the passing corridor free.
  if (config_.cruise_speed - lead_speed >= config_.overtake_speed_deficit) {
    bool passing_free = true;
    for (const auto& p : predictions) {
      const Vec2 ego = state.pose.WorldToEgo(p.obstacle.position);
      if (ego.x < -5.0 || ego.x > config_.lookahead) continue;
      if (std::abs(ego.y - config_.passing_lane_offset) <=
          config_.corridor_half_width) {
        passing_free = false;
        break;
      }
    }
    if (passing_free) {
      decision.behavior = DrivingBehavior::kOvertake;
      decision.target_speed = config_.cruise_speed;
      decision.reason = "lead slower than cruise and passing corridor free";
      return decision;
    }
  }

  // Follow: match the lead with a time-gap buffer; slow further when
  // closing inside the desired gap.
  decision.behavior = DrivingBehavior::kFollow;
  const double desired_gap =
      std::max(config_.min_gap, config_.time_gap * state.speed);
  double target = lead_speed;
  if (lead_gap < desired_gap) {
    // Proportional backoff, floored at a crawl.
    const double shortfall =
        std::clamp((desired_gap - lead_gap) / desired_gap, 0.0, 1.0);
    target = std::max(0.5, lead_speed * (1.0 - 0.5 * shortfall));
  }
  decision.target_speed = std::min(target, config_.cruise_speed);
  decision.reason = "following the lead vehicle";
  return decision;
}

PlannerConfig ApplyBehavior(const PlannerConfig& base,
                            const BehaviorDecision& decision) {
  PlannerConfig out;
  ApplyBehaviorInto(base, decision, &out);
  return out;
}

void ApplyBehaviorInto(const PlannerConfig& base,
                       const BehaviorDecision& decision, PlannerConfig* out) {
  // Vector copy-assignment reuses the destination's capacity, so a warm
  // *out takes no allocation here or in the overrides below.
  *out = base;
  switch (decision.behavior) {
    case DrivingBehavior::kCruise:
      out->cruise_speed = decision.target_speed;
      break;
    case DrivingBehavior::kFollow:
      out->cruise_speed = std::max(0.1, decision.target_speed);
      // No lateral excursions while car-following.
      out->lateral_offsets = {0.0};
      break;
    case DrivingBehavior::kOvertake:
      out->cruise_speed = decision.target_speed;
      // Bias to the passing side: centerline stays available as fallback.
      out->lateral_offsets = {4.0, 2.0, 0.0};
      break;
    case DrivingBehavior::kStop:
      out->cruise_speed = std::max(0.1, base.cruise_speed);
      out->speed_factors = {0.0};  // every candidate brakes to a halt
      out->lateral_offsets = {0.0};
      break;
  }
}

}  // namespace adpilot
