#include "ad/prediction.h"

#include <cmath>

#include "support/check.h"

namespace adpilot {

const char* ManeuverName(Maneuver maneuver) {
  switch (maneuver) {
    case Maneuver::kStationary:
      return "stationary";
    case Maneuver::kCruising:
      return "cruising";
    case Maneuver::kCrossing:
      return "crossing";
  }
  return "?";
}

std::vector<PredictedObstacle> PredictObstacles(
    const std::vector<Obstacle>& obstacles, const PredictionConfig& config) {
  std::vector<PredictedObstacle> out;
  PredictObstaclesInto(obstacles, config, &out);
  return out;
}

void PredictObstaclesInto(const std::vector<Obstacle>& obstacles,
                          const PredictionConfig& config,
                          std::vector<PredictedObstacle>* out) {
  CERTKIT_CHECK(config.horizon > 0.0 && config.step > 0.0);
  out->resize(obstacles.size());
  for (std::size_t i = 0; i < obstacles.size(); ++i) {
    const Obstacle& o = obstacles[i];
    PredictedObstacle& p = (*out)[i];
    p.obstacle = o;

    const double speed = o.velocity.Norm();
    if (speed < config.stationary_speed) {
      p.maneuver = Maneuver::kStationary;
    } else if (std::abs(o.velocity.y) / speed > config.crossing_ratio) {
      p.maneuver = Maneuver::kCrossing;
    } else {
      p.maneuver = Maneuver::kCruising;
    }

    const Vec2 vel =
        p.maneuver == Maneuver::kStationary ? Vec2{0.0, 0.0} : o.velocity;
    const double heading = std::atan2(vel.y, vel.x);
    p.trajectory.clear();
    for (double t = 0.0; t <= config.horizon + 1e-9; t += config.step) {
      TrajectoryPoint pt;
      pt.position = o.position + vel * t;
      pt.heading = heading;
      pt.speed = vel.Norm();
      pt.t = t;
      p.trajectory.push_back(pt);
    }
  }
}

}  // namespace adpilot
