#include "ad/tracking.h"

#include <algorithm>
#include <limits>

#include "support/check.h"

namespace adpilot {

std::vector<int> HungarianAssign(const std::vector<std::vector<double>>& cost,
                                 double infeasible_cost) {
  const int rows = static_cast<int>(cost.size());
  if (rows == 0) return {};
  const int cols = static_cast<int>(cost[0].size());
  for (const auto& row : cost) {
    CERTKIT_CHECK_MSG(static_cast<int>(row.size()) == cols,
                      "cost matrix is ragged");
  }
  std::vector<double> flat;
  flat.reserve(static_cast<std::size_t>(rows) * cols);
  for (const auto& row : cost) flat.insert(flat.end(), row.begin(), row.end());
  AssignScratch scratch;
  std::vector<int> assignment;
  HungarianAssignInto(flat.data(), rows, cols, infeasible_cost, &scratch,
                      &assignment);
  return assignment;
}

void HungarianAssignInto(const double* cost, int rows, int cols,
                         double infeasible_cost, AssignScratch* scratch,
                         std::vector<int>* assignment) {
  assignment->assign(static_cast<std::size_t>(rows), -1);
  if (rows == 0 || cols == 0) return;

  // Pad to square with the infeasible cost (classic potentials algorithm,
  // 1-indexed internals).
  const int n = std::max(rows, cols);
  auto a = [&](int i, int j) -> double {
    if (i <= rows && j <= cols) {
      return cost[static_cast<std::size_t>(i - 1) * cols + (j - 1)];
    }
    return infeasible_cost;
  };

  AssignScratch& sc = *scratch;
  sc.u.assign(static_cast<std::size_t>(n) + 1, 0.0);
  sc.v.assign(static_cast<std::size_t>(n) + 1, 0.0);
  sc.p.assign(static_cast<std::size_t>(n) + 1, 0);    // col -> row
  sc.way.assign(static_cast<std::size_t>(n) + 1, 0);  // col -> prev col
  std::vector<double>& u = sc.u;
  std::vector<double>& v = sc.v;
  std::vector<int>& p = sc.p;
  std::vector<int>& way = sc.way;

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    sc.minv.assign(static_cast<std::size_t>(n) + 1,
                   std::numeric_limits<double>::infinity());
    sc.used.assign(static_cast<std::size_t>(n) + 1, 0);
    std::vector<double>& minv = sc.minv;
    std::vector<char>& used = sc.used;
    do {
      used[static_cast<std::size_t>(j0)] = 1;
      const int i0 = p[static_cast<std::size_t>(j0)];
      double delta = std::numeric_limits<double>::infinity();
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const double cur = a(i0, j) - u[static_cast<std::size_t>(i0)] -
                           v[static_cast<std::size_t>(j)];
        if (cur < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(p[static_cast<std::size_t>(j)])] +=
              delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<std::size_t>(j0)] != 0);
    // Augment along the path.
    do {
      const int j1 = way[static_cast<std::size_t>(j0)];
      p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  for (int j = 1; j <= n; ++j) {
    const int i = p[static_cast<std::size_t>(j)];
    if (i >= 1 && i <= rows && j <= cols &&
        cost[static_cast<std::size_t>(i - 1) * cols + (j - 1)] <
            infeasible_cost) {
      (*assignment)[static_cast<std::size_t>(i - 1)] = j - 1;
    }
  }
}

std::vector<int> GreedyAssign(const std::vector<std::vector<double>>& cost,
                              double infeasible_cost) {
  const int rows = static_cast<int>(cost.size());
  std::vector<int> assignment(static_cast<std::size_t>(rows), -1);
  if (rows == 0) return assignment;
  const int cols = static_cast<int>(cost[0].size());
  std::vector<double> flat;
  flat.reserve(static_cast<std::size_t>(rows) * cols);
  for (const auto& row : cost) flat.insert(flat.end(), row.begin(), row.end());
  AssignScratch scratch;
  GreedyAssignInto(flat.data(), rows, cols, infeasible_cost, &scratch,
                   &assignment);
  return assignment;
}

void GreedyAssignInto(const double* cost, int rows, int cols,
                      double infeasible_cost, AssignScratch* scratch,
                      std::vector<int>* assignment) {
  assignment->assign(static_cast<std::size_t>(rows), -1);
  if (rows == 0 || cols == 0) return;
  scratch->used.assign(static_cast<std::size_t>(cols), 0);
  std::vector<char>& used = scratch->used;
  for (int i = 0; i < rows; ++i) {
    const double* row = cost + static_cast<std::size_t>(i) * cols;
    int best = -1;
    for (int j = 0; j < cols; ++j) {
      if (used[static_cast<std::size_t>(j)] || row[j] >= infeasible_cost) {
        continue;
      }
      if (best < 0 || row[j] < row[best]) best = j;
    }
    if (best >= 0) {
      (*assignment)[static_cast<std::size_t>(i)] = best;
      used[static_cast<std::size_t>(best)] = 1;
    }
  }
}

KalmanCv2d::KalmanCv2d(const Vec2& position, double pos_var, double vel_var) {
  x_[0] = position.x;
  x_[1] = position.y;
  x_[2] = 0.0;
  x_[3] = 0.0;
  for (auto& row : p_) {
    for (auto& v : row) v = 0.0;
  }
  p_[0][0] = p_[1][1] = pos_var;
  p_[2][2] = p_[3][3] = vel_var;
}

void KalmanCv2d::Predict(double dt, double process_noise) {
  CERTKIT_CHECK(dt > 0.0);
  // x' = F x with F = [I, dt*I; 0, I].
  x_[0] += dt * x_[2];
  x_[1] += dt * x_[3];
  // P' = F P F^T + Q (Q diagonal, velocity-heavy).
  // Expand the block form directly.
  const double dt2 = dt * dt;
  double np[4][4];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) np[i][j] = p_[i][j];
  }
  // Rows/cols 0<-2 and 1<-3 couplings.
  np[0][0] = p_[0][0] + dt * (p_[2][0] + p_[0][2]) + dt2 * p_[2][2];
  np[0][2] = p_[0][2] + dt * p_[2][2];
  np[2][0] = p_[2][0] + dt * p_[2][2];
  np[1][1] = p_[1][1] + dt * (p_[3][1] + p_[1][3]) + dt2 * p_[3][3];
  np[1][3] = p_[1][3] + dt * p_[3][3];
  np[3][1] = p_[3][1] + dt * p_[3][3];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) p_[i][j] = np[i][j];
  }
  p_[0][0] += 0.25 * dt2 * process_noise;
  p_[1][1] += 0.25 * dt2 * process_noise;
  p_[2][2] += process_noise;
  p_[3][3] += process_noise;
}

void KalmanCv2d::Update(const Vec2& z, double measurement_noise) {
  // H = [I2, 0]; S = H P H^T + R; K = P H^T S^-1 (2x2 inverse).
  const double s00 = p_[0][0] + measurement_noise;
  const double s01 = p_[0][1];
  const double s10 = p_[1][0];
  const double s11 = p_[1][1] + measurement_noise;
  const double det = s00 * s11 - s01 * s10;
  CERTKIT_CHECK_MSG(det > 1e-12, "singular innovation covariance");
  const double i00 = s11 / det, i01 = -s01 / det;
  const double i10 = -s10 / det, i11 = s00 / det;

  const double r0 = z.x - x_[0];
  const double r1 = z.y - x_[1];

  double k[4][2];
  for (int i = 0; i < 4; ++i) {
    k[i][0] = p_[i][0] * i00 + p_[i][1] * i10;
    k[i][1] = p_[i][0] * i01 + p_[i][1] * i11;
  }
  for (int i = 0; i < 4; ++i) {
    x_[i] += k[i][0] * r0 + k[i][1] * r1;
  }
  // P = (I - K H) P.
  double np[4][4];
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      np[i][j] = p_[i][j] - (k[i][0] * p_[0][j] + k[i][1] * p_[1][j]);
    }
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) p_[i][j] = np[i][j];
  }
}

Tracker::Tracker(const TrackerConfig& config) : config_(config) {}

std::vector<Obstacle> Tracker::Update(const std::vector<Obstacle>& detections,
                                      double dt) {
  std::vector<Obstacle> out;
  UpdateInto(detections, dt, &out);
  return out;
}

void Tracker::UpdateInto(const std::vector<Obstacle>& detections, double dt,
                         std::vector<Obstacle>* out) {
  // 1. Predict all tracks forward.
  for (Track& t : tracks_) {
    t.filter.Predict(dt, config_.process_noise);
  }

  // 2. Associate on gated Euclidean distance (flat row-major cost matrix;
  // all association buffers are members reused across frames).
  constexpr double kInfeasible = 1e8;
  const int rows = static_cast<int>(tracks_.size());
  const int cols = static_cast<int>(detections.size());
  cost_.assign(static_cast<std::size_t>(rows) * cols, kInfeasible);
  for (std::size_t ti = 0; ti < tracks_.size(); ++ti) {
    for (std::size_t di = 0; di < detections.size(); ++di) {
      const double d =
          tracks_[ti].filter.position().DistanceTo(detections[di].position);
      if (d <= config_.gate_distance &&
          tracks_[ti].cls == detections[di].cls) {
        cost_[ti * detections.size() + di] = d;
      }
    }
  }
  if (config_.use_greedy_association) {
    GreedyAssignInto(cost_.data(), rows, cols, kInfeasible, &assign_scratch_,
                     &assignment_);
  } else {
    HungarianAssignInto(cost_.data(), rows, cols, kInfeasible,
                        &assign_scratch_, &assignment_);
  }
  const std::vector<int>& assignment = assignment_;

  // 3. Update matched tracks; mark misses.
  detection_used_.assign(detections.size(), 0);
  std::vector<char>& detection_used = detection_used_;
  for (std::size_t ti = 0; ti < tracks_.size(); ++ti) {
    const int di = assignment[ti];
    if (di >= 0) {
      detection_used[static_cast<std::size_t>(di)] = 1;
      tracks_[ti].filter.Update(detections[static_cast<std::size_t>(di)].position,
                                config_.measurement_noise);
      tracks_[ti].hits += 1;
      tracks_[ti].misses = 0;
      tracks_[ti].last_confidence =
          detections[static_cast<std::size_t>(di)].confidence;
    } else {
      tracks_[ti].misses += 1;
      tracks_[ti].hits = 0;
    }
  }

  // 4. Spawn tracks for unmatched detections.
  for (std::size_t di = 0; di < detections.size(); ++di) {
    if (detection_used[di]) continue;
    Track t{next_id_++, detections[di].cls,
            KalmanCv2d(detections[di].position, 4.0, 25.0), 1, 0,
            detections[di].confidence};
    tracks_.push_back(std::move(t));
  }

  // 5. Drop stale tracks.
  tracks_.erase(std::remove_if(tracks_.begin(), tracks_.end(),
                               [&](const Track& t) {
                                 return t.misses > config_.max_misses;
                               }),
                tracks_.end());

  // 6. Emit confirmed tracks.
  out->clear();
  for (const Track& t : tracks_) {
    if (t.hits < config_.confirm_hits) continue;
    Obstacle o;
    o.id = t.id;
    o.cls = t.cls;
    o.position = t.filter.position();
    o.velocity = t.filter.velocity();
    o.confidence = t.last_confidence;
    if (t.cls == ObstacleClass::kPedestrian) {
      o.length = 1.0;
      o.width = 1.0;
    }
    out->push_back(o);
  }
}

}  // namespace adpilot
