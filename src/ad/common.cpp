#include "ad/common.h"

#include <numbers>

namespace adpilot {

double NormalizeAngle(double angle) {
  constexpr double kTwoPi = 2.0 * std::numbers::pi;
  while (angle > std::numbers::pi) angle -= kTwoPi;
  while (angle <= -std::numbers::pi) angle += kTwoPi;
  return angle;
}

}  // namespace adpilot
