#include "ad/planning.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.h"

namespace adpilot {

QuinticPolynomial::QuinticPolynomial(double d0, double dd0, double ddd0,
                                     double d1, double dd1, double ddd1,
                                     double duration)
    : duration_(duration) {
  CERTKIT_CHECK(duration > 0.0);
  // Closed-form boundary-value solution.
  const double t = duration;
  const double t2 = t * t, t3 = t2 * t, t4 = t3 * t, t5 = t4 * t;
  c_[0] = d0;
  c_[1] = dd0;
  c_[2] = ddd0 / 2.0;
  const double b0 = d1 - c_[0] - c_[1] * t - c_[2] * t2;
  const double b1 = dd1 - c_[1] - 2.0 * c_[2] * t;
  const double b2 = ddd1 - 2.0 * c_[2];
  c_[3] = (10.0 * b0 - 4.0 * b1 * t + b2 * t2 / 2.0) / t3;
  c_[4] = (-15.0 * b0 + 7.0 * b1 * t - b2 * t2) / t4;
  c_[5] = (6.0 * b0 - 3.0 * b1 * t + b2 * t2 / 2.0) / t5;
}

double QuinticPolynomial::Value(double t) const {
  t = std::clamp(t, 0.0, duration_);
  return c_[0] + t * (c_[1] + t * (c_[2] + t * (c_[3] + t * (c_[4] +
                                                             t * c_[5]))));
}

double QuinticPolynomial::FirstDerivative(double t) const {
  t = std::clamp(t, 0.0, duration_);
  return c_[1] +
         t * (2.0 * c_[2] +
              t * (3.0 * c_[3] + t * (4.0 * c_[4] + t * 5.0 * c_[5])));
}

double QuinticPolynomial::SecondDerivative(double t) const {
  t = std::clamp(t, 0.0, duration_);
  return 2.0 * c_[2] +
         t * (6.0 * c_[3] + t * (12.0 * c_[4] + t * 20.0 * c_[5]));
}

namespace {

// Arc-length parameterized polyline over the route waypoints. References
// the waypoints in place and builds its station table into caller-owned
// storage, so constructing one on a warm scratch buffer allocates nothing.
class ReferenceLine {
 public:
  ReferenceLine(const std::vector<Vec2>& waypoints,
                std::vector<double>& station_storage)
      : points_(waypoints), station_(station_storage) {
    CERTKIT_CHECK(points_.size() >= 2);
    station_.clear();
    station_.push_back(0.0);
    for (std::size_t i = 1; i < points_.size(); ++i) {
      station_.push_back(station_.back() +
                         points_[i].DistanceTo(points_[i - 1]));
    }
  }

  double length() const { return station_.back(); }

  // Position and unit tangent at station s (clamped).
  void Sample(double s, Vec2* position, Vec2* tangent) const {
    s = std::clamp(s, 0.0, length());
    std::size_t seg = 1;
    while (seg + 1 < station_.size() && station_[seg] < s) ++seg;
    const double s0 = station_[seg - 1];
    const double seg_len = station_[seg] - s0;
    const Vec2 a = points_[seg - 1];
    const Vec2 b = points_[seg];
    const double u = seg_len > 1e-9 ? (s - s0) / seg_len : 0.0;
    *position = a + (b - a) * u;
    const double norm = (b - a).Norm();
    *tangent = norm > 1e-9 ? (b - a) * (1.0 / norm) : Vec2{1.0, 0.0};
  }

  // Projects `p` to (station, lateral offset); positive offset to the left.
  void Project(const Vec2& p, double* s, double* d) const {
    double best_s = 0.0, best_d = std::numeric_limits<double>::infinity();
    double signed_d = 0.0;
    for (std::size_t i = 1; i < points_.size(); ++i) {
      const Vec2 a = points_[i - 1];
      const Vec2 b = points_[i];
      const Vec2 ab = b - a;
      const double len2 = ab.Dot(ab);
      const double u =
          len2 > 1e-12 ? std::clamp((p - a).Dot(ab) / len2, 0.0, 1.0) : 0.0;
      const Vec2 proj = a + ab * u;
      const double dist = p.DistanceTo(proj);
      if (dist < best_d) {
        best_d = dist;
        best_s = station_[i - 1] + u * std::sqrt(len2);
        // Sign via the 2D cross product of tangent x (p - proj).
        const double cross = ab.x * (p.y - proj.y) - ab.y * (p.x - proj.x);
        signed_d = cross >= 0.0 ? dist : -dist;
      }
    }
    *s = best_s;
    *d = signed_d;
  }

 private:
  const std::vector<Vec2>& points_;
  std::vector<double>& station_;
};

void EmergencyStopInto(const VehicleState& state, const PlannerConfig& config,
                       Trajectory* out_traj) {
  Trajectory& out = *out_traj;
  out.clear();
  double v = state.speed;
  Vec2 pos = state.pose.position;
  const Vec2 dir = {std::cos(state.pose.heading),
                    std::sin(state.pose.heading)};
  for (double t = 0.0; t <= config.horizon + 1e-9; t += config.step) {
    TrajectoryPoint pt;
    pt.position = pos;
    pt.heading = state.pose.heading;
    pt.speed = v;
    pt.acceleration = v > 0.0 ? -config.max_decel : 0.0;
    pt.t = t;
    out.push_back(pt);
    const double dv = config.max_decel * config.step;
    const double v_next = std::max(0.0, v - dv);
    pos = pos + dir * ((v + v_next) / 2.0 * config.step);
    v = v_next;
  }
}

// Minimum distance from trajectory sample k to any predicted obstacle at
// the matching time.
bool CollidesAt(const TrajectoryPoint& pt,
                const std::vector<PredictedObstacle>& predictions,
                double safety_radius) {
  for (const PredictedObstacle& p : predictions) {
    // Find the prediction sample nearest in time (same sampling grid).
    const Trajectory& traj = p.trajectory;
    if (traj.empty()) continue;
    std::size_t idx = 0;
    double best_dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < traj.size(); ++i) {
      const double dt = std::abs(traj[i].t - pt.t);
      if (dt < best_dt) {
        best_dt = dt;
        idx = i;
      }
    }
    const double extent =
        std::max(p.obstacle.length, p.obstacle.width) / 2.0;
    if (pt.position.DistanceTo(traj[idx].position) <
        safety_radius + extent) {
      return true;
    }
  }
  return false;
}

}  // namespace

// REQ-PLAN-001: the planner shall select a collision-free trajectory
// against all predicted obstacle trajectories over the horizon.
// REQ-PLAN-002: when no candidate is collision-free, the planner shall
// command an emergency stop at maximum deceleration.
PlanResult PlanTrajectory(const VehicleState& state, const Route& route,
                          const std::vector<PredictedObstacle>& predictions,
                          const PlannerConfig& config) {
  PlannerScratch scratch;
  PlanResult result;
  PlanTrajectoryInto(state, route, predictions, config, &scratch, &result);
  return result;
}

void PlanTrajectoryInto(const VehicleState& state, const Route& route,
                        const std::vector<PredictedObstacle>& predictions,
                        const PlannerConfig& config, PlannerScratch* scratch,
                        PlanResult* result_out) {
  PlanResult& result = *result_out;
  result.trajectory.clear();
  result.cost = 0.0;
  result.collision_free = true;
  result.candidates_evaluated = 0;
  if (route.waypoints.size() < 2) {
    EmergencyStopInto(state, config, &result.trajectory);
    result.collision_free = false;
    return;
  }
  const ReferenceLine ref(route.waypoints, scratch->ref_station);
  double s0 = 0.0, d0 = 0.0;
  ref.Project(state.pose.position, &s0, &d0);

  double best_cost = std::numeric_limits<double>::infinity();
  Trajectory& best = scratch->best;
  Trajectory& traj = scratch->candidate;
  best.clear();
  bool found = false;

  for (double offset : config.lateral_offsets) {
    for (double factor : config.speed_factors) {
      ++result.candidates_evaluated;
      const double target_speed = config.cruise_speed * factor;
      // The quintic clamps past its duration, so converging in a fraction
      // of the horizon holds the target offset for the remainder.
      QuinticPolynomial lateral(d0, 0.0, 0.0, offset, 0.0, 0.0,
                                config.horizon *
                                    config.lateral_horizon_factor);
      traj.clear();
      double s = s0;
      double v = state.speed;
      double accel_cost = 0.0;
      bool collided = false;
      for (double t = 0.0; t <= config.horizon + 1e-9; t += config.step) {
        // Longitudinal: approach the target speed with bounded accel.
        double a = 0.0;
        if (v < target_speed) {
          a = std::min(config.max_accel, (target_speed - v) / config.step);
        } else if (v > target_speed) {
          a = std::max(-config.max_decel, (target_speed - v) / config.step);
        }
        TrajectoryPoint pt;
        Vec2 pos, tan;
        ref.Sample(s, &pos, &tan);
        const Vec2 normal{-tan.y, tan.x};
        const double d = lateral.Value(t);
        pt.position = pos + normal * d;
        pt.heading = std::atan2(tan.y, tan.x);
        pt.speed = v;
        pt.acceleration = a;
        pt.t = t;
        if (CollidesAt(pt, predictions, config.safety_radius)) {
          collided = true;
          break;
        }
        traj.push_back(pt);
        accel_cost += a * a + lateral.SecondDerivative(t) *
                                  lateral.SecondDerivative(t);
        const double v_next =
            std::clamp(v + a * config.step, 0.0, config.cruise_speed * 1.5);
        s += (v + v_next) / 2.0 * config.step;
        v = v_next;
      }
      if (collided) continue;
      const double cost =
          config.w_offset * offset * offset +
          config.w_speed_dev * (config.cruise_speed - target_speed) *
              (config.cruise_speed - target_speed) +
          config.w_accel * accel_cost;
      if (cost < best_cost) {
        best_cost = cost;
        // Swap instead of move: both buffers keep their capacity and ping-
        // pong between "best so far" and "next candidate" roles.
        std::swap(best, traj);
        found = true;
      }
    }
  }

  if (!found) {
    EmergencyStopInto(state, config, &result.trajectory);
    result.collision_free = false;
    result.cost = config.w_collision;
    return;
  }
  // Copy-assign reuses result.trajectory's capacity.
  result.trajectory = best;
  result.cost = best_cost;
  result.collision_free = true;
}

}  // namespace adpilot
