// adpilot: per-tick input/output signatures for deterministic replay.
//
// A campaign candidate fully determines its drive (every stochastic element
// is seeded), so a replay artifact does not need to ship raw frames — it
// ships *digests* of the per-tick data streams instead, and a re-execution
// is gated on reproducing every digest bit-for-bit. The TickTap observes
// each tick at five points in the pipeline:
//
//   frame      - the rendered camera tensor fed to perception (0 on a
//                sensor-dropout tick: no frame existed)
//   detections - perception's instantaneous detections (pre-tracking,
//                world frame, includes confidences — this is where a
//                quantized-vs-fp32 divergence first becomes observable
//                even when the downstream plan is unaffected)
//   tracked    - the confirmed obstacle list after fault corruption and
//                range sanitization (what planning actually consumed)
//   command    - the control command sent to the CAN bus
//   state      - the published localization estimate
//
// All digests are FNV-1a/64 over the exact bit patterns (doubles hashed by
// bits, not values), so two runs produce equal signatures iff the streams
// are bit-identical.
#ifndef AD_REPLAY_TAP_H_
#define AD_REPLAY_TAP_H_

#include <cstdint>
#include <vector>

#include "ad/common.h"
#include "nn/tensor.h"

namespace adpilot {

struct TickReport;  // ad/pipeline.h

// One tick's stream signatures, in pipeline order.
struct TickSignature {
  std::int64_t tick = 0;
  std::uint64_t frame = 0;       // 0 == no frame (sensor dropout)
  std::uint64_t detections = 0;
  std::uint64_t tracked = 0;
  std::uint64_t command = 0;
  std::uint64_t state = 0;
  std::int64_t faults_injected = 0;  // cumulative injector count after tick
};

// Pipeline observer. Install with ApolloPilot::SetTickTap; OnTick fires
// once per Tick(), after actuation, on the pilot's thread.
class TickTap {
 public:
  virtual ~TickTap() = default;
  virtual void OnTick(const TickSignature& signature) = 0;
};

// The standard tap: records every signature in order.
class TickSignatureRecorder : public TickTap {
 public:
  void OnTick(const TickSignature& signature) override {
    signatures_.push_back(signature);
  }
  const std::vector<TickSignature>& signatures() const { return signatures_; }
  std::vector<TickSignature> Take() { return std::move(signatures_); }

 private:
  std::vector<TickSignature> signatures_;
};

// --- digest primitives (FNV-1a/64 over bit patterns) ---------------------

std::uint64_t DigestTensor(const nn::Tensor& t, std::uint64_t seed);
std::uint64_t DigestVec2(const Vec2& v, std::uint64_t seed);
std::uint64_t DigestObstacles(const std::vector<Obstacle>& obstacles,
                              std::uint64_t seed);
std::uint64_t DigestVehicleState(const VehicleState& s, std::uint64_t seed);
std::uint64_t DigestCommand(const ControlCommand& c, std::uint64_t seed);

// Field-by-field digest of one TickReport (every field, fixed order).
std::uint64_t DigestTickReport(const TickReport& r, std::uint64_t seed);
// Digest of a whole drive: folds DigestTickReport over `reports`. This is
// the digest that gates `certkit replay`.
std::uint64_t DigestTickReports(const std::vector<TickReport>& reports);

// Digest of one TickSignature (for folding a signature stream).
std::uint64_t DigestTickSignature(const TickSignature& s, std::uint64_t seed);

}  // namespace adpilot

#endif  // AD_REPLAY_TAP_H_
