// adpilot: CAN bus — command transport to the (simulated) vehicle hardware
// and chassis feedback (the CAN Bus module of Figure 1).
//
// The vehicle is a kinematic bicycle model with first-order throttle/brake
// dynamics; the bus layer frames commands, applies them, and reports
// chassis state (with configurable sensor noise) back to the AD system.
#ifndef AD_CANBUS_H_
#define AD_CANBUS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "ad/common.h"
#include "support/rng.h"

namespace adpilot {

// A framed CAN message (simplified: one frame per command field group).
struct CanFrame {
  std::uint32_t can_id = 0;
  std::uint8_t dlc = 8;
  std::uint8_t data[8] = {};
};

// Encodes/decodes control commands to frames (fixed-point scaling, saturated
// to the int16 wire range). Command frames carry a Fletcher-16 checksum over
// the payload bytes so the receiver can detect corruption on the wire
// (ISO 26262-6 Table 4 "information redundancy").
CanFrame EncodeCommand(const ControlCommand& command);
ControlCommand DecodeCommand(const CanFrame& frame);

// Fletcher-16 over data[0..5] of a command frame.
std::uint16_t CommandFrameChecksum(const CanFrame& frame);
// True when `frame` is a well-formed command frame (id, dlc, checksum).
bool VerifyCommandFrame(const CanFrame& frame);

struct VehicleParams {
  double wheelbase = 2.8;
  double max_accel = 3.0;        // full-throttle acceleration
  double max_decel = 6.0;        // full-brake deceleration
  double drag = 0.05;            // speed-proportional drag
  double actuator_lag = 0.2;     // first-order lag time constant, seconds
  double max_speed = 20.0;
};

struct ChassisFeedback {
  VehicleState state;   // true kinematics
  Vec2 gnss_position;   // noisy position fix
  double wheel_speed;   // noisy speed
};

// The simulated vehicle behind the bus.
class SimulatedVehicle {
 public:
  SimulatedVehicle(const Pose& initial_pose, const VehicleParams& params,
                   std::uint64_t noise_seed = 99);

  void Apply(const ControlCommand& command, double dt);
  ChassisFeedback Feedback(double gnss_noise, double speed_noise);

  const VehicleState& state() const { return state_; }

 private:
  VehicleParams params_;
  VehicleState state_;
  double commanded_accel_ = 0.0;  // post-lag acceleration
  certkit::support::Xoshiro256 rng_;
};

// The bus: queues frames, delivers to the vehicle, returns feedback.
//
// Receiver-side defense: frames that fail VerifyCommandFrame (wrong id,
// short dlc, checksum mismatch — e.g. after injected bit flips) are rejected
// and the vehicle keeps executing the last valid command.
class CanBus {
 public:
  // A wire-level fault hook (fault injection): may mutate the frame in
  // transit; returning false drops the frame entirely.
  using FrameFault = std::function<bool(CanFrame*)>;

  CanBus(const Pose& initial_pose, const VehicleParams& params = {},
         std::uint64_t noise_seed = 99);

  // AD side: send a control command (framed like real traffic).
  void SendCommand(const ControlCommand& command);
  // Advance the vehicle, delivering all queued frames; returns feedback.
  ChassisFeedback Step(double dt, double gnss_noise = 1.0,
                       double speed_noise = 0.1);

  // Installs (or clears, with nullptr) the wire fault hook.
  void SetFrameFault(FrameFault fault) { frame_fault_ = std::move(fault); }

  std::int64_t frames_sent() const { return frames_sent_; }
  // Frames accepted by the receiver (valid id + checksum).
  std::int64_t frames_delivered() const { return frames_delivered_; }
  // Frames discarded by the receiver-side validity check.
  std::int64_t frames_rejected() const { return frames_rejected_; }
  const SimulatedVehicle& vehicle() const { return vehicle_; }

 private:
  SimulatedVehicle vehicle_;
  // FIFO as a flat vector plus a read cursor: Step drains everything each
  // cycle and resets the cursor, so the buffer's capacity is reused forever
  // (a deque walks its block map and re-allocates nodes as the cursor
  // advances, which is not allocation-free in steady state).
  std::vector<CanFrame> queue_;
  std::size_t queue_head_ = 0;
  ControlCommand last_command_;
  FrameFault frame_fault_;
  std::int64_t frames_sent_ = 0;
  std::int64_t frames_delivered_ = 0;
  std::int64_t frames_rejected_ = 0;
};

}  // namespace adpilot

#endif  // AD_CANBUS_H_
