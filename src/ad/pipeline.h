// adpilot: the full AD pipeline of Figure 1 — perception (detection +
// tracking) -> prediction -> localization -> routing -> planning -> control
// -> CAN bus, closed over a simulated world.
#ifndef AD_PIPELINE_H_
#define AD_PIPELINE_H_

#include <memory>
#include <vector>

#include "ad/behavior.h"
#include "ad/canbus.h"
#include "ad/control.h"
#include "ad/localization.h"
#include "ad/perception.h"
#include "ad/planning.h"
#include "ad/prediction.h"
#include "ad/routing.h"
#include "ad/scenario.h"

namespace adpilot {

struct PilotConfig {
  ScenarioConfig scenario;
  PerceptionConfig perception;
  BehaviorConfig behavior;
  PredictionConfig prediction;
  PlannerConfig planner;
  ControllerConfig controller;
  LocalizationConfig localization;
  VehicleParams vehicle;
  double goal_x = 200.0;  // route goal along the road
  double tick = 0.1;      // pipeline period, seconds
};

struct TickReport {
  double time = 0.0;
  VehicleState localized;       // EKF estimate
  VehicleState ground_truth;    // simulator truth
  std::size_t detections = 0;
  std::size_t tracked_obstacles = 0;
  bool plan_collision_free = true;
  DrivingBehavior behavior = DrivingBehavior::kCruise;
  double min_obstacle_distance = 1e9;  // ground-truth clearance
  ControlCommand command;
};

// The closed-loop autonomous driving stack.
class ApolloPilot {
 public:
  explicit ApolloPilot(const PilotConfig& config);

  // Runs one perception->...->actuation cycle.
  TickReport Tick();

  // Convenience: run for `seconds`; returns all tick reports.
  std::vector<TickReport> Run(double seconds);

  bool ReachedGoal() const;
  double MinClearanceSoFar() const { return min_clearance_; }
  const Route& route() const { return route_; }
  Scenario& scenario() { return scenario_; }

 private:
  PilotConfig config_;
  Scenario scenario_;
  LaneGraph graph_;
  Route route_;
  Perception perception_;
  BehaviorPlanner behavior_;
  std::unique_ptr<EkfLocalizer> localizer_;
  TrajectoryController controller_;
  CanBus canbus_;
  double time_ = 0.0;
  double min_clearance_ = 1e9;
};

}  // namespace adpilot

#endif  // AD_PIPELINE_H_
