// adpilot: the full AD pipeline of Figure 1 — perception (detection +
// tracking) -> prediction -> localization -> routing -> planning -> control
// -> CAN bus, closed over a simulated world.
#ifndef AD_PIPELINE_H_
#define AD_PIPELINE_H_

#include <limits>
#include <memory>
#include <vector>

#include "ad/behavior.h"
#include "ad/canbus.h"
#include "ad/control.h"
#include "ad/localization.h"
#include "ad/perception.h"
#include "ad/planning.h"
#include "ad/prediction.h"
#include "ad/routing.h"
#include "ad/replay_tap.h"
#include "ad/safety/degradation.h"
#include "ad/safety/fault_injector.h"
#include "ad/safety/monitors.h"
#include "ad/scenario.h"

namespace adpilot {

struct PilotConfig {
  ScenarioConfig scenario;
  PerceptionConfig perception;
  BehaviorConfig behavior;
  PredictionConfig prediction;
  PlannerConfig planner;
  ControllerConfig controller;
  LocalizationConfig localization;
  VehicleParams vehicle;
  SafetyConfig safety;    // runtime monitors + degradation policy
  double goal_x = 200.0;  // route goal along the road
  double tick = 0.1;      // pipeline period, seconds
};

struct TickReport {
  double time = 0.0;
  VehicleState localized;       // EKF estimate (as published downstream)
  VehicleState ground_truth;    // simulator truth
  std::size_t detections = 0;
  std::size_t tracked_obstacles = 0;
  bool plan_collision_free = true;
  DrivingBehavior behavior = DrivingBehavior::kCruise;
  // Ground-truth clearance. Valid only when `obstacle_in_range` is true —
  // an empty world reports the explicit no-obstacle state rather than a
  // sentinel distance.
  bool obstacle_in_range = false;
  double min_obstacle_distance = 0.0;
  ControlCommand command;       // the command actually sent to the CAN bus
  SafetyState safety_state = SafetyState::kNominal;
  std::size_t new_violations = 0;   // monitor violations logged this tick
  bool command_overridden = false;  // safety layer replaced/limited the plan
};

// The closed-loop autonomous driving stack.
class ApolloPilot {
 public:
  explicit ApolloPilot(const PilotConfig& config);

  // Runs one perception->...->actuation cycle.
  TickReport Tick();

  // Convenience: run for `seconds`; returns all tick reports.
  std::vector<TickReport> Run(double seconds);

  bool ReachedGoal() const;
  // True once at least one tick observed a ground-truth obstacle; until
  // then MinClearanceSoFar() has no sample and returns +infinity.
  bool HasClearanceSample() const { return clearance_sampled_; }
  double MinClearanceSoFar() const { return min_clearance_; }
  const Route& route() const { return route_; }
  Scenario& scenario() { return scenario_; }

  // Installs a fault injector (non-owning; may be nullptr to clear). The
  // injector perturbs sensor, localization, timing, and CAN-bus data flows;
  // the safety monitors are expected to detect and contain the faults.
  void SetFaultInjector(FaultInjector* injector);

  // Installs a per-tick signature observer (non-owning; nullptr to clear).
  // When set, every Tick() computes FNV digests of its input/output streams
  // (camera frame, detections, tracked obstacles, command, localization)
  // and calls tap->OnTick — the capture hook of the replay artifact layer.
  // Digesting only happens while a tap is installed, so untapped drives pay
  // nothing.
  void SetTickTap(TickTap* tap) { tick_tap_ = tap; }

  const SafetyLog& safety_log() const { return safety_log_; }
  SafetyState safety_state() const { return degradation_.state(); }
  const CanBus& canbus() const { return canbus_; }

 private:
  PilotConfig config_;
  Scenario scenario_;
  LaneGraph graph_;
  Route route_;
  Perception perception_;
  BehaviorPlanner behavior_;
  std::unique_ptr<EkfLocalizer> localizer_;
  TrajectoryController controller_;
  CanBus canbus_;
  double time_ = 0.0;
  std::int64_t tick_index_ = 0;
  double min_clearance_ = std::numeric_limits<double>::infinity();
  bool clearance_sampled_ = false;

  // Runtime safety layer (ISO 26262-6 Tables 4/5).
  SafetyLog safety_log_;
  RangeMonitor range_monitor_;
  PlausibilityMonitor plausibility_monitor_;
  DeadlineWatchdog watchdog_;
  ControlFlowMonitor control_flow_monitor_;
  DegradationManager degradation_;
  FaultInjector* injector_ = nullptr;  // non-owning
  TickTap* tick_tap_ = nullptr;        // non-owning
  std::int64_t violations_tallied_ = 0;
  VehicleState last_published_est_;
  std::vector<Obstacle> last_tracked_;

  // Steady-state tick scratch: every per-tick intermediate lives here so a
  // warm Tick() performs zero heap allocations (enforced by the tickperf
  // counting-allocator test). Buffers grow to their peak size on the first
  // few ticks and are reused afterwards.
  std::vector<nn::Tensor> frame_scratch_;  // batch-of-one camera frame
  std::vector<Obstacle> tracked_scratch_;
  std::vector<PredictedObstacle> predictions_scratch_;
  PlannerConfig planner_config_scratch_;
  PlannerScratch planner_scratch_;
  PlanResult plan_scratch_;
};

}  // namespace adpilot

#endif  // AD_PIPELINE_H_
