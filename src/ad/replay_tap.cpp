#include "ad/replay_tap.h"

#include "ad/pipeline.h"
#include "support/fnv.h"

namespace adpilot {

using certkit::support::FnvBytes;
using certkit::support::FnvDouble;
using certkit::support::FnvI64;
using certkit::support::FnvU64;
using certkit::support::kFnvOffsetBasis;

std::uint64_t DigestTensor(const nn::Tensor& t, std::uint64_t seed) {
  seed = FnvI64(t.n(), seed);
  seed = FnvI64(t.c(), seed);
  seed = FnvI64(t.h(), seed);
  seed = FnvI64(t.w(), seed);
  return FnvBytes(t.data(), t.size() * sizeof(float), seed);
}

std::uint64_t DigestVec2(const Vec2& v, std::uint64_t seed) {
  return FnvDouble(v.y, FnvDouble(v.x, seed));
}

std::uint64_t DigestObstacles(const std::vector<Obstacle>& obstacles,
                              std::uint64_t seed) {
  seed = FnvU64(obstacles.size(), seed);
  for (const Obstacle& o : obstacles) {
    seed = FnvI64(o.id, seed);
    seed = FnvI64(static_cast<std::int64_t>(o.cls), seed);
    seed = DigestVec2(o.position, seed);
    seed = DigestVec2(o.velocity, seed);
    seed = FnvDouble(o.length, seed);
    seed = FnvDouble(o.width, seed);
    seed = FnvDouble(o.confidence, seed);
  }
  return seed;
}

std::uint64_t DigestVehicleState(const VehicleState& s, std::uint64_t seed) {
  seed = DigestVec2(s.pose.position, seed);
  seed = FnvDouble(s.pose.heading, seed);
  seed = FnvDouble(s.speed, seed);
  seed = FnvDouble(s.yaw_rate, seed);
  return FnvDouble(s.acceleration, seed);
}

std::uint64_t DigestCommand(const ControlCommand& c, std::uint64_t seed) {
  return FnvDouble(c.steering, FnvDouble(c.brake, FnvDouble(c.throttle, seed)));
}

std::uint64_t DigestTickReport(const TickReport& r, std::uint64_t seed) {
  seed = FnvDouble(r.time, seed);
  seed = DigestVehicleState(r.localized, seed);
  seed = DigestVehicleState(r.ground_truth, seed);
  seed = FnvU64(r.detections, seed);
  seed = FnvU64(r.tracked_obstacles, seed);
  seed = FnvU64(r.plan_collision_free ? 1 : 0, seed);
  seed = FnvI64(static_cast<std::int64_t>(r.behavior), seed);
  seed = FnvU64(r.obstacle_in_range ? 1 : 0, seed);
  seed = FnvDouble(r.min_obstacle_distance, seed);
  seed = DigestCommand(r.command, seed);
  seed = FnvI64(static_cast<std::int64_t>(r.safety_state), seed);
  seed = FnvU64(r.new_violations, seed);
  return FnvU64(r.command_overridden ? 1 : 0, seed);
}

std::uint64_t DigestTickReports(const std::vector<TickReport>& reports) {
  std::uint64_t seed = FnvU64(reports.size());
  for (const TickReport& r : reports) seed = DigestTickReport(r, seed);
  return seed;
}

std::uint64_t DigestTickSignature(const TickSignature& s,
                                  std::uint64_t seed) {
  seed = FnvI64(s.tick, seed);
  seed = FnvU64(s.frame, seed);
  seed = FnvU64(s.detections, seed);
  seed = FnvU64(s.tracked, seed);
  seed = FnvU64(s.command, seed);
  seed = FnvU64(s.state, seed);
  return FnvI64(s.faults_injected, seed);
}

}  // namespace adpilot
