#include "ad/safety/fault_injector.h"

#include <cmath>
#include <limits>

#include "support/check.h"

namespace adpilot {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSensorDropout: return "sensor_dropout";
    case FaultKind::kDetectionNaN: return "detection_nan";
    case FaultKind::kDetectionRange: return "detection_range";
    case FaultKind::kStaleLocalization: return "stale_localization";
    case FaultKind::kCanBitFlip: return "can_bit_flip";
    case FaultKind::kCanFrameDrop: return "can_frame_drop";
    case FaultKind::kTimingOverrun: return "timing_overrun";
  }
  return "unknown";
}

bool FaultKindFromName(std::string_view name, FaultKind* out) {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    const FaultKind kind = static_cast<FaultKind>(k);
    if (name == FaultKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

FaultInjector::FaultInjector(const FaultCampaignConfig& config)
    : config_(config), rng_(config.seed) {
  for (const FaultSpec& f : config_.faults) {
    CERTKIT_CHECK_MSG(f.onset_tick >= 0, "fault onset before tick 0");
    CERTKIT_CHECK_MSG(f.duration_ticks >= 1, "fault duration must be >= 1");
  }
}

void FaultInjector::BeginTick(std::int64_t tick) {
  CERTKIT_CHECK_MSG(tick > tick_, "tick index must increase monotonically");
  tick_ = tick;
}

const FaultSpec* FaultInjector::ActiveSpec(FaultKind kind) const {
  for (const FaultSpec& f : config_.faults) {
    if (f.kind == kind && tick_ >= f.onset_tick &&
        tick_ < f.onset_tick + f.duration_ticks) {
      return &f;
    }
  }
  return nullptr;
}

void FaultInjector::Count(FaultKind kind) {
  ++injected_[static_cast<std::size_t>(kind)];
}

bool FaultInjector::SensorDropout() {
  if (ActiveSpec(FaultKind::kSensorDropout) == nullptr) return false;
  Count(FaultKind::kSensorDropout);
  return true;
}

bool FaultInjector::StaleLocalization() {
  if (ActiveSpec(FaultKind::kStaleLocalization) == nullptr) return false;
  Count(FaultKind::kStaleLocalization);
  return true;
}

double FaultInjector::TimingOverrunSeconds() {
  const FaultSpec* spec = ActiveSpec(FaultKind::kTimingOverrun);
  if (spec == nullptr) return 0.0;
  Count(FaultKind::kTimingOverrun);
  return spec->magnitude;
}

bool FaultInjector::CorruptObstacles(std::vector<Obstacle>* obstacles) {
  CERTKIT_CHECK(obstacles != nullptr);
  bool mutated = false;
  if (const FaultSpec* spec = ActiveSpec(FaultKind::kDetectionNaN);
      spec != nullptr) {
    if (obstacles->empty()) {
      obstacles->push_back(Obstacle{});  // fabricated ghost detection
    }
    const std::size_t idx = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(obstacles->size()) - 1));
    Obstacle& o = (*obstacles)[idx];
    o.position.x = std::numeric_limits<double>::quiet_NaN();
    o.velocity.y = std::numeric_limits<double>::quiet_NaN();
    Count(FaultKind::kDetectionNaN);
    mutated = true;
  }
  if (const FaultSpec* spec = ActiveSpec(FaultKind::kDetectionRange);
      spec != nullptr) {
    if (obstacles->empty()) {
      obstacles->push_back(Obstacle{});
    }
    const std::size_t idx = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(obstacles->size()) - 1));
    Obstacle& o = (*obstacles)[idx];
    // Teleport far out of the sensor envelope and give it an absurd speed.
    const double sign = rng_.Bernoulli(0.5) ? 1.0 : -1.0;
    o.position.x += sign * 1000.0 * spec->magnitude;
    o.velocity.x = sign * 150.0 * spec->magnitude;
    Count(FaultKind::kDetectionRange);
    mutated = true;
  }
  return mutated;
}

bool FaultInjector::MutateFrame(CanFrame* frame) {
  CERTKIT_CHECK(frame != nullptr);
  const FaultSpec* spec = ActiveSpec(FaultKind::kCanBitFlip);
  if (spec == nullptr) return false;
  const int flips = std::max(1, static_cast<int>(spec->magnitude));
  for (int i = 0; i < flips; ++i) {
    const std::int64_t bit = rng_.UniformInt(0, 8 * 8 - 1);
    frame->data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  }
  Count(FaultKind::kCanBitFlip);
  return true;
}

bool FaultInjector::DropFrame() {
  if (ActiveSpec(FaultKind::kCanFrameDrop) == nullptr) return false;
  Count(FaultKind::kCanFrameDrop);
  return true;
}

std::int64_t FaultInjector::injected(FaultKind kind) const {
  return injected_[static_cast<std::size_t>(kind)];
}

std::int64_t FaultInjector::total_injected() const {
  std::int64_t total = 0;
  for (std::int64_t n : injected_) total += n;
  return total;
}

}  // namespace adpilot
