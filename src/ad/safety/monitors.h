// adpilot::safety — runtime safety monitors for the closed-loop pipeline.
//
// Each monitor implements one ISO 26262-6 Table 4 error-detection mechanism
// at the software architectural level, turned from the static census of
// bench/table4_5_error_mechanisms into executable checks:
//
//   * RangeMonitor        — "range checks of input and output data": every
//     perceived obstacle and every actuation command is validated against
//     physical bounds before it crosses a stage boundary;
//   * PlausibilityMonitor — "plausibility check": the EKF localization
//     estimate is compared against an independent dead-reckoning envelope
//     propagated from chassis odometry;
//   * DeadlineWatchdog    — "external monitoring facility": a deadline
//     supervisor over the tick ExecutionTimer;
//   * ControlFlowMonitor  — "control flow monitoring": the Tick stage
//     sequence (perception -> ... -> CAN bus -> localization) is checked
//     for missing, duplicated, or reordered stages every cycle.
//
// Violations are appended to a SafetyLog. The log is thread-safe: timers and
// monitors may fire from pool worker threads (see the `safety`-labeled tests
// which exercise it under TSan).
#ifndef AD_SAFETY_MONITORS_H_
#define AD_SAFETY_MONITORS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "ad/common.h"
#include "timing/timing.h"

namespace adpilot {

// Thresholds and policy knobs of the runtime safety layer.
struct SafetyConfig {
  bool enabled = true;
  // DeadlineWatchdog: budget for one pipeline cycle, seconds. Generous by
  // default so sanitizer builds do not trip it; benches and tests tighten it.
  double tick_deadline = 0.5;
  // RangeMonitor: plausible detection window around the ego, meters.
  double max_detection_range = 120.0;
  // RangeMonitor: plausible obstacle speed, m/s.
  double max_obstacle_speed = 60.0;
  // PlausibilityMonitor: base envelope radius, meters, plus growth per
  // second since the dead-reckoning anchor (odometry drift allowance).
  double plausibility_base = 3.0;
  double plausibility_growth = 2.0;
  // PlausibilityMonitor: minimum anchor age, seconds, before a passing check
  // re-anchors. Re-anchoring on every pass would let a frozen estimate drag
  // the anchor along with it (divergence per cycle never exceeds the base
  // envelope); holding the anchor lets real divergence accumulate.
  double plausibility_reanchor = 1.0;
  // Degradation policy: consecutive degraded ticks before limp-home, further
  // degraded ticks before safe-stop, and clean ticks to recover to nominal.
  int limp_home_after = 3;
  int safe_stop_after = 10;
  int recover_after = 20;
  // Limp-home actuation limits.
  double limp_home_speed = 3.0;   // m/s
  double limp_home_throttle = 0.3;
};

enum class MonitorId {
  kRange = 0,
  kPlausibility,
  kDeadline,
  kControlFlow,
  kCommand,
  kCanBus,
};
inline constexpr int kNumMonitors = 6;
const char* MonitorName(MonitorId id);

enum class Severity { kWarning = 0, kCritical };

// One detected violation. `handled` is set by the recording site when a
// mitigation was applied in the same cycle (value discarded, command
// replaced, frame rejected) — the Table 5 error-handling evidence.
struct Violation {
  std::int64_t tick = 0;
  MonitorId monitor = MonitorId::kRange;
  Severity severity = Severity::kWarning;
  bool handled = false;
  std::string message;
};

// Aggregate verdict over a SafetyLog — the safety oracle a test-generation
// campaign scores candidates with. Per-monitor tallies give a "novel
// outcome" signal (a candidate that first trips a monitor is kept even if
// it adds no structural coverage).
struct SafetySummary {
  std::int64_t total = 0;
  std::int64_t warnings = 0;
  std::int64_t criticals = 0;
  std::int64_t handled = 0;
  std::int64_t by_monitor[kNumMonitors] = {0, 0, 0, 0, 0, 0};
};

// Append-only, thread-safe violation log.
class SafetyLog {
 public:
  void Record(Violation violation);

  std::int64_t size() const;
  std::vector<Violation> Snapshot() const;
  std::int64_t CountByMonitor(MonitorId id) const;
  std::int64_t CountHandled() const;
  // Tallies warnings/criticals recorded at or after entry `from` (a prior
  // size() value); used by the pipeline to close each tick's verdict.
  void TallySince(std::int64_t from, std::size_t* warnings,
                  std::size_t* criticals) const;
  // Aggregate oracle verdict over the whole log.
  SafetySummary Summarize() const;

 private:
  mutable std::mutex mu_;
  std::vector<Violation> violations_;
};

// Table 4 "range checks of input and output data".
class RangeMonitor {
 public:
  explicit RangeMonitor(const SafetyConfig& config);

  // Validates every obstacle (finite fields, positive extents, confidence in
  // [0, 1], position within max_detection_range of the ego, speed below
  // max_obstacle_speed). Implausible obstacles are removed (handled) and one
  // violation per removal is recorded. Returns the number removed.
  std::size_t CheckAndSanitizeObstacles(std::int64_t tick, const Pose& ego,
                                        std::vector<Obstacle>* obstacles,
                                        SafetyLog* log) const;

  // Validates an actuation command (finite, throttle/brake in [0, 1],
  // steering within hardware range). An invalid command is replaced with a
  // braking command (handled) and recorded as critical. Returns true when
  // the command was replaced.
  bool CheckCommand(std::int64_t tick, ControlCommand* command,
                    SafetyLog* log) const;

 private:
  SafetyConfig config_;
};

// Table 4 "plausibility check": EKF estimate vs. a dead-reckoning envelope.
// The monitor integrates chassis odometry (acceleration, yaw rate) itself.
// A passing check re-anchors only once the anchor is plausibility_reanchor
// seconds old: frequent enough that odometry drift never outgrows the
// envelope in nominal operation, but held long enough that a frozen or
// divergent estimate accumulates divergence and is flagged within a few
// cycles (a per-cycle re-anchor would follow the faulty estimate and mask
// it forever).
class PlausibilityMonitor {
 public:
  explicit PlausibilityMonitor(const SafetyConfig& config);

  void Anchor(const VehicleState& state);
  void Propagate(double acceleration, double yaw_rate, double dt);
  // Checks `estimate` against the envelope; records a violation (warning)
  // on divergence. Returns true when the estimate is plausible.
  bool Check(std::int64_t tick, const VehicleState& estimate, SafetyLog* log);

 private:
  SafetyConfig config_;
  VehicleState reckoned_;
  double seconds_since_anchor_ = 0.0;
  bool anchored_ = false;
};

// Table 4 "external monitoring facility": a deadline supervisor over the
// pipeline's ExecutionTimer. Every checked duration is also recorded into
// the timer (when provided) so WCET statistics include faulted cycles.
class DeadlineWatchdog {
 public:
  explicit DeadlineWatchdog(const SafetyConfig& config,
                            certkit::timing::ExecutionTimer* timer = nullptr);

  // Returns true when `seconds` meets the deadline; otherwise records a
  // violation (warning — degradation escalates on repetition).
  bool Check(std::int64_t tick, double seconds, SafetyLog* log);
  std::int64_t misses() const { return misses_; }

 private:
  SafetyConfig config_;
  certkit::timing::ExecutionTimer* timer_;
  std::int64_t misses_ = 0;
};

// The pipeline stages whose execution order the ControlFlowMonitor checks,
// in expected per-tick order. Localization (the EKF measurement update) runs
// last in the cycle, after chassis feedback.
enum class TickStage {
  kPerception = 0,
  kPrediction,
  kPlanning,
  kControl,
  kCanBus,
  kLocalization,
};
inline constexpr int kNumTickStages = 6;
const char* TickStageName(TickStage stage);

// Table 4 "control flow monitoring of the program execution".
class ControlFlowMonitor {
 public:
  void BeginTick(std::int64_t tick);
  void Enter(TickStage stage);
  // Verifies that every stage ran exactly once, in pipeline order; records
  // one violation per missing/reordered stage. Returns true when intact.
  bool EndTick(SafetyLog* log);

 private:
  std::int64_t tick_ = -1;
  std::vector<int> sequence_;
};

}  // namespace adpilot

#endif  // AD_SAFETY_MONITORS_H_
