// adpilot::safety — deterministic, seeded fault injection for the
// closed-loop pipeline.
//
// The static Table 4/5 census (bench/table4_5_error_mechanisms) only shows
// that error-detection mechanisms *exist* in the code; the injector provides
// the runtime counterpart: it perturbs the data flowing between pipeline
// stages according to a campaign plan and lets the safety monitors prove —
// or fail to prove — that the faults are detected and handled.
//
// A campaign is a seed plus a list of FaultSpec entries (fault kind, onset
// tick, duration, kind-specific magnitude). All randomness (which obstacle
// to corrupt, which bit to flip) is drawn from a generator seeded by the
// campaign seed, so a fixed campaign reproduces the identical fault
// sequence on every run.
#ifndef AD_SAFETY_FAULT_INJECTOR_H_
#define AD_SAFETY_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "ad/canbus.h"
#include "ad/common.h"
#include "support/rng.h"

namespace adpilot {

enum class FaultKind {
  kSensorDropout = 0,   // camera frame lost: the perception stage is skipped
  kDetectionNaN,        // obstacle list corrupted with non-finite fields
  kDetectionRange,      // obstacle teleported outside the physical envelope
  kStaleLocalization,   // published pose estimate frozen at its last value
  kCanBitFlip,          // random bit flips in the encoded command frame
  kCanFrameDrop,        // command frame lost on the bus
  kTimingOverrun,       // synthetic execution-time overrun added to the tick
};
inline constexpr int kNumFaultKinds = 7;
const char* FaultKindName(FaultKind kind);
// Inverse of FaultKindName, for deserializing replay artifacts; false
// (out untouched) on an unknown name.
bool FaultKindFromName(std::string_view name, FaultKind* out);

struct FaultSpec {
  FaultKind kind = FaultKind::kSensorDropout;
  std::int64_t onset_tick = 0;      // first tick (inclusive) the fault is live
  std::int64_t duration_ticks = 1;  // live for [onset, onset + duration)
  // Kind-specific knob: seconds of overrun for kTimingOverrun, number of
  // bit flips for kCanBitFlip, displacement scale (meters) for
  // kDetectionRange. Ignored by the other kinds.
  double magnitude = 1.0;
};

struct FaultCampaignConfig {
  std::uint64_t seed = 7;
  std::vector<FaultSpec> faults;
};

// Queried by the pipeline once per tick and per injection point. Each query
// that actually perturbs the pipeline increments the per-kind injected
// counter — the denominator of the detection-coverage measurement.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultCampaignConfig& config);

  // Must be called at the top of every tick, with a monotonically
  // increasing tick index.
  void BeginTick(std::int64_t tick);

  // True when the camera frame is lost this tick (counts an injection).
  bool SensorDropout();
  // True when the published localization estimate must be frozen.
  bool StaleLocalization();
  // Synthetic seconds added to the tick's execution time (0 when inactive).
  double TimingOverrunSeconds();
  // Applies NaN/range corruption to the obstacle list; fabricates a ghost
  // obstacle when the list is empty. Returns true when anything changed.
  bool CorruptObstacles(std::vector<Obstacle>* obstacles);
  // Flips bits in `frame` when a bit-flip fault is live. Returns true when
  // the frame was mutated.
  bool MutateFrame(CanFrame* frame);
  // True when the command frame must be dropped on the bus.
  bool DropFrame();

  std::int64_t injected(FaultKind kind) const;
  std::int64_t total_injected() const;

 private:
  const FaultSpec* ActiveSpec(FaultKind kind) const;
  void Count(FaultKind kind);

  FaultCampaignConfig config_;
  certkit::support::Xoshiro256 rng_;
  std::int64_t tick_ = -1;
  std::array<std::int64_t, kNumFaultKinds> injected_{};
};

}  // namespace adpilot

#endif  // AD_SAFETY_FAULT_INJECTOR_H_
