// adpilot::safety — degraded-mode state machine (ISO 26262-6 Table 5
// "graceful degradation" / "static recovery mechanism").
//
// The pipeline feeds the per-tick monitor verdict (warning/critical counts
// from the SafetyLog) into the manager, which drives
//
//   nominal --(sustained warnings)--> limp-home --(sustained)--> safe-stop
//   nominal/limp-home --(any critical)--> safe-stop
//   limp-home --(sustained clean ticks)--> nominal
//
// Safe-stop latches: once a critical fault has been seen, the vehicle is
// braked to a halt and stays halted. ApplyToCommand overrides the planned
// actuation accordingly, so a degraded pipeline commands braking instead of
// propagating garbage to the CAN bus.
#ifndef AD_SAFETY_DEGRADATION_H_
#define AD_SAFETY_DEGRADATION_H_

#include <cstdint>

#include "ad/common.h"
#include "ad/safety/monitors.h"

namespace adpilot {

enum class SafetyState { kNominal = 0, kLimpHome, kSafeStop };
const char* SafetyStateName(SafetyState state);

class DegradationManager {
 public:
  explicit DegradationManager(const SafetyConfig& config);

  // Closes one tick: consumes this tick's violation counts and returns the
  // resulting state.
  SafetyState Update(std::size_t warnings, std::size_t criticals);

  // Overrides `command` per the current state (limp-home speed/throttle
  // caps, safe-stop full braking). Returns true when the command changed.
  bool ApplyToCommand(ControlCommand* command, double current_speed) const;

  SafetyState state() const { return state_; }
  std::int64_t transitions() const { return transitions_; }

 private:
  void TransitionTo(SafetyState next);

  SafetyConfig config_;
  SafetyState state_ = SafetyState::kNominal;
  int consecutive_degraded_ = 0;
  int consecutive_clean_ = 0;
  std::int64_t transitions_ = 0;
};

}  // namespace adpilot

#endif  // AD_SAFETY_DEGRADATION_H_
