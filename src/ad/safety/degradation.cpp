#include "ad/safety/degradation.h"

#include <algorithm>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "support/check.h"

namespace adpilot {

const char* SafetyStateName(SafetyState state) {
  switch (state) {
    case SafetyState::kNominal: return "nominal";
    case SafetyState::kLimpHome: return "limp_home";
    case SafetyState::kSafeStop: return "safe_stop";
  }
  return "unknown";
}

DegradationManager::DegradationManager(const SafetyConfig& config)
    : config_(config) {
  CERTKIT_CHECK(config.limp_home_after >= 1);
  CERTKIT_CHECK(config.safe_stop_after >= 1);
  CERTKIT_CHECK(config.recover_after >= 1);
}

void DegradationManager::TransitionTo(SafetyState next) {
  if (next == state_) return;
  const SafetyState previous = state_;
  state_ = next;
  ++transitions_;
  certkit::obs::RecordFlightEvent(
      certkit::obs::FlightEventType::kSafetyTransition,
      static_cast<std::uint32_t>(next), static_cast<std::uint32_t>(previous),
      transitions_);
  // Entry into safe-stop is the run's oracle verdict; when a black box is
  // armed for it, this is where the dump fires (once per process).
  if (next == SafetyState::kSafeStop) {
    certkit::obs::OnFlightOracleViolation();
  }
  // Mirror the Table 5 evidence into the metrics registry: total degradation
  // transitions plus a per-target-state breakdown (transitions_to/safe_stop
  // counts every latched emergency stop across the process).
  auto& metrics = certkit::obs::MetricsRegistry::Instance();
  metrics.GetCounter("safety/transitions").Add();
  metrics
      .GetCounter(std::string("safety/transitions_to/") +
                  SafetyStateName(next))
      .Add();
  consecutive_degraded_ = 0;
  consecutive_clean_ = 0;
}

SafetyState DegradationManager::Update(std::size_t warnings,
                                       std::size_t criticals) {
  if (state_ == SafetyState::kSafeStop) return state_;  // latched
  if (criticals > 0) {
    TransitionTo(SafetyState::kSafeStop);
    return state_;
  }
  if (warnings > 0) {
    ++consecutive_degraded_;
    consecutive_clean_ = 0;
    if (state_ == SafetyState::kNominal &&
        consecutive_degraded_ >= config_.limp_home_after) {
      TransitionTo(SafetyState::kLimpHome);
      consecutive_degraded_ = config_.limp_home_after;
    } else if (state_ == SafetyState::kLimpHome &&
               consecutive_degraded_ >= config_.safe_stop_after) {
      TransitionTo(SafetyState::kSafeStop);
    }
  } else {
    ++consecutive_clean_;
    consecutive_degraded_ = 0;
    if (state_ == SafetyState::kLimpHome &&
        consecutive_clean_ >= config_.recover_after) {
      TransitionTo(SafetyState::kNominal);
    }
  }
  return state_;
}

bool DegradationManager::ApplyToCommand(ControlCommand* command,
                                        double current_speed) const {
  CERTKIT_CHECK(command != nullptr);
  const ControlCommand before = *command;
  switch (state_) {
    case SafetyState::kNominal:
      return false;
    case SafetyState::kLimpHome:
      command->throttle =
          std::min(command->throttle, config_.limp_home_throttle);
      if (current_speed > config_.limp_home_speed) {
        command->throttle = 0.0;
        command->brake = std::max(command->brake, 0.3);
      }
      break;
    case SafetyState::kSafeStop:
      command->throttle = 0.0;
      command->brake = 1.0;
      command->steering = 0.0;
      break;
  }
  return before.throttle != command->throttle ||
         before.brake != command->brake ||
         before.steering != command->steering;
}

}  // namespace adpilot
