#include "ad/safety/monitors.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "support/check.h"

namespace adpilot {

namespace {

bool FiniteVec(const Vec2& v) {
  return std::isfinite(v.x) && std::isfinite(v.y);
}

// Monitor activity is mirrored into the obs MetricsRegistry at the single
// choke point every violation passes through (SafetyLog::Record), so the
// SafetySummary tallies are queryable live — per monitor, per severity,
// and handled — instead of only by walking the log. Counter increments
// commute, so fleet workers hammering their own SafetyLogs still produce
// --jobs-independent totals.
struct SafetyCounters {
  certkit::obs::Counter* total;
  certkit::obs::Counter* warnings;
  certkit::obs::Counter* criticals;
  certkit::obs::Counter* handled;
  certkit::obs::Counter* by_monitor[kNumMonitors];
  certkit::obs::Counter* deadline_misses;
};

SafetyCounters& Counters() {
  static SafetyCounters c = [] {
    auto& metrics = certkit::obs::MetricsRegistry::Instance();
    SafetyCounters q;
    q.total = &metrics.GetCounter("safety/violations");
    q.warnings = &metrics.GetCounter("safety/warnings");
    q.criticals = &metrics.GetCounter("safety/criticals");
    q.handled = &metrics.GetCounter("safety/handled");
    for (int m = 0; m < kNumMonitors; ++m) {
      q.by_monitor[m] = &metrics.GetCounter(
          std::string("safety/violations/") +
          MonitorName(static_cast<MonitorId>(m)));
    }
    q.deadline_misses = &metrics.GetCounter("safety/deadline_misses");
    return q;
  }();
  return c;
}

}  // namespace

const char* MonitorName(MonitorId id) {
  switch (id) {
    case MonitorId::kRange: return "range";
    case MonitorId::kPlausibility: return "plausibility";
    case MonitorId::kDeadline: return "deadline";
    case MonitorId::kControlFlow: return "control_flow";
    case MonitorId::kCommand: return "command";
    case MonitorId::kCanBus: return "can_bus";
  }
  return "unknown";
}

const char* TickStageName(TickStage stage) {
  switch (stage) {
    case TickStage::kPerception: return "perception";
    case TickStage::kPrediction: return "prediction";
    case TickStage::kPlanning: return "planning";
    case TickStage::kControl: return "control";
    case TickStage::kCanBus: return "canbus";
    case TickStage::kLocalization: return "localization";
  }
  return "unknown";
}

void SafetyLog::Record(Violation violation) {
  SafetyCounters& counters = Counters();
  counters.total->Add();
  if (violation.severity == Severity::kCritical) {
    counters.criticals->Add();
  } else {
    counters.warnings->Add();
  }
  if (violation.handled) counters.handled->Add();
  const int m = static_cast<int>(violation.monitor);
  if (m >= 0 && m < kNumMonitors) counters.by_monitor[m]->Add();
  // Black-box journal entry: monitor id, severity, and handled flag travel
  // in the packed b field (severity low byte, handled bit 8).
  certkit::obs::RecordFlightEvent(
      certkit::obs::FlightEventType::kMonitorVerdict,
      static_cast<std::uint32_t>(m),
      static_cast<std::uint32_t>(violation.severity == Severity::kCritical
                                     ? 1u
                                     : 0u) |
          (violation.handled ? 1u << 8 : 0u),
      violation.tick);
  std::lock_guard<std::mutex> lock(mu_);
  violations_.push_back(std::move(violation));
}

std::int64_t SafetyLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(violations_.size());
}

std::vector<Violation> SafetyLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return violations_;
}

std::int64_t SafetyLog::CountByMonitor(MonitorId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t n = 0;
  for (const Violation& v : violations_) {
    if (v.monitor == id) ++n;
  }
  return n;
}

std::int64_t SafetyLog::CountHandled() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t n = 0;
  for (const Violation& v : violations_) {
    if (v.handled) ++n;
  }
  return n;
}

void SafetyLog::TallySince(std::int64_t from, std::size_t* warnings,
                           std::size_t* criticals) const {
  CERTKIT_CHECK(warnings != nullptr && criticals != nullptr);
  CERTKIT_CHECK(from >= 0);
  *warnings = 0;
  *criticals = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = static_cast<std::size_t>(
           std::min<std::int64_t>(from,
                                  static_cast<std::int64_t>(violations_.size())));
       i < violations_.size(); ++i) {
    if (violations_[i].severity == Severity::kCritical) {
      ++*criticals;
    } else {
      ++*warnings;
    }
  }
}

SafetySummary SafetyLog::Summarize() const {
  SafetySummary summary;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Violation& v : violations_) {
    ++summary.total;
    if (v.severity == Severity::kCritical) {
      ++summary.criticals;
    } else {
      ++summary.warnings;
    }
    if (v.handled) ++summary.handled;
    const int m = static_cast<int>(v.monitor);
    if (m >= 0 && m < kNumMonitors) ++summary.by_monitor[m];
  }
  return summary;
}

RangeMonitor::RangeMonitor(const SafetyConfig& config) : config_(config) {}

std::size_t RangeMonitor::CheckAndSanitizeObstacles(
    std::int64_t tick, const Pose& ego, std::vector<Obstacle>* obstacles,
    SafetyLog* log) const {
  CERTKIT_CHECK(obstacles != nullptr && log != nullptr);
  std::size_t removed = 0;
  auto it = obstacles->begin();
  while (it != obstacles->end()) {
    const Obstacle& o = *it;
    const char* reason = nullptr;
    if (!FiniteVec(o.position) || !FiniteVec(o.velocity) ||
        !std::isfinite(o.length) || !std::isfinite(o.width) ||
        !std::isfinite(o.confidence)) {
      reason = "non-finite field";
    } else if (o.length <= 0.0 || o.width <= 0.0) {
      reason = "non-positive extent";
    } else if (o.confidence < 0.0 || o.confidence > 1.0) {
      reason = "confidence outside [0, 1]";
    } else if (ego.position.DistanceTo(o.position) >
               config_.max_detection_range) {
      reason = "outside detection range";
    } else if (o.velocity.Norm() > config_.max_obstacle_speed) {
      reason = "implausible speed";
    }
    if (reason == nullptr) {
      ++it;
      continue;
    }
    std::ostringstream msg;
    msg << "obstacle " << o.id << " rejected: " << reason;
    log->Record({tick, MonitorId::kRange, Severity::kWarning,
                 /*handled=*/true, msg.str()});
    it = obstacles->erase(it);
    ++removed;
  }
  return removed;
}

bool RangeMonitor::CheckCommand(std::int64_t tick, ControlCommand* command,
                                SafetyLog* log) const {
  CERTKIT_CHECK(command != nullptr && log != nullptr);
  const char* reason = nullptr;
  if (!std::isfinite(command->throttle) || !std::isfinite(command->brake) ||
      !std::isfinite(command->steering)) {
    reason = "non-finite command";
  } else if (command->throttle < 0.0 || command->throttle > 1.0 ||
             command->brake < 0.0 || command->brake > 1.0) {
    reason = "pedal command outside [0, 1]";
  } else if (std::abs(command->steering) > 0.6) {
    reason = "steering beyond hardware range";
  }
  if (reason == nullptr) return false;
  std::ostringstream msg;
  msg << "actuation command rejected (" << reason << "), braking";
  log->Record({tick, MonitorId::kCommand, Severity::kCritical,
               /*handled=*/true, msg.str()});
  command->throttle = 0.0;
  command->brake = 1.0;
  command->steering = 0.0;
  return true;
}

PlausibilityMonitor::PlausibilityMonitor(const SafetyConfig& config)
    : config_(config) {}

void PlausibilityMonitor::Anchor(const VehicleState& state) {
  reckoned_ = state;
  seconds_since_anchor_ = 0.0;
  anchored_ = true;
}

void PlausibilityMonitor::Propagate(double acceleration, double yaw_rate,
                                    double dt) {
  CERTKIT_CHECK(dt > 0.0);
  if (!anchored_) return;
  // Same kinematics as the EKF prediction step, driven by odometry only.
  const double theta = reckoned_.pose.heading;
  reckoned_.pose.position.x += reckoned_.speed * std::cos(theta) * dt;
  reckoned_.pose.position.y += reckoned_.speed * std::sin(theta) * dt;
  reckoned_.pose.heading = NormalizeAngle(theta + yaw_rate * dt);
  reckoned_.speed = std::max(0.0, reckoned_.speed + acceleration * dt);
  seconds_since_anchor_ += dt;
}

bool PlausibilityMonitor::Check(std::int64_t tick,
                                const VehicleState& estimate,
                                SafetyLog* log) {
  CERTKIT_CHECK(log != nullptr);
  if (!anchored_) {
    Anchor(estimate);
    return true;
  }
  const double envelope =
      config_.plausibility_base +
      config_.plausibility_growth * seconds_since_anchor_;
  const double divergence =
      estimate.pose.position.DistanceTo(reckoned_.pose.position);
  if (std::isfinite(divergence) && divergence <= envelope) {
    if (seconds_since_anchor_ >= config_.plausibility_reanchor) {
      Anchor(estimate);
    }
    return true;
  }
  std::ostringstream msg;
  msg << "localization diverges from dead reckoning by " << divergence
      << " m (envelope " << envelope << " m)";
  log->Record({tick, MonitorId::kPlausibility, Severity::kWarning,
               /*handled=*/false, msg.str()});
  return false;
}

DeadlineWatchdog::DeadlineWatchdog(const SafetyConfig& config,
                                   certkit::timing::ExecutionTimer* timer)
    : config_(config), timer_(timer) {}

bool DeadlineWatchdog::Check(std::int64_t tick, double seconds,
                             SafetyLog* log) {
  CERTKIT_CHECK(log != nullptr);
  CERTKIT_CHECK_MSG(seconds >= 0.0, "negative tick duration");
  if (timer_ != nullptr) timer_->Record(seconds);
  if (seconds <= config_.tick_deadline) return true;
  ++misses_;
  Counters().deadline_misses->Add();
  std::ostringstream msg;
  msg << "tick overran its deadline: " << seconds << " s > "
      << config_.tick_deadline << " s";
  log->Record({tick, MonitorId::kDeadline, Severity::kWarning,
               /*handled=*/false, msg.str()});
  return false;
}

void ControlFlowMonitor::BeginTick(std::int64_t tick) {
  tick_ = tick;
  sequence_.clear();
}

void ControlFlowMonitor::Enter(TickStage stage) {
  sequence_.push_back(static_cast<int>(stage));
}

bool ControlFlowMonitor::EndTick(SafetyLog* log) {
  CERTKIT_CHECK(log != nullptr);
  bool intact = true;
  // Walk the expected order; every expected stage must appear exactly once,
  // in position.
  for (int expected = 0; expected < kNumTickStages; ++expected) {
    const bool present =
        expected < static_cast<int>(sequence_.size()) &&
        sequence_[static_cast<std::size_t>(expected)] == expected;
    if (present) continue;
    intact = false;
    std::ostringstream msg;
    msg << "stage " << TickStageName(static_cast<TickStage>(expected))
        << " missing or out of order";
    log->Record({tick_, MonitorId::kControlFlow, Severity::kWarning,
                 /*handled=*/false, msg.str()});
  }
  if (static_cast<int>(sequence_.size()) > kNumTickStages) {
    intact = false;
    log->Record({tick_, MonitorId::kControlFlow, Severity::kWarning,
                 /*handled=*/false, "unexpected extra stage execution"});
  }
  return intact;
}

}  // namespace adpilot
