// adpilot: scenario simulation — ground-truth world plus the synthetic
// camera that feeds the perception module.
//
// The camera is a bird's-eye-view sensor covering a 32m x 32m window in the
// ego frame (4m behind to 28m ahead, +/-16m lateral) rendered at 0.5 m/px
// into a 64x64x3 frame: dark road, bright obstacle rectangles — the signal
// the handcrafted detector weights respond to.
#ifndef AD_SCENARIO_H_
#define AD_SCENARIO_H_

#include <string>
#include <vector>

#include "ad/common.h"
#include "nn/tensor.h"
#include "support/rng.h"

namespace adpilot {

struct ScenarioConfig {
  // Upper actor bounds (REQ-SCEN-001): beyond these the synthetic road
  // cannot place agents meaningfully and campaign mutation stops growing.
  static constexpr int kMaxVehicles = 32;
  static constexpr int kMaxPedestrians = 32;

  int num_vehicles = 3;
  int num_pedestrians = 0;
  double road_length = 400.0;
  double lane_width = 4.0;
  int num_lanes = 2;
  // Initial vehicle speed range sampled per vehicle (m/s). Defaults match
  // the historical hard-coded range, so seeded RNG sequences are unchanged.
  double vehicle_speed_min = 2.0;
  double vehicle_speed_max = 8.0;
  std::uint64_t seed = 1234;
};

// REQ-SCEN-001 validation: returns an empty string when `config` describes
// a constructible world, otherwise a human-readable reason. Scenario's
// constructor enforces this with CERTKIT_CHECK.
std::string ValidateScenarioConfig(const ScenarioConfig& config);

// Forces `config` into the valid envelope (actor counts into
// [0, kMax*], geometry positive, speed range ordered). Used by the
// campaign mutator so arbitrary mutations always yield runnable scenarios.
ScenarioConfig ClampScenarioConfig(const ScenarioConfig& config);

// Single-line JSON serialization of `config` (stable key order), used by
// the campaign engine to report reproducible candidates.
std::string ScenarioConfigJson(const ScenarioConfig& config);

// Camera geometry shared by rendering and detection back-projection.
struct CameraModel {
  static constexpr double kMetersPerPixel = 0.5;
  static constexpr int kImageSize = 64;
  static constexpr double kAhead = 28.0;   // meters ahead of ego at row 0
  static constexpr double kBehind = 4.0;   // meters behind at the last row
  static constexpr double kHalfWidth = 16.0;

  // Ego-frame -> pixel (returns false if outside the window).
  static bool EgoToPixel(const Vec2& ego, double* px, double* py);
  // Pixel -> ego-frame (center of the pixel).
  static Vec2 PixelToEgo(double px, double py);
};

class Scenario {
 public:
  explicit Scenario(const ScenarioConfig& config);

  // Advances every ground-truth agent by dt seconds.
  void Step(double dt);

  // Renders the camera frame for an ego at `ego_pose`.
  nn::Tensor RenderCameraFrame(const Pose& ego_pose);
  // Capacity-reusing variant: reshapes *frame (64x64x3) and overwrites every
  // pixel, so a warm frame buffer costs no allocation. Identical pixels and
  // RNG consumption to RenderCameraFrame.
  void RenderCameraFrameInto(const Pose& ego_pose, nn::Tensor* frame);

  const std::vector<Obstacle>& ground_truth() const { return agents_; }
  double time() const { return time_; }

 private:
  ScenarioConfig config_;
  certkit::support::Xoshiro256 rng_;
  std::vector<Obstacle> agents_;
  double time_ = 0.0;
};

}  // namespace adpilot

#endif  // AD_SCENARIO_H_
