// BatchNorm, activation, max-pool, and upsample layers, each with its own
// coverage unit (they model distinct files of the YOLO implementation).
#include <algorithm>
#include <limits>

#include "coverage/coverage.h"
#include "nn/layers.h"

namespace nn {

// ---------------------------------------------------------------- batchnorm
namespace {
struct BnProbes {
  certkit::cov::Unit* u;
  int d_identity;
  enum : int { kSApply = 0, kSIdentityFast, kSCount };
};
BnProbes& BnP() {
  static BnProbes p = [] {
    BnProbes q;
    q.u = &certkit::cov::Registry::Instance().GetOrCreate(
        "yolo/batchnorm.cc");
    q.u->DeclareStatements(BnProbes::kSCount);
    q.d_identity = q.u->DeclareDecision(2);  // scale==1 && shift==0
    return q;
  }();
  return p;
}
}  // namespace

BatchNormLayer::BatchNormLayer(std::vector<float> scale,
                               std::vector<float> shift)
    : scale_(std::move(scale)), shift_(std::move(shift)) {
  CERTKIT_CHECK(scale_.size() == shift_.size());
  CERTKIT_CHECK(!scale_.empty());
}

void BatchNormLayer::ForwardInto(const Tensor& input, Tensor* out_t) {
  BnProbes& p = BnP();
  CERTKIT_CHECK(out_t != nullptr && out_t != &input);
  CERTKIT_CHECK_MSG(input.c() == static_cast<int>(scale_.size()),
                    "batchnorm channel mismatch");
  out_t->Reshape(input.n(), input.c(), input.h(), input.w());
  Tensor& out = *out_t;
  if (!certkit::cov::ProbesEnabled()) {
    // Release-flavor fast path: identical arithmetic with the probe calls
    // compiled out of the loop (they are per-channel here, but the loop
    // body must stay branch-free for the vectorizer). The probed loop
    // below is the instrumented flavor.
    const std::size_t hw =
        static_cast<std::size_t>(input.h()) * input.w();
    for (int n = 0; n < input.n(); ++n) {
      for (int c = 0; c < input.c(); ++c) {
        const float s = scale_[static_cast<std::size_t>(c)];
        const float b = shift_[static_cast<std::size_t>(c)];
        const float* in = input.data() +
                          (static_cast<std::size_t>(n) * input.c() + c) * hw;
        float* o = out.data() +
                   (static_cast<std::size_t>(n) * input.c() + c) * hw;
        if (s == 1.0f && b == 0.0f) {
          for (std::size_t i = 0; i < hw; ++i) o[i] = in[i];
        } else {
          for (std::size_t i = 0; i < hw; ++i) o[i] = s * in[i] + b;
        }
      }
    }
    return;
  }
  for (int n = 0; n < input.n(); ++n) {
    for (int c = 0; c < input.c(); ++c) {
      const float s = scale_[static_cast<std::size_t>(c)];
      const float b = shift_[static_cast<std::size_t>(c)];
      const bool c_scale1 = p.u->Cond(p.d_identity, 0, s == 1.0f);
      const bool c_shift0 = p.u->Cond(p.d_identity, 1, b == 0.0f);
      if (p.u->Dec(p.d_identity, c_scale1 && c_shift0)) {
        // Identity channel: copy without FMA (fast path).
        p.u->Stmt(BnProbes::kSIdentityFast);
        for (int y = 0; y < input.h(); ++y) {
          for (int x = 0; x < input.w(); ++x) {
            out.At(n, c, y, x) = input.At(n, c, y, x);
          }
        }
      } else {
        p.u->Stmt(BnProbes::kSApply);
        for (int y = 0; y < input.h(); ++y) {
          for (int x = 0; x < input.w(); ++x) {
            out.At(n, c, y, x) = s * input.At(n, c, y, x) + b;
          }
        }
      }
    }
  }
}

// --------------------------------------------------------------- activation
namespace {
struct ActProbes {
  certkit::cov::Unit* u;
  int d_linear, d_relu, d_negative;
  enum : int {
    kSLinear = 0,
    kSReluClamp,
    kSReluPass,
    kSLeakyScale,
    kSLeakyPass,
    kSCount
  };
};
ActProbes& ActP() {
  static ActProbes p = [] {
    ActProbes q;
    q.u = &certkit::cov::Registry::Instance().GetOrCreate(
        "yolo/activation.cc");
    q.u->DeclareStatements(ActProbes::kSCount);
    q.d_linear = q.u->DeclareDecision(1);
    q.d_relu = q.u->DeclareDecision(1);
    q.d_negative = q.u->DeclareDecision(1);
    return q;
  }();
  return p;
}
}  // namespace

ActivationLayer::ActivationLayer(Activation kind, float leaky_slope)
    : kind_(kind), leaky_slope_(leaky_slope) {}

void ActivationLayer::ForwardInto(const Tensor& input, Tensor* out_t) {
  ActProbes& p = ActP();
  CERTKIT_CHECK(out_t != nullptr && out_t != &input);
  out_t->Reshape(input.n(), input.c(), input.h(), input.w());
  const float* in = input.data();
  float* o = out_t->data();
  if (!certkit::cov::ProbesEnabled()) {
    // Release-flavor fast path: the probed loop below fires two probes per
    // element, which dominates an elementwise layer once coverage is off.
    // Same selects, same arithmetic, vectorizable.
    const std::size_t size = input.size();
    switch (kind_) {
      case Activation::kLinear:
        std::copy(in, in + size, o);
        break;
      case Activation::kRelu:
        for (std::size_t i = 0; i < size; ++i) {
          const float v = in[i];
          o[i] = v < 0.0f ? 0.0f : v;
        }
        break;
      case Activation::kLeakyRelu:
        for (std::size_t i = 0; i < size; ++i) {
          const float v = in[i];
          o[i] = v < 0.0f ? leaky_slope_ * v : v;
        }
        break;
    }
    return;
  }
  if (p.u->Branch(p.d_linear, kind_ == Activation::kLinear)) {
    p.u->Stmt(ActProbes::kSLinear);
    std::copy(in, in + input.size(), o);
    return;
  }
  const bool is_relu =
      p.u->Branch(p.d_relu, kind_ == Activation::kRelu);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const float v = in[i];
    if (p.u->Branch(p.d_negative, v < 0.0f)) {
      if (is_relu) {
        p.u->Stmt(ActProbes::kSReluClamp);
        o[i] = 0.0f;
      } else {
        p.u->Stmt(ActProbes::kSLeakyScale);
        o[i] = leaky_slope_ * v;
      }
    } else {
      if (is_relu) {
        p.u->Stmt(ActProbes::kSReluPass);
      } else {
        p.u->Stmt(ActProbes::kSLeakyPass);
      }
      o[i] = v;
    }
  }
}

// ------------------------------------------------------------------ maxpool
namespace {
struct PoolProbes {
  certkit::cov::Unit* u;
  int d_in_bounds, d_better;
  enum : int { kSWindow = 0, kSOutOfBounds, kSUpdateMax, kSCount };
};
PoolProbes& PoolP() {
  static PoolProbes p = [] {
    PoolProbes q;
    q.u = &certkit::cov::Registry::Instance().GetOrCreate("yolo/pooling.cc");
    q.u->DeclareStatements(PoolProbes::kSCount);
    q.d_in_bounds = q.u->DeclareDecision(2);
    q.d_better = q.u->DeclareDecision(1);
    return q;
  }();
  return p;
}
}  // namespace

MaxPoolLayer::MaxPoolLayer(int size, int stride) : size_(size),
                                                   stride_(stride) {
  CERTKIT_CHECK(size > 0 && stride > 0);
}

void MaxPoolLayer::ForwardInto(const Tensor& input, Tensor* out_t) {
  PoolProbes& p = PoolP();
  CERTKIT_CHECK(out_t != nullptr && out_t != &input);
  const int oh = (input.h() - size_) / stride_ + 1;
  const int ow = (input.w() - size_) / stride_ + 1;
  CERTKIT_CHECK_MSG(oh > 0 && ow > 0, "pool output would be empty");
  out_t->Reshape(input.n(), input.c(), oh, ow);
  Tensor& out = *out_t;
  if (!certkit::cov::ProbesEnabled()) {
    // Release-flavor fast path: the probed loop fires four probes per
    // window TAP (bounds conditions, decision, max-update branch), which
    // makes pooling the most expensive layer of the whole detector once
    // coverage is off. Same traversal order, same comparisons.
    if (size_ == 2 && stride_ == 2 && input.h() % 2 == 0 &&
        input.w() % 2 == 0) {
      // Every pool in the detector is 2×2 stride 2 on even dims, so the
      // window never rags off the edge and the per-tap bounds checks (and
      // At()'s index arithmetic) can go. The max is folded in the probed
      // path's exact tap order from the same -inf seed, so the `v > best`
      // comparison chain — including its NaN behavior — is unchanged;
      // that fold is the form the vectorizer maps to maxps.
      const int iw = input.w();
      const std::size_t planes =
          static_cast<std::size_t>(input.n()) * input.c();
      const float* src = input.data();
      float* dst = out.data();
      for (std::size_t pl = 0; pl < planes; ++pl) {
        const float* in_plane = src + pl * static_cast<std::size_t>(input.h()) * iw;
        float* out_plane = dst + pl * static_cast<std::size_t>(oh) * ow;
        for (int y = 0; y < oh; ++y) {
          const float* r0 = in_plane + static_cast<std::size_t>(2 * y) * iw;
          const float* r1 = r0 + iw;
          float* orow = out_plane + static_cast<std::size_t>(y) * ow;
          for (int x = 0; x < ow; ++x) {
            float best = -std::numeric_limits<float>::infinity();
            best = r0[2 * x] > best ? r0[2 * x] : best;
            best = r0[2 * x + 1] > best ? r0[2 * x + 1] : best;
            best = r1[2 * x] > best ? r1[2 * x] : best;
            best = r1[2 * x + 1] > best ? r1[2 * x + 1] : best;
            orow[x] = best;
          }
        }
      }
      return;
    }
    for (int n = 0; n < input.n(); ++n) {
      for (int c = 0; c < input.c(); ++c) {
        for (int y = 0; y < oh; ++y) {
          for (int x = 0; x < ow; ++x) {
            float best = -std::numeric_limits<float>::infinity();
            for (int ky = 0; ky < size_; ++ky) {
              const int iy = y * stride_ + ky;
              if (iy >= input.h()) continue;
              for (int kx = 0; kx < size_; ++kx) {
                const int ix = x * stride_ + kx;
                if (ix >= input.w()) continue;
                const float v = input.At(n, c, iy, ix);
                if (v > best) best = v;
              }
            }
            out.At(n, c, y, x) = best;
          }
        }
      }
    }
    return;
  }
  for (int n = 0; n < input.n(); ++n) {
    for (int c = 0; c < input.c(); ++c) {
      for (int y = 0; y < oh; ++y) {
        for (int x = 0; x < ow; ++x) {
          p.u->Stmt(PoolProbes::kSWindow);
          float best = -std::numeric_limits<float>::infinity();
          for (int ky = 0; ky < size_; ++ky) {
            for (int kx = 0; kx < size_; ++kx) {
              const int iy = y * stride_ + ky;
              const int ix = x * stride_ + kx;
              const bool cy = p.u->Cond(p.d_in_bounds, 0, iy < input.h());
              const bool cx = p.u->Cond(p.d_in_bounds, 1, ix < input.w());
              if (!p.u->Dec(p.d_in_bounds, cy && cx)) {
                // Ragged edge (stride does not divide the input): skip.
                p.u->Stmt(PoolProbes::kSOutOfBounds);
                continue;
              }
              const float v = input.At(n, c, iy, ix);
              if (p.u->Branch(p.d_better, v > best)) {
                p.u->Stmt(PoolProbes::kSUpdateMax);
                best = v;
              }
            }
          }
          out.At(n, c, y, x) = best;
        }
      }
    }
  }
}

// ----------------------------------------------------------------- upsample
namespace {
struct UpProbes {
  certkit::cov::Unit* u;
  int d_factor2;
  enum : int { kSFast2x = 0, kSGeneric, kSCount };
};
UpProbes& UpP() {
  static UpProbes p = [] {
    UpProbes q;
    q.u = &certkit::cov::Registry::Instance().GetOrCreate(
        "yolo/upsample.cc");
    q.u->DeclareStatements(UpProbes::kSCount);
    q.d_factor2 = q.u->DeclareDecision(1);
    return q;
  }();
  return p;
}
}  // namespace

UpsampleLayer::UpsampleLayer(int factor) : factor_(factor) {
  CERTKIT_CHECK(factor >= 1);
}

void UpsampleLayer::ForwardInto(const Tensor& input, Tensor* out_t) {
  UpProbes& p = UpP();
  CERTKIT_CHECK(out_t != nullptr && out_t != &input);
  out_t->Reshape(input.n(), input.c(), input.h() * factor_,
                 input.w() * factor_);
  Tensor& out = *out_t;
  if (p.u->Branch(p.d_factor2, factor_ == 2)) {
    // Unrolled 2x fast path.
    p.u->Stmt(UpProbes::kSFast2x);
    for (int n = 0; n < input.n(); ++n) {
      for (int c = 0; c < input.c(); ++c) {
        for (int y = 0; y < input.h(); ++y) {
          for (int x = 0; x < input.w(); ++x) {
            const float v = input.At(n, c, y, x);
            out.At(n, c, 2 * y, 2 * x) = v;
            out.At(n, c, 2 * y, 2 * x + 1) = v;
            out.At(n, c, 2 * y + 1, 2 * x) = v;
            out.At(n, c, 2 * y + 1, 2 * x + 1) = v;
          }
        }
      }
    }
    return;
  }
  p.u->Stmt(UpProbes::kSGeneric);
  for (int n = 0; n < input.n(); ++n) {
    for (int c = 0; c < input.c(); ++c) {
      for (int y = 0; y < out.h(); ++y) {
        for (int x = 0; x < out.w(); ++x) {
          out.At(n, c, y, x) = input.At(n, c, y / factor_, x / factor_);
        }
      }
    }
  }
}

}  // namespace nn
