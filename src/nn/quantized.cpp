// The int8 inference path of ConvLayer (tentpole of the allocation-free
// tick work): per-layer symmetric scales, int8-grid im2col, an
// int32-accumulating dot-product micro-GEMM, combined-scale dequantize.
//
// Properties the rest of the tree relies on:
//  * Deterministic and backend-independent — integer accumulation is exact,
//    so there is no FP-reassociation surface; the replay differential oracle
//    diffs this path against the fp32 reference (which stays bit-exact).
//  * Reentrant — all scratch is thread_local and the layer itself is never
//    mutated during a forward (the weight snapshot is written only by
//    SetInputQuantization), so one layer shared across ThreadPool threads is
//    race-free (the regression for the old flip-the-member-and-recurse bug).
//  * Allocation-free in steady state — every scratch vector only ever grows
//    to the layer's peak working-set size and is then reused.
//
// Layout note: quantized values are stored widened to int16 and the im2col
// patch matrix is built TRANSPOSED ([N, K] with K contiguous) so the GEMM
// runs as int16×int16→int32 dot products — the form the x86 vectorizer maps
// to PMADDWD. See kernels::micro::GemmS16S32DotT.
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "kernels/gemm.h"
#include "nn/layers.h"

namespace nn {

namespace {

struct QuantScratch {
  std::vector<std::int16_t> q_input;  // quantized activations, input layout
  std::vector<std::int16_t> cols;     // transposed patch matrix [N, K]
  std::vector<std::int32_t> acc;      // GEMM accumulators [M, N]
};

QuantScratch& Scratch() {
  thread_local QuantScratch s;
  return s;
}

// Max-|x| scan in the integer domain: for non-negative IEEE-754 floats the
// bit pattern orders exactly like the value, so max over (bits & 0x7fffffff)
// IS max|x| — and any Inf/NaN surfaces as a pattern >= 0x7f800000. One
// branch-free int32 max reduction replaces the fabs/isfinite/compare loop
// the vectorizer cannot touch (early exit, NaN-sensitive float compares).
// Returns false when a non-finite value is present (containment policy).
bool ScanAmax(const float* data, std::size_t size, float* amax) {
  std::int32_t mbits = 0;
  for (std::size_t i = 0; i < size; ++i) {
    std::uint32_t u;
    std::memcpy(&u, &data[i], sizeof(u));
    const std::int32_t m = static_cast<std::int32_t>(u & 0x7fffffffu);
    mbits = m > mbits ? m : mbits;
  }
  if (mbits >= 0x7f800000) return false;  // Inf or NaN in the tensor
  *amax = std::bit_cast<float>(static_cast<std::uint32_t>(mbits));
  return true;
}

// Transposed int16 im2col: row j = ((b*OH)+oh)*OW+ow holds that output
// pixel's K-length receptive-field patch contiguously (column r =
// (ci, kh, kw)). Zero padding is exact in the integer domain. KF is the
// compile-time kernel size (0 = generic): the backbone's 3×3 and the
// head's 1×1 get fully unrolled tap loops, which is worth ~2× on this
// stage — a runtime `kernel_` bound defeats the unroller.
template <int KF>
void Im2colT(const std::int16_t* q_input, int batch, int in_c, int in_h,
             int in_w, int kernel_rt, int stride, int pad, int out_h,
             int out_w, std::int16_t* cols) {
  const int kernel = KF > 0 ? KF : kernel_rt;
  const int kk2 = kernel * kernel;
  const int patch = in_c * kk2;
  for (int b = 0; b < batch; ++b) {
    const std::int16_t* image =
        q_input + static_cast<std::size_t>(b) * in_c * in_h * in_w;
    for (int oh = 0; oh < out_h; ++oh) {
      for (int ow = 0; ow < out_w; ++ow) {
        std::int16_t* prow =
            cols + (static_cast<std::size_t>(b) * out_h * out_w +
                    static_cast<std::size_t>(oh) * out_w + ow) *
                       patch;
        for (int ci = 0; ci < in_c; ++ci) {
          const std::int16_t* plane =
              image + static_cast<std::size_t>(ci) * in_h * in_w;
          std::int16_t* pdst = prow + static_cast<std::size_t>(ci) * kk2;
          for (int kh = 0; kh < kernel; ++kh) {
            const int iy = oh * stride - pad + kh;
            std::int16_t* drow = pdst + kh * kernel;
            if (iy < 0 || iy >= in_h) {
              for (int kw = 0; kw < kernel; ++kw) drow[kw] = 0;
              continue;
            }
            const std::int16_t* srow =
                plane + static_cast<std::size_t>(iy) * in_w;
            for (int kw = 0; kw < kernel; ++kw) {
              const int ix = ow * stride - pad + kw;
              drow[kw] = (ix >= 0 && ix < in_w) ? srow[ix] : 0;
            }
          }
        }
      }
    }
  }
}

// Symmetric int8-grid snap, round half away from zero — the same grid
// FakeQuantizeTensor documents — computed in the branch-free
// truncate(q ± 0.5) form so the whole quantize loop vectorizes (std::round
// is a libm call the SSE2 target cannot inline). Values are bounded by
// amax, so the clamp only guards FP edge rounding.
inline std::int16_t SnapToGrid(float v, float inv_scale) {
  float q = v * inv_scale;
  q = q >= 0.0f ? q + 0.5f : q - 0.5f;
  int i = static_cast<int>(q);  // truncation toward zero
  i = i > 127 ? 127 : (i < -127 ? -127 : i);
  return static_cast<std::int16_t>(i);
}

}  // namespace

void ConvLayer::SetInputQuantization(bool enabled) {
  quantize_inputs_ = enabled;
  q_weights_.clear();
  w_scale_ = 0.0f;
  if (!enabled) return;

  // Per-layer weight scale: max|w| / 127 over this layer's weights. A
  // non-finite weight (or an all-zero filter bank) has no usable grid; the
  // snapshot is then all zeros with scale 0, making the quantized output
  // exactly the bias — the same result the unsnapshotted path produced.
  float w_amax = 0.0f;
  bool finite = true;
  for (const float w : weights_) {
    if (!std::isfinite(w)) finite = false;
    const float a = std::fabs(w);
    if (a > w_amax) w_amax = a;
  }
  q_weights_.assign(weights_.size(), 0);
  if (!finite || w_amax == 0.0f) return;
  w_scale_ = w_amax / 127.0f;
  const float w_inv = 127.0f / w_amax;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    q_weights_[i] = SnapToGrid(weights_[i], w_inv);
  }
}

bool ConvLayer::QuantizedForwardInto(const Tensor& input, Tensor* out) const {
  // Dynamic per-tensor activation scale over the input. Any non-finite value
  // disables quantization for this call (containment policy in layers.h).
  const float* in = input.data();
  const std::size_t in_size = input.size();
  float in_amax = 0.0f;
  if (!ScanAmax(in, in_size, &in_amax)) return false;
  if (in_amax == 0.0f) return false;
  if (q_weights_.size() != weights_.size()) return false;  // no snapshot

  const int batch = input.n();
  const int in_h = input.h();
  const int in_w = input.w();
  const int out_h = (in_h + 2 * pad_ - kernel_) / stride_ + 1;
  const int out_w = (in_w + 2 * pad_ - kernel_) / stride_ + 1;
  CERTKIT_CHECK(out_h > 0 && out_w > 0);

  const int patch = in_c_ * kernel_ * kernel_;        // K
  const int cols_n = batch * out_h * out_w;           // N
  QuantScratch& s = Scratch();

  const float in_scale = in_amax / 127.0f;
  const float in_inv = 127.0f / in_amax;
  s.q_input.resize(in_size);
  for (std::size_t i = 0; i < in_size; ++i) {
    s.q_input[i] = SnapToGrid(in[i], in_inv);
  }

  s.cols.resize(static_cast<std::size_t>(cols_n) * patch);
  if (kernel_ == 3) {
    Im2colT<3>(s.q_input.data(), batch, in_c_, in_h, in_w, kernel_, stride_,
               pad_, out_h, out_w, s.cols.data());
  } else if (kernel_ == 1) {
    Im2colT<1>(s.q_input.data(), batch, in_c_, in_h, in_w, kernel_, stride_,
               pad_, out_h, out_w, s.cols.data());
  } else {
    Im2colT<0>(s.q_input.data(), batch, in_c_, in_h, in_w, kernel_, stride_,
               pad_, out_h, out_w, s.cols.data());
  }

  // Register-tiled integer GEMM: C[M,N] = W[M,K] · patchᵀ in int32.
  s.acc.resize(static_cast<std::size_t>(out_c_) * cols_n);
  kernels::micro::GemmS16S32DotT(q_weights_.data(), s.cols.data(),
                                 s.acc.data(),
                                 kernels::GemmShape{out_c_, cols_n, patch});

  // Dequantize with the combined scale and add bias, un-interleaving the
  // column index back into NCHW.
  out->Reshape(batch, out_c_, out_h, out_w);
  const float combined = in_scale * w_scale_;
  float* o = out->data();
  const std::size_t hw = static_cast<std::size_t>(out_h) * out_w;
  for (int b = 0; b < batch; ++b) {
    for (int oc = 0; oc < out_c_; ++oc) {
      const float bias = bias_.empty() ? 0.0f : bias_[oc];
      const std::int32_t* arow = s.acc.data() +
                                 static_cast<std::size_t>(oc) * cols_n +
                                 static_cast<std::size_t>(b) * hw;
      float* orow =
          o + (static_cast<std::size_t>(b) * out_c_ + oc) * hw;
      for (std::size_t j = 0; j < hw; ++j) {
        orow[j] = combined * static_cast<float>(arow[j]) + bias;
      }
    }
  }
  return true;
}

}  // namespace nn
