// nn: a minimal NCHW float tensor for the detector substrate.
#ifndef NN_TENSOR_H_
#define NN_TENSOR_H_

#include <cstddef>
#include <vector>

#include "support/check.h"

namespace nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int n, int c, int h, int w)
      : n_(n), c_(c), h_(h), w_(w),
        data_(static_cast<std::size_t>(n) * c * h * w, 0.0f) {
    CERTKIT_CHECK(n > 0 && c > 0 && h > 0 && w > 0);
  }

  // Reshapes in place, reusing the existing capacity: the steady-state tick
  // path never reallocates once its buffers are warm (std::vector::resize
  // only allocates when growing past capacity and never shrinks it).
  // Existing element values are NOT cleared — every producer in the layer
  // stack overwrites its full output.
  void Reshape(int n, int c, int h, int w) {
    CERTKIT_CHECK(n > 0 && c > 0 && h > 0 && w > 0);
    n_ = n;
    c_ = c;
    h_ = h;
    w_ = w;
    data_.resize(static_cast<std::size_t>(n) * c * h * w);
  }

  int n() const { return n_; }
  int c() const { return c_; }
  int h() const { return h_; }
  int w() const { return w_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& At(int n, int c, int y, int x) {
    return data_[Index(n, c, y, x)];
  }
  float At(int n, int c, int y, int x) const {
    return data_[Index(n, c, y, x)];
  }

 private:
  std::size_t Index(int n, int c, int y, int x) const {
    CERTKIT_CHECK(n >= 0 && n < n_ && c >= 0 && c < c_ && y >= 0 && y < h_ &&
                  x >= 0 && x < w_);
    return ((static_cast<std::size_t>(n) * c_ + c) * h_ + y) * w_ + x;
  }

  int n_ = 0, c_ = 0, h_ = 0, w_ = 0;
  std::vector<float> data_;
};

}  // namespace nn

#endif  // NN_TENSOR_H_
