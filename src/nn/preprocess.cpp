// Frame preprocessing: normalization, resize, and letterboxing.
#include <algorithm>
#include <cmath>

#include "coverage/coverage.h"
#include "nn/layers.h"

namespace nn {

namespace {
struct PreProbes {
  certkit::cov::Unit* u;
  int d_same_size, d_aspect_match, d_pad_pixel;
  enum : int {
    kSNormalizeOnly = 0,
    kSResize,
    kSLetterboxSetup,
    kSLetterboxPad,
    kSLetterboxCopy,
    kSCount
  };
};
PreProbes& P() {
  static PreProbes p = [] {
    PreProbes q;
    q.u = &certkit::cov::Registry::Instance().GetOrCreate(
        "yolo/preprocess.cc");
    q.u->DeclareStatements(PreProbes::kSCount);
    q.d_same_size = q.u->DeclareDecision(2);  // h match && w match
    q.d_aspect_match = q.u->DeclareDecision(1);
    q.d_pad_pixel = q.u->DeclareDecision(2);
    return q;
  }();
  return p;
}

// Nearest-neighbour sample of channel c at fractional position. The
// fractional coordinate must be floored, not truncated: positions just
// below zero (top/left border under letterboxing, where (y - off) / scale
// can round a hair negative) must map to the border pixel via the clamp,
// not be pulled toward it by trunc-toward-zero.
float Sample(const Tensor& t, int n, int c, float fy, float fx) {
  int y = static_cast<int>(std::floor(fy));
  int x = static_cast<int>(std::floor(fx));
  y = std::clamp(y, 0, t.h() - 1);
  x = std::clamp(x, 0, t.w() - 1);
  return t.At(n, c, y, x);
}

}  // namespace

Tensor Preprocess(const Tensor& frame, int target_h, int target_w) {
  Tensor out;
  PreprocessInto(frame, target_h, target_w, &out);
  return out;
}

void PreprocessInto(const Tensor& frame, int target_h, int target_w,
                    Tensor* out_t) {
  PreProbes& p = P();
  CERTKIT_CHECK(target_h > 0 && target_w > 0);
  CERTKIT_CHECK(out_t != nullptr && out_t != &frame);
  constexpr float kScale = 1.0f / 255.0f;

  const bool hm = p.u->Cond(p.d_same_size, 0, frame.h() == target_h);
  const bool wm = p.u->Cond(p.d_same_size, 1, frame.w() == target_w);
  if (p.u->Dec(p.d_same_size, hm && wm)) {
    // Already the right size: normalize into the reused buffer.
    p.u->Stmt(PreProbes::kSNormalizeOnly);
    out_t->Reshape(frame.n(), frame.c(), target_h, target_w);
    const float* in = frame.data();
    float* o = out_t->data();
    for (std::size_t i = 0; i < frame.size(); ++i) o[i] = in[i] * kScale;
    return;
  }

  const float frame_aspect =
      static_cast<float>(frame.w()) / static_cast<float>(frame.h());
  const float target_aspect =
      static_cast<float>(target_w) / static_cast<float>(target_h);
  out_t->Reshape(frame.n(), frame.c(), target_h, target_w);
  Tensor& out = *out_t;

  if (p.u->Branch(p.d_aspect_match,
                  std::abs(frame_aspect - target_aspect) < 1e-6f)) {
    // Plain resize.
    p.u->Stmt(PreProbes::kSResize);
    const float sy = static_cast<float>(frame.h()) / target_h;
    const float sx = static_cast<float>(frame.w()) / target_w;
    for (int n = 0; n < frame.n(); ++n) {
      for (int c = 0; c < frame.c(); ++c) {
        for (int y = 0; y < target_h; ++y) {
          for (int x = 0; x < target_w; ++x) {
            out.At(n, c, y, x) =
                Sample(frame, n, c, y * sy, x * sx) * kScale;
          }
        }
      }
    }
    return;
  }

  // Letterbox: preserve aspect, pad with mid-grey. Typical square scenario
  // frames never reach this path — a deliberate Figure 5 coverage gap.
  p.u->Stmt(PreProbes::kSLetterboxSetup);
  const float scale =
      std::min(static_cast<float>(target_w) / frame.w(),
               static_cast<float>(target_h) / frame.h());
  const int new_w = static_cast<int>(frame.w() * scale);
  const int new_h = static_cast<int>(frame.h() * scale);
  const int off_x = (target_w - new_w) / 2;
  const int off_y = (target_h - new_h) / 2;
  for (int n = 0; n < frame.n(); ++n) {
    for (int c = 0; c < frame.c(); ++c) {
      for (int y = 0; y < target_h; ++y) {
        for (int x = 0; x < target_w; ++x) {
          const bool in_y =
              p.u->Cond(p.d_pad_pixel, 0, y >= off_y && y < off_y + new_h);
          const bool in_x =
              p.u->Cond(p.d_pad_pixel, 1, x >= off_x && x < off_x + new_w);
          if (p.u->Dec(p.d_pad_pixel, in_y && in_x)) {
            p.u->Stmt(PreProbes::kSLetterboxCopy);
            out.At(n, c, y, x) =
                Sample(frame, n, c, (y - off_y) / scale, (x - off_x) / scale) *
                kScale;
          } else {
            p.u->Stmt(PreProbes::kSLetterboxPad);
            out.At(n, c, y, x) = 0.5f;
          }
        }
      }
    }
  }
}

}  // namespace nn
