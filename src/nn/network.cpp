// Sequential network container and the TinyYolo detector assembly.
#include <cstring>

#include "coverage/coverage.h"
#include "nn/detector.h"
#include "obs/trace.h"

namespace nn {

namespace {
struct NetProbes {
  certkit::cov::Unit* u;
  int d_empty;
  enum : int { kSForwardLayer = 0, kSEmptyNetwork, kSDetect, kSCount };
};
NetProbes& P() {
  static NetProbes p = [] {
    NetProbes q;
    q.u = &certkit::cov::Registry::Instance().GetOrCreate(
        "yolo/network.cc");
    q.u->DeclareStatements(NetProbes::kSCount);
    q.d_empty = q.u->DeclareDecision(1);
    return q;
  }();
  return p;
}
}  // namespace

void Network::Add(std::unique_ptr<Layer> layer) {
  CERTKIT_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
}

Tensor Network::Forward(const Tensor& input) {
  Tensor out;
  ForwardInto(input, &out);
  return out;
}

void Network::ForwardInto(const Tensor& input, Tensor* out) {
  NetProbes& p = P();
  CERTKIT_CHECK(out != nullptr && out != &input);
  if (p.u->Branch(p.d_empty, layers_.empty())) {
    // Degenerate configuration: identity. Never reached by a real detector.
    p.u->Stmt(NetProbes::kSEmptyNetwork);
    *out = input;
    return;
  }
  // Layers ping-pong between the two scratch activations; the final layer
  // writes straight into the caller's buffer. Every hop reuses capacity, so
  // a warm network allocates nothing.
  const Tensor* cur = &input;
  const std::size_t last = layers_.size() - 1;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    p.u->Stmt(NetProbes::kSForwardLayer);
    Tensor* dst = (i == last) ? out : &scratch_[i % 2];
    layers_[i]->ForwardInto(*cur, dst);
    cur = dst;
  }
}

TinyYoloDetector::TinyYoloDetector(const DetectorConfig& config)
    : config_(config) {
  CERTKIT_CHECK(config.input_h % 16 == 0 && config.input_w % 16 == 0);
  const Backend be = config.backend;
  auto conv = [&](int in_c, int out_c, int k, int stride, int pad) {
    const std::size_t wn =
        static_cast<std::size_t>(out_c) * in_c * k * k;
    network_.Add(std::make_unique<ConvLayer>(
        in_c, out_c, k, stride, pad, std::vector<float>(wn, 0.0f),
        std::vector<float>(static_cast<std::size_t>(out_c), 0.0f), be));
  };
  auto bn = [&](int channels) {
    network_.Add(std::make_unique<BatchNormLayer>(
        std::vector<float>(static_cast<std::size_t>(channels), 1.0f),
        std::vector<float>(static_cast<std::size_t>(channels), 0.0f)));
  };
  auto leaky = [&] {
    network_.Add(
        std::make_unique<ActivationLayer>(Activation::kLeakyRelu, 0.1f));
  };
  auto pool = [&] { network_.Add(std::make_unique<MaxPoolLayer>(2, 2)); };

  // Backbone: 64 -> 32 -> 16 -> 8, then upsample to a 16x16 detection grid.
  conv(3, 8, 3, 1, 1);
  bn(8);
  leaky();
  pool();
  conv(8, 16, 3, 1, 1);
  bn(16);
  leaky();
  pool();
  conv(16, 32, 3, 1, 1);
  bn(32);
  leaky();
  pool();
  conv(32, 32, 3, 1, 1);
  bn(32);
  leaky();
  network_.Add(std::make_unique<UpsampleLayer>(2));
  // Head: 1x1 conv to [tx, ty, tw, th, obj, classes...] with a linear
  // activation (the decoder applies its own sigmoids).
  conv(32, 5 + config.num_classes, 1, 1, 0);
  network_.Add(std::make_unique<ActivationLayer>(Activation::kLinear));
}

std::vector<Detection> TinyYoloDetector::Detect(const Tensor& frame) {
  std::vector<Detection> out;
  DetectInto(frame, &out);
  return out;
}

void TinyYoloDetector::DetectInto(const Tensor& frame,
                                  std::vector<Detection>* out) {
  NetProbes& p = P();
  p.u->Stmt(NetProbes::kSDetect);
  PreprocessInto(frame, config_.input_h, config_.input_w, &input_scratch_);
  network_.ForwardInto(input_scratch_, &head_scratch_);
  DecodeDetectionsInto(head_scratch_, config_, out);
  NmsInPlace(out, config_.nms_iou_threshold);
}

std::vector<std::vector<Detection>> TinyYoloDetector::DetectBatch(
    const std::vector<Tensor>& frames, certkit::support::ThreadPool* pool) {
  std::vector<std::vector<Detection>> out;
  DetectBatchInto(frames, &out, pool);
  return out;
}

void TinyYoloDetector::DetectBatchInto(
    const std::vector<Tensor>& frames,
    std::vector<std::vector<Detection>>* out,
    certkit::support::ThreadPool* pool) {
  NetProbes& p = P();
  // No out->clear() here: clearing would destroy the inner vectors and
  // forfeit their capacity every call. DecodeDetectionsBatchInto resizes
  // the outer vector and clears each slot in place.
  if (frames.empty()) {
    out->clear();
    return;
  }
  p.u->Stmt(NetProbes::kSDetect);
  const std::size_t count = frames.size();
  // Host-side per-frame stages go through here: pool workers when a pool is
  // given, a plain loop otherwise. Result slot i always belongs to frame i,
  // so scheduling cannot reorder outputs. The generic lambda means the
  // pool-less path (the steady-state tick) never materializes a
  // std::function, so sharding itself is allocation-free.
  const auto shard = [&](auto&& fn) {
    if (pool != nullptr) {
      pool->ParallelFor(count, fn);
    } else {
      for (std::size_t i = 0; i < count; ++i) fn(i);
    }
  };

  inputs_scratch_.resize(count);
  std::vector<Tensor>& inputs = inputs_scratch_;
  {
    certkit::obs::Span span("batch_preprocess", "nn");
    shard([&](std::size_t i) {
      CERTKIT_CHECK_MSG(frames[i].n() == 1,
                        "DetectBatch frames must be single-image tensors");
      PreprocessInto(frames[i], config_.input_h, config_.input_w, &inputs[i]);
    });
  }

  batch_scratch_.Reshape(static_cast<int>(count), inputs[0].c(),
                         config_.input_h, config_.input_w);
  Tensor& batch = batch_scratch_;
  {
    certkit::obs::Span span("batch_stack", "nn");
    const std::size_t plane = inputs[0].size();
    shard([&](std::size_t i) {
      CERTKIT_CHECK(inputs[i].size() == plane);
      std::memcpy(batch.data() + i * plane, inputs[i].data(),
                  plane * sizeof(float));
    });
  }

  {
    certkit::obs::Span span("batch_forward", "nn");
    network_.ForwardInto(batch, &head_scratch_);
  }

  {
    certkit::obs::Span span("batch_decode", "nn");
    DecodeDetectionsBatchInto(head_scratch_, config_, out);
  }

  {
    certkit::obs::Span span("batch_nms", "nn");
    shard([&](std::size_t i) {
      NmsInPlace(&(*out)[i], config_.nms_iou_threshold);
    });
  }
}

}  // namespace nn
