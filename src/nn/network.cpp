// Sequential network container and the TinyYolo detector assembly.
#include <cstring>

#include "coverage/coverage.h"
#include "nn/detector.h"
#include "obs/trace.h"

namespace nn {

namespace {
struct NetProbes {
  certkit::cov::Unit* u;
  int d_empty;
  enum : int { kSForwardLayer = 0, kSEmptyNetwork, kSDetect, kSCount };
};
NetProbes& P() {
  static NetProbes p = [] {
    NetProbes q;
    q.u = &certkit::cov::Registry::Instance().GetOrCreate(
        "yolo/network.cc");
    q.u->DeclareStatements(NetProbes::kSCount);
    q.d_empty = q.u->DeclareDecision(1);
    return q;
  }();
  return p;
}
}  // namespace

void Network::Add(std::unique_ptr<Layer> layer) {
  CERTKIT_CHECK(layer != nullptr);
  layers_.push_back(std::move(layer));
}

Tensor Network::Forward(const Tensor& input) {
  NetProbes& p = P();
  if (p.u->Branch(p.d_empty, layers_.empty())) {
    // Degenerate configuration: identity. Never reached by a real detector.
    p.u->Stmt(NetProbes::kSEmptyNetwork);
    return input;
  }
  Tensor t = input;
  for (auto& layer : layers_) {
    p.u->Stmt(NetProbes::kSForwardLayer);
    t = layer->Forward(t);
  }
  return t;
}

TinyYoloDetector::TinyYoloDetector(const DetectorConfig& config)
    : config_(config) {
  CERTKIT_CHECK(config.input_h % 16 == 0 && config.input_w % 16 == 0);
  const Backend be = config.backend;
  auto conv = [&](int in_c, int out_c, int k, int stride, int pad) {
    const std::size_t wn =
        static_cast<std::size_t>(out_c) * in_c * k * k;
    network_.Add(std::make_unique<ConvLayer>(
        in_c, out_c, k, stride, pad, std::vector<float>(wn, 0.0f),
        std::vector<float>(static_cast<std::size_t>(out_c), 0.0f), be));
  };
  auto bn = [&](int channels) {
    network_.Add(std::make_unique<BatchNormLayer>(
        std::vector<float>(static_cast<std::size_t>(channels), 1.0f),
        std::vector<float>(static_cast<std::size_t>(channels), 0.0f)));
  };
  auto leaky = [&] {
    network_.Add(
        std::make_unique<ActivationLayer>(Activation::kLeakyRelu, 0.1f));
  };
  auto pool = [&] { network_.Add(std::make_unique<MaxPoolLayer>(2, 2)); };

  // Backbone: 64 -> 32 -> 16 -> 8, then upsample to a 16x16 detection grid.
  conv(3, 8, 3, 1, 1);
  bn(8);
  leaky();
  pool();
  conv(8, 16, 3, 1, 1);
  bn(16);
  leaky();
  pool();
  conv(16, 32, 3, 1, 1);
  bn(32);
  leaky();
  pool();
  conv(32, 32, 3, 1, 1);
  bn(32);
  leaky();
  network_.Add(std::make_unique<UpsampleLayer>(2));
  // Head: 1x1 conv to [tx, ty, tw, th, obj, classes...] with a linear
  // activation (the decoder applies its own sigmoids).
  conv(32, 5 + config.num_classes, 1, 1, 0);
  network_.Add(std::make_unique<ActivationLayer>(Activation::kLinear));
}

std::vector<Detection> TinyYoloDetector::Detect(const Tensor& frame) {
  NetProbes& p = P();
  p.u->Stmt(NetProbes::kSDetect);
  Tensor input = Preprocess(frame, config_.input_h, config_.input_w);
  Tensor head = network_.Forward(input);
  std::vector<Detection> dets = DecodeDetections(head, config_);
  return Nms(std::move(dets), config_.nms_iou_threshold);
}

std::vector<std::vector<Detection>> TinyYoloDetector::DetectBatch(
    const std::vector<Tensor>& frames, certkit::support::ThreadPool* pool) {
  NetProbes& p = P();
  if (frames.empty()) return {};
  p.u->Stmt(NetProbes::kSDetect);
  const std::size_t count = frames.size();
  // Host-side per-frame stages go through here: pool workers when a pool is
  // given, a plain loop otherwise. Result slot i always belongs to frame i,
  // so scheduling cannot reorder outputs.
  const auto shard = [&](const std::function<void(std::size_t)>& fn) {
    if (pool != nullptr) {
      pool->ParallelFor(count, fn);
    } else {
      for (std::size_t i = 0; i < count; ++i) fn(i);
    }
  };

  std::vector<Tensor> inputs(count);
  {
    certkit::obs::Span span("batch_preprocess", "nn");
    shard([&](std::size_t i) {
      CERTKIT_CHECK_MSG(frames[i].n() == 1,
                        "DetectBatch frames must be single-image tensors");
      inputs[i] = Preprocess(frames[i], config_.input_h, config_.input_w);
    });
  }

  Tensor batch(static_cast<int>(count), inputs[0].c(), config_.input_h,
               config_.input_w);
  {
    certkit::obs::Span span("batch_stack", "nn");
    const std::size_t plane = inputs[0].size();
    shard([&](std::size_t i) {
      CERTKIT_CHECK(inputs[i].size() == plane);
      std::memcpy(batch.data() + i * plane, inputs[i].data(),
                  plane * sizeof(float));
    });
  }

  Tensor head;
  {
    certkit::obs::Span span("batch_forward", "nn");
    head = network_.Forward(batch);
  }

  std::vector<std::vector<Detection>> decoded;
  {
    certkit::obs::Span span("batch_decode", "nn");
    decoded = DecodeDetectionsBatch(head, config_);
  }

  {
    certkit::obs::Span span("batch_nms", "nn");
    shard([&](std::size_t i) {
      decoded[i] = Nms(std::move(decoded[i]), config_.nms_iou_threshold);
    });
  }
  return decoded;
}

}  // namespace nn
