// nn: the YOLO-style single-shot detector (the paper's object-detection
// subject, §2 and §3.2).
#ifndef NN_DETECTOR_H_
#define NN_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/tensor.h"
#include "support/thread_pool.h"

namespace nn {

struct Detection {
  float x = 0.0f;  // center, pixels in network-input space
  float y = 0.0f;
  float w = 0.0f;
  float h = 0.0f;
  float score = 0.0f;
  int cls = 0;
};

struct DetectorConfig {
  int input_h = 64;
  int input_w = 64;
  int num_classes = 2;
  float score_threshold = 0.5f;
  float nms_iou_threshold = 0.45f;
  Backend backend = Backend::kClosedSim;
};

// Sequential network container.
class Network {
 public:
  void Add(std::unique_ptr<Layer> layer);
  Tensor Forward(const Tensor& input);
  // Capacity-reusing forward: layers ping-pong between two member scratch
  // tensors and the last layer writes straight into *out, so a warm network
  // never allocates. `out` must not alias `input`. Bit-identical to
  // Forward (same layer math, same probe sequence).
  void ForwardInto(const Tensor& input, Tensor* out);
  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  Tensor scratch_[2];  // ping-pong activation buffers, warm after one call
};

// Decodes the head tensor (grid of [5 + classes] channels) into detections
// above the threshold. Channels per cell: tx, ty, tw, th, objectness,
// class scores.
std::vector<Detection> DecodeDetections(const Tensor& head,
                                        const DetectorConfig& config);
// Capacity-reusing variant: clears and refills *out.
void DecodeDetectionsInto(const Tensor& head, const DetectorConfig& config,
                          std::vector<Detection>* out);
// Same decode, but an N-batch head yields one detection list per image
// (slot n holds image n's detections, bit-identical to decoding image n
// alone).
std::vector<std::vector<Detection>> DecodeDetectionsBatch(
    const Tensor& head, const DetectorConfig& config);
void DecodeDetectionsBatchInto(const Tensor& head,
                               const DetectorConfig& config,
                               std::vector<std::vector<Detection>>* out);

// Greedy IoU-based non-maximum suppression (class-aware).
std::vector<Detection> Nms(std::vector<Detection> detections,
                           float iou_threshold);
// In-place NMS: sorts and compacts *detections without allocating (the
// suppression flags live in thread_local scratch, so concurrent callers —
// e.g. DetectBatch pool workers — each get their own). Bit-identical
// results and probe sequence to Nms.
void NmsInPlace(std::vector<Detection>* detections, float iou_threshold);
// Intersection-over-union of two center-format boxes.
float Iou(const Detection& a, const Detection& b);

// The detector: preprocess -> backbone -> head -> decode -> NMS.
class TinyYoloDetector {
 public:
  explicit TinyYoloDetector(const DetectorConfig& config);

  // Runs detection on a raw frame (any size; values 0..255).
  std::vector<Detection> Detect(const Tensor& frame);

  // Allocation-free variant of Detect: all intermediates live in member
  // scratch buffers and *out is cleared and refilled reusing its capacity.
  // One warm-up call sizes everything; steady-state calls never touch the
  // heap. Not safe for concurrent calls on the same detector (use one
  // detector per thread, as the pipeline does).
  void DetectInto(const Tensor& frame, std::vector<Detection>* out);

  // Batched inference: preprocesses every frame (frames may differ in
  // size), stacks them into one N-batch tensor, runs a single forward pass
  // — the open-sim backend fuses the batch into one wide GEMM per conv, so
  // an N-batch costs the same number of device launches as one frame —
  // and decodes per image. Slot i of the result is bit-identical to
  // Detect(frames[i]) for every backend, any batch size, and any `pool`.
  //
  // `pool` (optional) shards the per-frame preprocess/stack/decode stages
  // across its workers. Pass nullptr to run inline on the calling thread —
  // required wherever per-thread attribution matters (cov::ThreadCapture /
  // obs::SpanCapture, e.g. campaign candidate evaluation), since probes
  // fired on pool workers land outside the caller's capture.
  std::vector<std::vector<Detection>> DetectBatch(
      const std::vector<Tensor>& frames,
      certkit::support::ThreadPool* pool = nullptr);

  // Allocation-free variant of DetectBatch (same contract); per-frame
  // stages may still run on `pool` workers — the member scratch slots they
  // touch are disjoint per frame.
  void DetectBatchInto(const std::vector<Tensor>& frames,
                       std::vector<std::vector<Detection>>* out,
                       certkit::support::ThreadPool* pool = nullptr);

  const DetectorConfig& config() const { return config_; }
  Network& network() { return network_; }

 private:
  DetectorConfig config_;
  Network network_;
  // Reused inference buffers (warm after the first call).
  Tensor input_scratch_;
  Tensor head_scratch_;
  Tensor batch_scratch_;
  std::vector<Tensor> inputs_scratch_;
};

// Weight constructors.
// Random (He-style) weights — used by the performance benchmarks, where
// values are irrelevant.
void InitRandomWeights(TinyYoloDetector* detector, std::uint64_t seed);
// Handcrafted "blob detector" weights: convolutions average brightness and
// the head maps bright regions to confident cell-sized detections. This
// makes the untrained network a *working* detector for the synthetic camera
// frames of the AD pipeline.
void InitBlobDetectorWeights(TinyYoloDetector* detector);

// Switches the detector to int8 inference: every ConvLayer's weights are
// snapped to a symmetric per-tensor int8 grid and input quantization is
// enabled on each conv, which then runs the true int8 path (int8 im2col +
// int32 micro-GEMM + per-layer-scale dequantize; see
// ConvLayer::SetInputQuantization). Deterministic and idempotent. Call
// after the weight constructors above; used as the quantized-vs-fp32 diff
// point of the replay differential oracle.
void QuantizeDetectorWeights(TinyYoloDetector* detector);

// Validated weight blob loading (versioned header + checksum), exercising
// the error paths a deployed loader needs.
struct WeightsBlob {
  std::vector<float> values;
};
bool SerializeWeights(const std::vector<float>& values, std::string* out);
bool DeserializeWeights(const std::string& buffer, WeightsBlob* out,
                        std::string* error);

}  // namespace nn

#endif  // NN_DETECTOR_H_
