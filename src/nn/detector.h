// nn: the YOLO-style single-shot detector (the paper's object-detection
// subject, §2 and §3.2).
#ifndef NN_DETECTOR_H_
#define NN_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/tensor.h"
#include "support/thread_pool.h"

namespace nn {

struct Detection {
  float x = 0.0f;  // center, pixels in network-input space
  float y = 0.0f;
  float w = 0.0f;
  float h = 0.0f;
  float score = 0.0f;
  int cls = 0;
};

struct DetectorConfig {
  int input_h = 64;
  int input_w = 64;
  int num_classes = 2;
  float score_threshold = 0.5f;
  float nms_iou_threshold = 0.45f;
  Backend backend = Backend::kClosedSim;
};

// Sequential network container.
class Network {
 public:
  void Add(std::unique_ptr<Layer> layer);
  Tensor Forward(const Tensor& input);
  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

// Decodes the head tensor (grid of [5 + classes] channels) into detections
// above the threshold. Channels per cell: tx, ty, tw, th, objectness,
// class scores.
std::vector<Detection> DecodeDetections(const Tensor& head,
                                        const DetectorConfig& config);
// Same decode, but an N-batch head yields one detection list per image
// (slot n holds image n's detections, bit-identical to decoding image n
// alone).
std::vector<std::vector<Detection>> DecodeDetectionsBatch(
    const Tensor& head, const DetectorConfig& config);

// Greedy IoU-based non-maximum suppression (class-aware).
std::vector<Detection> Nms(std::vector<Detection> detections,
                           float iou_threshold);
// Intersection-over-union of two center-format boxes.
float Iou(const Detection& a, const Detection& b);

// The detector: preprocess -> backbone -> head -> decode -> NMS.
class TinyYoloDetector {
 public:
  explicit TinyYoloDetector(const DetectorConfig& config);

  // Runs detection on a raw frame (any size; values 0..255).
  std::vector<Detection> Detect(const Tensor& frame);

  // Batched inference: preprocesses every frame (frames may differ in
  // size), stacks them into one N-batch tensor, runs a single forward pass
  // — the open-sim backend fuses the batch into one wide GEMM per conv, so
  // an N-batch costs the same number of device launches as one frame —
  // and decodes per image. Slot i of the result is bit-identical to
  // Detect(frames[i]) for every backend, any batch size, and any `pool`.
  //
  // `pool` (optional) shards the per-frame preprocess/stack/decode stages
  // across its workers. Pass nullptr to run inline on the calling thread —
  // required wherever per-thread attribution matters (cov::ThreadCapture /
  // obs::SpanCapture, e.g. campaign candidate evaluation), since probes
  // fired on pool workers land outside the caller's capture.
  std::vector<std::vector<Detection>> DetectBatch(
      const std::vector<Tensor>& frames,
      certkit::support::ThreadPool* pool = nullptr);

  const DetectorConfig& config() const { return config_; }
  Network& network() { return network_; }

 private:
  DetectorConfig config_;
  Network network_;
};

// Weight constructors.
// Random (He-style) weights — used by the performance benchmarks, where
// values are irrelevant.
void InitRandomWeights(TinyYoloDetector* detector, std::uint64_t seed);
// Handcrafted "blob detector" weights: convolutions average brightness and
// the head maps bright regions to confident cell-sized detections. This
// makes the untrained network a *working* detector for the synthetic camera
// frames of the AD pipeline.
void InitBlobDetectorWeights(TinyYoloDetector* detector);

// Switches the detector to fake-int8 inference: every ConvLayer's weights
// are snapped to a symmetric per-tensor int8 grid and input quantization is
// enabled on each conv (see ConvLayer::SetInputQuantization). Deterministic
// and idempotent. Call after the weight constructors above; used as the
// quantized-vs-fp32 diff point of the replay differential oracle.
void QuantizeDetectorWeights(TinyYoloDetector* detector);

// Validated weight blob loading (versioned header + checksum), exercising
// the error paths a deployed loader needs.
struct WeightsBlob {
  std::vector<float> values;
};
bool SerializeWeights(const std::vector<float>& values, std::string* out);
bool DeserializeWeights(const std::string& buffer, WeightsBlob* out,
                        std::string* error);

}  // namespace nn

#endif  // NN_DETECTOR_H_
