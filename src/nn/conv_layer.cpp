#include <cmath>
#include <string>

#include "coverage/coverage.h"
#include "kernels/conv.h"
#include "nn/layers.h"

namespace nn {

namespace {

struct Probes {
  certkit::cov::Unit* u;
  int d_backend_closed, d_backend_open, d_has_bias;
  enum : int {
    kSForward = 0,
    kSClosed,
    kSOpen,
    kSNaive,
    kSWithBias,
    kSNoBias,
    kSCount
  };
};

Probes& P() {
  static Probes p = [] {
    Probes q;
    q.u = &certkit::cov::Registry::Instance().GetOrCreate(
        "yolo/conv_layer.cc");
    q.u->DeclareStatements(Probes::kSCount);
    q.d_backend_closed = q.u->DeclareDecision(1);
    q.d_backend_open = q.u->DeclareDecision(1);
    q.d_has_bias = q.u->DeclareDecision(1);
    return q;
  }();
  return p;
}

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kClosedSim:
      return "closed-sim (cuBLAS/cuDNN stand-in)";
    case Backend::kOpenSim:
      return "open-sim (CUTLASS/ISAAC stand-in)";
    case Backend::kCpuNaive:
      return "cpu-naive (CPU BLAS stand-in)";
  }
  return "?";
}

ConvLayer::ConvLayer(int in_c, int out_c, int kernel, int stride, int pad,
                     std::vector<float> weights, std::vector<float> bias,
                     Backend backend)
    : in_c_(in_c), out_c_(out_c), kernel_(kernel), stride_(stride), pad_(pad),
      weights_(std::move(weights)), bias_(std::move(bias)),
      backend_(backend) {
  CERTKIT_CHECK(in_c > 0 && out_c > 0 && kernel > 0 && stride > 0);
  CERTKIT_CHECK_MSG(
      weights_.size() == static_cast<std::size_t>(out_c) * in_c * kernel *
                             kernel,
      "conv weight count mismatch");
  CERTKIT_CHECK(bias_.empty() ||
                bias_.size() == static_cast<std::size_t>(out_c));
}

void FakeQuantizeTensor(Tensor* t) {
  float amax = 0.0f;
  float* data = t->data();
  const std::size_t size = t->size();
  for (std::size_t i = 0; i < size; ++i) {
    // A non-finite activation would make amax (and therefore the scale)
    // undefined; per the containment policy in layers.h, quantization is
    // skipped outright so the value reaches the safety layer's range
    // monitor intact instead of turning the whole tensor into NaN.
    if (!std::isfinite(data[i])) return;
    const float a = std::fabs(data[i]);
    if (a > amax) amax = a;
  }
  if (amax == 0.0f) return;
  const float scale = amax / 127.0f;
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = std::round(data[i] / scale) * scale;
  }
}

void ConvLayer::ForwardInto(const Tensor& input, Tensor* out) {
  Probes& p = P();
  p.u->Stmt(Probes::kSForward);
  CERTKIT_CHECK(out != nullptr && out != &input);
  CERTKIT_CHECK_MSG(input.c() == in_c_, "conv input channel mismatch");

  // No coverage probe on this branch: the quantized path is a replay /
  // differential-oracle mode, not part of the Figure-5 coverage subject, and
  // declaring a decision here would shift every campaign coverage ratio.
  // Quantization rides the call, not the member: nothing here mutates the
  // layer, so concurrent ForwardInto calls on a shared layer are race-free.
  if (quantize_inputs_) {
    if (QuantizedForwardInto(input, out)) return;
    // Skipped (non-finite input or zero scale): fall through to fp32.
  }

  kernels::ConvShape shape;
  shape.batch = input.n();
  shape.in_channels = in_c_;
  shape.in_h = input.h();
  shape.in_w = input.w();
  shape.out_channels = out_c_;
  shape.kernel_h = shape.kernel_w = kernel_;
  shape.stride = stride_;
  shape.pad = pad_;

  out->Reshape(input.n(), out_c_, shape.OutH(), shape.OutW());
  const float* bias = nullptr;
  if (p.u->Branch(p.d_has_bias, !bias_.empty())) {
    p.u->Stmt(Probes::kSWithBias);
    bias = bias_.data();
  } else {
    p.u->Stmt(Probes::kSNoBias);
  }

  if (p.u->Branch(p.d_backend_closed, backend_ == Backend::kClosedSim)) {
    p.u->Stmt(Probes::kSClosed);
    kernels::cudnn_sim::Conv2d(input.data(), weights_.data(), bias,
                               out->data(), shape);
  } else if (p.u->Branch(p.d_backend_open, backend_ == Backend::kOpenSim)) {
    p.u->Stmt(Probes::kSOpen);
    kernels::isaac_sim::Conv2d(input.data(), weights_.data(), bias,
                               out->data(), shape);
  } else {
    p.u->Stmt(Probes::kSNaive);
    kernels::Conv2dNaive(input.data(), weights_.data(), bias, out->data(),
                         shape);
  }
}

}  // namespace nn
