// Weight initialization and the validated weight-blob (de)serializer.
#include <cmath>
#include <cstring>

#include "coverage/coverage.h"
#include "nn/detector.h"
#include "support/rng.h"

namespace nn {

namespace {
struct WProbes {
  certkit::cov::Unit* u;
  int d_too_short, d_bad_magic, d_bad_count, d_bad_checksum;
  enum : int {
    kSSerialize = 0,
    kSDeserializeOk,
    kSErrTooShort,
    kSErrMagic,
    kSErrCount,
    kSErrChecksum,
    kSRandomInit,
    kSBlobInit,
    kSCount
  };
};
WProbes& P() {
  static WProbes p = [] {
    WProbes q;
    q.u = &certkit::cov::Registry::Instance().GetOrCreate(
        "yolo/weights.cc");
    q.u->DeclareStatements(WProbes::kSCount);
    q.d_too_short = q.u->DeclareDecision(1);
    q.d_bad_magic = q.u->DeclareDecision(1);
    q.d_bad_count = q.u->DeclareDecision(1);
    q.d_bad_checksum = q.u->DeclareDecision(1);
    return q;
  }();
  return p;
}

constexpr char kMagic[4] = {'C', 'K', 'W', '1'};

std::uint32_t Checksum(const float* values, std::size_t count) {
  std::uint32_t sum = 2166136261u;  // FNV-1a over the raw bytes
  const auto* bytes = reinterpret_cast<const unsigned char*>(values);
  for (std::size_t i = 0; i < count * sizeof(float); ++i) {
    sum ^= bytes[i];
    sum *= 16777619u;
  }
  return sum;
}

// Applies `fn(conv_index, layer)` to every ConvLayer of the detector.
template <typename Fn>
void ForEachConv(TinyYoloDetector* detector, Fn&& fn) {
  Network& net = detector->network();
  int conv_index = 0;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    if (auto* conv = dynamic_cast<ConvLayer*>(&net.layer(i))) {
      fn(conv_index++, conv);
    }
  }
}

}  // namespace

void InitRandomWeights(TinyYoloDetector* detector, std::uint64_t seed) {
  WProbes& p = P();
  p.u->Stmt(WProbes::kSRandomInit);
  certkit::support::Xoshiro256 rng(seed);
  ForEachConv(detector, [&](int, ConvLayer* conv) {
    auto& w = conv->mutable_weights();
    const double stddev = std::sqrt(2.0 / static_cast<double>(w.size()));
    for (auto& v : w) {
      v = static_cast<float>(rng.Gaussian(0.0, stddev));
    }
    for (auto& b : conv->mutable_bias()) {
      b = static_cast<float>(rng.Gaussian(0.0, 0.01));
    }
  });
  // Trained batch-norm parameters are not identity.
  Network& net = detector->network();
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    if (auto* bn = dynamic_cast<BatchNormLayer*>(&net.layer(i))) {
      for (auto& s : bn->mutable_scale()) {
        s = static_cast<float>(rng.UniformDouble(0.8, 1.2));
      }
      for (auto& sh : bn->mutable_shift()) {
        sh = static_cast<float>(rng.Gaussian(0.0, 0.05));
      }
    }
  }
}

void InitBlobDetectorWeights(TinyYoloDetector* detector) {
  WProbes& p = P();
  p.u->Stmt(WProbes::kSBlobInit);
  const int classes = detector->config().num_classes;
  ForEachConv(detector, [&](int conv_index, ConvLayer* conv) {
    auto& w = conv->mutable_weights();
    auto& b = conv->mutable_bias();
    if (conv_index < 4) {
      // Backbone convolutions: per-output-channel averaging of all inputs,
      // so activations track local brightness.
      // Weight layout [out_c, in_c, k, k]; each value 1 / (in_c * k * k)
      // normalizes the average.
      const std::size_t fan_in = w.size() / b.size();  // in_c * k * k
      const float norm = 1.0f / static_cast<float>(fan_in);
      for (auto& v : w) v = norm;
      for (auto& bias : b) bias = 0.0f;
      return;
    }
    // Head (1x1): channels are [tx, ty, tw, th, obj, cls...], inputs are 32
    // brightness channels.
    const int in_c = 32;
    std::fill(w.begin(), w.end(), 0.0f);
    std::fill(b.begin(), b.end(), 0.0f);
    // tx, ty: zero -> sigmoid 0.5 -> box centered in its cell.
    // tw, th: bias 1.1 -> box about 3 cells wide.
    b[2] = 1.1f;
    b[3] = 1.1f;
    // Objectness: 0.5 per brightness channel. The averaging backbone
    // dilutes a car-sized blob (~9x4 px) to v ~= 0.33 at its head cell
    // while road background sits near v ~= 0.09, so the bias separates
    // those two operating points (logits ~ +1.8 vs ~ -1.9).
    for (int c = 0; c < in_c; ++c) {
      w[static_cast<std::size_t>(4) * in_c + c] = 0.5f;
    }
    b[4] = -3.4f;
    // Class 0 wins unconditionally (single-class scenarios).
    if (classes > 0) b[5] = 1.0f;
  });
}

void QuantizeDetectorWeights(TinyYoloDetector* detector) {
  ForEachConv(detector, [](int, ConvLayer* conv) {
    float amax = 0.0f;
    for (const float v : conv->mutable_weights()) {
      const float a = std::fabs(v);
      if (a > amax) amax = a;
    }
    if (amax > 0.0f) {
      const float scale = amax / 127.0f;
      for (float& v : conv->mutable_weights()) {
        v = std::round(v / scale) * scale;
      }
    }
    conv->SetInputQuantization(true);
  });
}

bool SerializeWeights(const std::vector<float>& values, std::string* out) {
  WProbes& p = P();
  p.u->Stmt(WProbes::kSSerialize);
  CERTKIT_CHECK(out != nullptr);
  out->clear();
  out->append(kMagic, sizeof(kMagic));
  const std::uint32_t count = static_cast<std::uint32_t>(values.size());
  out->append(reinterpret_cast<const char*>(&count), sizeof(count));
  out->append(reinterpret_cast<const char*>(values.data()),
              values.size() * sizeof(float));
  const std::uint32_t sum = Checksum(values.data(), values.size());
  out->append(reinterpret_cast<const char*>(&sum), sizeof(sum));
  return true;
}

bool DeserializeWeights(const std::string& buffer, WeightsBlob* out,
                        std::string* error) {
  WProbes& p = P();
  CERTKIT_CHECK(out != nullptr && error != nullptr);
  constexpr std::size_t kHeader = sizeof(kMagic) + sizeof(std::uint32_t);
  if (p.u->Branch(p.d_too_short, buffer.size() < kHeader + sizeof(std::uint32_t))) {
    p.u->Stmt(WProbes::kSErrTooShort);
    *error = "weight blob too short";
    return false;
  }
  if (p.u->Branch(p.d_bad_magic,
                  std::memcmp(buffer.data(), kMagic, sizeof(kMagic)) != 0)) {
    p.u->Stmt(WProbes::kSErrMagic);
    *error = "bad magic";
    return false;
  }
  std::uint32_t count = 0;
  std::memcpy(&count, buffer.data() + sizeof(kMagic), sizeof(count));
  const std::size_t expected =
      kHeader + static_cast<std::size_t>(count) * sizeof(float) +
      sizeof(std::uint32_t);
  if (p.u->Branch(p.d_bad_count, buffer.size() != expected)) {
    p.u->Stmt(WProbes::kSErrCount);
    *error = "count does not match payload size";
    return false;
  }
  out->values.resize(count);
  std::memcpy(out->values.data(), buffer.data() + kHeader,
              static_cast<std::size_t>(count) * sizeof(float));
  std::uint32_t stored = 0;
  std::memcpy(&stored, buffer.data() + expected - sizeof(stored),
              sizeof(stored));
  if (p.u->Branch(p.d_bad_checksum,
                  stored != Checksum(out->values.data(),
                                     out->values.size()))) {
    p.u->Stmt(WProbes::kSErrChecksum);
    *error = "checksum mismatch";
    return false;
  }
  p.u->Stmt(WProbes::kSDeserializeOk);
  return true;
}

}  // namespace nn
