// nn: layers of the YOLO-style detector.
//
// Every layer's implementation file registers a coverage unit named after
// itself (e.g. "yolo/conv_layer.cc"); the Figure 5 benchmark runs the
// detector on real-scenario inputs and reports per-file statement, branch,
// and MC/DC coverage from these probes — the reproduction of the paper's
// RapiCover measurement of Apollo's object-detection code.
#ifndef NN_LAYERS_H_
#define NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace nn {

// Which kernel library backs the convolutions (Figure 7's comparison).
enum class Backend {
  kClosedSim,  // cudnn_sim / cublas_sim stand-ins for the vendor libraries
  kOpenSim,    // isaac_sim / cutlass_sim stand-ins for the open libraries
  kCpuNaive,   // single-threaded CPU reference (ATLAS/OpenBLAS stand-in)
};
const char* BackendName(Backend backend);

class Layer {
 public:
  virtual ~Layer() = default;
  virtual Tensor Forward(const Tensor& input) = 0;
  virtual std::string Name() const = 0;
};

enum class Activation { kLinear, kRelu, kLeakyRelu };

class ConvLayer : public Layer {
 public:
  // Weights are [out_c, in_c, k, k]; bias is [out_c] (may be empty).
  ConvLayer(int in_c, int out_c, int kernel, int stride, int pad,
            std::vector<float> weights, std::vector<float> bias,
            Backend backend);
  Tensor Forward(const Tensor& input) override;
  std::string Name() const override { return "conv"; }
  int out_channels() const { return out_c_; }
  std::vector<float>& mutable_weights() { return weights_; }
  std::vector<float>& mutable_bias() { return bias_; }

  // Fake-int8 inference mode: when enabled, Forward snaps its input tensor
  // to a symmetric per-tensor int8 grid (scale = max|x| / 127) before the
  // convolution. Deterministic — the grid is a pure function of the input —
  // and backend-independent, so it serves as the quantized-vs-fp32
  // differential diff point without touching the kernel libraries.
  void SetInputQuantization(bool enabled) { quantize_inputs_ = enabled; }
  bool input_quantization() const { return quantize_inputs_; }

 private:
  int in_c_, out_c_, kernel_, stride_, pad_;
  std::vector<float> weights_;
  std::vector<float> bias_;
  Backend backend_;
  bool quantize_inputs_ = false;
};

// Snaps every value of `t` to the symmetric per-tensor int8 grid
// (scale = max|x| / 127, round half away from zero). A no-op on an
// all-zero tensor. Exposed for the quantization tests.
void FakeQuantizeTensor(Tensor* t);

class BatchNormLayer : public Layer {
 public:
  // Folded form: y = scale[c] * x + shift[c].
  BatchNormLayer(std::vector<float> scale, std::vector<float> shift);
  Tensor Forward(const Tensor& input) override;
  std::string Name() const override { return "batchnorm"; }
  std::vector<float>& mutable_scale() { return scale_; }
  std::vector<float>& mutable_shift() { return shift_; }

 private:
  std::vector<float> scale_;
  std::vector<float> shift_;
};

class ActivationLayer : public Layer {
 public:
  explicit ActivationLayer(Activation kind, float leaky_slope = 0.1f);
  Tensor Forward(const Tensor& input) override;
  std::string Name() const override { return "activation"; }

 private:
  Activation kind_;
  float leaky_slope_;
};

class MaxPoolLayer : public Layer {
 public:
  MaxPoolLayer(int size, int stride);
  Tensor Forward(const Tensor& input) override;
  std::string Name() const override { return "maxpool"; }

 private:
  int size_, stride_;
};

class UpsampleLayer : public Layer {
 public:
  explicit UpsampleLayer(int factor);
  Tensor Forward(const Tensor& input) override;
  std::string Name() const override { return "upsample"; }

 private:
  int factor_;
};

// Normalizes a raw frame into network input; handles letterboxing when the
// aspect ratio differs from the target (a path typical square scenarios
// never exercise — one of the Figure 5 coverage gaps).
Tensor Preprocess(const Tensor& frame, int target_h, int target_w);

}  // namespace nn

#endif  // NN_LAYERS_H_
