// nn: layers of the YOLO-style detector.
//
// Every layer's implementation file registers a coverage unit named after
// itself (e.g. "yolo/conv_layer.cc"); the Figure 5 benchmark runs the
// detector on real-scenario inputs and reports per-file statement, branch,
// and MC/DC coverage from these probes — the reproduction of the paper's
// RapiCover measurement of Apollo's object-detection code.
#ifndef NN_LAYERS_H_
#define NN_LAYERS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"

namespace nn {

// Which kernel library backs the convolutions (Figure 7's comparison).
enum class Backend {
  kClosedSim,  // cudnn_sim / cublas_sim stand-ins for the vendor libraries
  kOpenSim,    // isaac_sim / cutlass_sim stand-ins for the open libraries
  kCpuNaive,   // single-threaded CPU reference (ATLAS/OpenBLAS stand-in)
};
const char* BackendName(Backend backend);

class Layer {
 public:
  virtual ~Layer() = default;
  // Writes the layer output into *out, reusing out's capacity — the
  // steady-state tick path allocates nothing once every buffer has seen its
  // peak size. `out` must not alias `input`.
  virtual void ForwardInto(const Tensor& input, Tensor* out) = 0;
  // Convenience wrapper for tests and one-shot callers (allocates).
  Tensor Forward(const Tensor& input) {
    Tensor out;
    ForwardInto(input, &out);
    return out;
  }
  virtual std::string Name() const = 0;
};

enum class Activation { kLinear, kRelu, kLeakyRelu };

class ConvLayer : public Layer {
 public:
  // Weights are [out_c, in_c, k, k]; bias is [out_c] (may be empty).
  ConvLayer(int in_c, int out_c, int kernel, int stride, int pad,
            std::vector<float> weights, std::vector<float> bias,
            Backend backend);
  void ForwardInto(const Tensor& input, Tensor* out) override;
  std::string Name() const override { return "conv"; }
  int out_channels() const { return out_c_; }
  std::vector<float>& mutable_weights() { return weights_; }
  std::vector<float>& mutable_bias() { return bias_; }

  // Int8 inference mode: when enabled, ForwardInto runs a true int8 path —
  // per-layer symmetric scales (weight scale = max|w| / 127 for this layer,
  // activation scale = max|x| / 127 per input tensor), int8 im2col, an
  // int32-accumulating micro-GEMM, and a combined-scale dequantize. Integer
  // accumulation is exact, so the path is deterministic and
  // backend-independent; it serves as the quantized arm of the replay
  // differential oracle, with the fp32 path kept as the bit-exact reference.
  // Quantization is threaded through as an argument, never by mutating
  // state, so a layer shared across ThreadPool threads is race-free.
  //
  // Non-finite containment: if the input holds any non-finite value (or is
  // all-zero), quantization is SKIPPED for that call and the fp32 path runs
  // instead — NaN/inf then propagate to the safety layer's range monitor,
  // which owns non-finite rejection, rather than being laundered through an
  // undefined int8 grid.
  // Enabling snapshots the layer's weights onto the int8 grid (widened to
  // int16 for the PMADDWD dot-product kernel) along with the per-layer
  // scale, so steady-state forwards never re-quantize the constant operand.
  // Call it AFTER the weights are final; re-call it to refresh the snapshot
  // if mutable_weights() changed. Defined in quantized.cpp.
  void SetInputQuantization(bool enabled);
  bool input_quantization() const { return quantize_inputs_; }

 private:
  // The int8 path. Returns false (leaving *out untouched) when quantization
  // must be skipped — non-finite input or an all-zero scale — in which case
  // the caller runs the fp32 path.
  bool QuantizedForwardInto(const Tensor& input, Tensor* out) const;

  int in_c_, out_c_, kernel_, stride_, pad_;
  std::vector<float> weights_;
  std::vector<float> bias_;
  Backend backend_;
  bool quantize_inputs_ = false;
  // Int8-mode weight snapshot (set by SetInputQuantization, const during
  // forwards — reentrancy depends on that): weights snapped to the int8
  // grid, stored widened as [out_c, in_c*k*k] int16; w_scale_ == 0 marks
  // "no usable grid" (all-zero or non-finite weights), which quantizes the
  // weight operand to zero exactly like the pre-snapshot path did.
  std::vector<std::int16_t> q_weights_;
  float w_scale_ = 0.0f;
};

// Snaps every value of `t` to the symmetric per-tensor int8 grid
// (scale = max|x| / 127, round half away from zero). A no-op on an
// all-zero tensor AND on any tensor containing a non-finite value: the
// undefined-scale bug class (amax = inf → scale = inf → NaN everywhere) is
// excluded by skipping quantization, matching the conv layer's containment
// policy above. Exposed for the quantization tests.
void FakeQuantizeTensor(Tensor* t);

class BatchNormLayer : public Layer {
 public:
  // Folded form: y = scale[c] * x + shift[c].
  BatchNormLayer(std::vector<float> scale, std::vector<float> shift);
  void ForwardInto(const Tensor& input, Tensor* out) override;
  std::string Name() const override { return "batchnorm"; }
  std::vector<float>& mutable_scale() { return scale_; }
  std::vector<float>& mutable_shift() { return shift_; }

 private:
  std::vector<float> scale_;
  std::vector<float> shift_;
};

class ActivationLayer : public Layer {
 public:
  explicit ActivationLayer(Activation kind, float leaky_slope = 0.1f);
  void ForwardInto(const Tensor& input, Tensor* out) override;
  std::string Name() const override { return "activation"; }

 private:
  Activation kind_;
  float leaky_slope_;
};

class MaxPoolLayer : public Layer {
 public:
  MaxPoolLayer(int size, int stride);
  void ForwardInto(const Tensor& input, Tensor* out) override;
  std::string Name() const override { return "maxpool"; }

 private:
  int size_, stride_;
};

class UpsampleLayer : public Layer {
 public:
  explicit UpsampleLayer(int factor);
  void ForwardInto(const Tensor& input, Tensor* out) override;
  std::string Name() const override { return "upsample"; }

 private:
  int factor_;
};

// Normalizes a raw frame into network input; handles letterboxing when the
// aspect ratio differs from the target (a path typical square scenarios
// never exercise — one of the Figure 5 coverage gaps).
Tensor Preprocess(const Tensor& frame, int target_h, int target_w);

// Capacity-reusing variant of Preprocess for the allocation-free tick path.
// `out` must not alias `frame`.
void PreprocessInto(const Tensor& frame, int target_h, int target_w,
                    Tensor* out);

}  // namespace nn

#endif  // NN_LAYERS_H_
