// Detection decoding: head tensor -> thresholded, clamped detections.
#include <cmath>

#include "coverage/coverage.h"
#include "nn/detector.h"

namespace nn {

namespace {
struct DecProbes {
  certkit::cov::Unit* u;
  int d_above_threshold, d_clamp, d_class_better;
  enum : int {
    kSCell = 0,
    kSAccept,
    kSReject,
    kSClampApplied,
    kSClassUpdate,
    kSCount
  };
};
DecProbes& P() {
  static DecProbes p = [] {
    DecProbes q;
    q.u = &certkit::cov::Registry::Instance().GetOrCreate(
        "yolo/detection.cc");
    q.u->DeclareStatements(DecProbes::kSCount);
    q.d_above_threshold = q.u->DeclareDecision(1);
    q.d_clamp = q.u->DeclareDecision(2);  // x out || y out
    q.d_class_better = q.u->DeclareDecision(1);
    return q;
  }();
  return p;
}

float Sigmoid(float v) { return 1.0f / (1.0f + std::exp(-v)); }

// Decodes one image of the (possibly batched) head tensor, appending to
// `out`. Shared by the flat and the per-image decoders so both fire the
// same probes and produce bit-identical boxes.
void DecodeImage(const Tensor& head, const DetectorConfig& config, int n,
                 std::vector<Detection>* out) {
  DecProbes& p = P();
  const int grid_h = head.h();
  const int grid_w = head.w();
  const float cell_h =
      static_cast<float>(config.input_h) / static_cast<float>(grid_h);
  const float cell_w =
      static_cast<float>(config.input_w) / static_cast<float>(grid_w);

  for (int gy = 0; gy < grid_h; ++gy) {
    for (int gx = 0; gx < grid_w; ++gx) {
      p.u->Stmt(DecProbes::kSCell);
      const float objectness = Sigmoid(head.At(n, 4, gy, gx));
      if (!p.u->Branch(p.d_above_threshold,
                       objectness >= config.score_threshold)) {
        p.u->Stmt(DecProbes::kSReject);
        continue;
      }
      p.u->Stmt(DecProbes::kSAccept);

      Detection det;
      det.x = (gx + Sigmoid(head.At(n, 0, gy, gx))) * cell_w;
      det.y = (gy + Sigmoid(head.At(n, 1, gy, gx))) * cell_h;
      det.w = cell_w * std::exp(std::min(head.At(n, 2, gy, gx), 4.0f));
      det.h = cell_h * std::exp(std::min(head.At(n, 3, gy, gx), 4.0f));
      det.score = objectness;

      // Clamp boxes that extend past the image border (cells at the
      // edges with large predicted sizes).
      const bool out_x = p.u->Cond(
          p.d_clamp, 0,
          det.x - det.w / 2 < 0.0f ||
              det.x + det.w / 2 > static_cast<float>(config.input_w));
      const bool out_y = p.u->Cond(
          p.d_clamp, 1,
          det.y - det.h / 2 < 0.0f ||
              det.y + det.h / 2 > static_cast<float>(config.input_h));
      if (p.u->Dec(p.d_clamp, out_x || out_y)) {
        p.u->Stmt(DecProbes::kSClampApplied);
        const float x0 = std::max(0.0f, det.x - det.w / 2);
        const float y0 = std::max(0.0f, det.y - det.h / 2);
        const float x1 = std::min(static_cast<float>(config.input_w),
                                  det.x + det.w / 2);
        const float y1 = std::min(static_cast<float>(config.input_h),
                                  det.y + det.h / 2);
        det.x = (x0 + x1) / 2;
        det.y = (y0 + y1) / 2;
        det.w = x1 - x0;
        det.h = y1 - y0;
      }

      // Arg-max over class scores. With num_classes == 1 the loop body
      // is dead and d_class_better is never evaluated — the MC/DC
      // boundary case tests/nn/detection_property_test.cpp pins down.
      int best_cls = 0;
      float best_score = head.At(n, 5, gy, gx);
      for (int c = 1; c < config.num_classes; ++c) {
        const float s = head.At(n, 5 + c, gy, gx);
        if (p.u->Branch(p.d_class_better, s > best_score)) {
          p.u->Stmt(DecProbes::kSClassUpdate);
          best_score = s;
          best_cls = c;
        }
      }
      det.cls = best_cls;
      out->push_back(det);
    }
  }
}

}  // namespace

std::vector<Detection> DecodeDetections(const Tensor& head,
                                        const DetectorConfig& config) {
  std::vector<Detection> out;
  DecodeDetectionsInto(head, config, &out);
  return out;
}

void DecodeDetectionsInto(const Tensor& head, const DetectorConfig& config,
                          std::vector<Detection>* out) {
  CERTKIT_CHECK_MSG(head.c() == 5 + config.num_classes,
                    "head channel count must be 5 + classes");
  out->clear();
  for (int n = 0; n < head.n(); ++n) DecodeImage(head, config, n, out);
}

std::vector<std::vector<Detection>> DecodeDetectionsBatch(
    const Tensor& head, const DetectorConfig& config) {
  std::vector<std::vector<Detection>> out;
  DecodeDetectionsBatchInto(head, config, &out);
  return out;
}

void DecodeDetectionsBatchInto(const Tensor& head,
                               const DetectorConfig& config,
                               std::vector<std::vector<Detection>>* out) {
  CERTKIT_CHECK_MSG(head.c() == 5 + config.num_classes,
                    "head channel count must be 5 + classes");
  out->resize(static_cast<std::size_t>(head.n()));
  for (int n = 0; n < head.n(); ++n) {
    auto& slot = (*out)[static_cast<std::size_t>(n)];
    slot.clear();
    DecodeImage(head, config, n, &slot);
  }
}

}  // namespace nn
