// Non-maximum suppression.
#include <algorithm>

#include "coverage/coverage.h"
#include "nn/detector.h"

namespace nn {

namespace {
struct NmsProbes {
  certkit::cov::Unit* u;
  int d_suppress;     // same class && IoU over threshold
  int d_no_overlap;   // zero intersection fast path
  enum : int {
    kSKeep = 0,
    kSSuppress,
    kSZeroOverlap,
    kSOverlapCompute,
    kSCount
  };
};
NmsProbes& P() {
  static NmsProbes p = [] {
    NmsProbes q;
    q.u = &certkit::cov::Registry::Instance().GetOrCreate("yolo/nms.cc");
    q.u->DeclareStatements(NmsProbes::kSCount);
    q.d_suppress = q.u->DeclareDecision(2);
    q.d_no_overlap = q.u->DeclareDecision(2);  // dx <= 0 || dy <= 0
    return q;
  }();
  return p;
}
// Release-flavor IoU: the same arithmetic as Iou below with the probe
// calls compiled out — NMS evaluates O(n²) candidate pairs, so the ~8
// probe calls per pair dominate the stage once coverage is off.
inline float IouFast(const Detection& a, const Detection& b) {
  const float ax0 = a.x - a.w / 2, ax1 = a.x + a.w / 2;
  const float ay0 = a.y - a.h / 2, ay1 = a.y + a.h / 2;
  const float bx0 = b.x - b.w / 2, bx1 = b.x + b.w / 2;
  const float by0 = b.y - b.h / 2, by1 = b.y + b.h / 2;
  const float dx = std::min(ax1, bx1) - std::max(ax0, bx0);
  const float dy = std::min(ay1, by1) - std::max(ay0, by0);
  if (dx <= 0.0f || dy <= 0.0f) return 0.0f;
  const float inter = dx * dy;
  const float uni = a.w * a.h + b.w * b.h - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

}  // namespace

float Iou(const Detection& a, const Detection& b) {
  if (!certkit::cov::ProbesEnabled()) return IouFast(a, b);
  NmsProbes& p = P();
  const float ax0 = a.x - a.w / 2, ax1 = a.x + a.w / 2;
  const float ay0 = a.y - a.h / 2, ay1 = a.y + a.h / 2;
  const float bx0 = b.x - b.w / 2, bx1 = b.x + b.w / 2;
  const float by0 = b.y - b.h / 2, by1 = b.y + b.h / 2;
  const float dx = std::min(ax1, bx1) - std::max(ax0, bx0);
  const float dy = std::min(ay1, by1) - std::max(ay0, by0);
  const bool no_x = p.u->Cond(p.d_no_overlap, 0, dx <= 0.0f);
  const bool no_y = p.u->Cond(p.d_no_overlap, 1, dy <= 0.0f);
  if (p.u->Dec(p.d_no_overlap, no_x || no_y)) {
    p.u->Stmt(NmsProbes::kSZeroOverlap);
    return 0.0f;
  }
  p.u->Stmt(NmsProbes::kSOverlapCompute);
  const float inter = dx * dy;
  const float area_a = a.w * a.h;
  const float area_b = b.w * b.h;
  const float uni = area_a + area_b - inter;
  return uni > 0.0f ? inter / uni : 0.0f;
}

std::vector<Detection> Nms(std::vector<Detection> detections,
                           float iou_threshold) {
  NmsInPlace(&detections, iou_threshold);
  return detections;
}

void NmsInPlace(std::vector<Detection>* detections, float iou_threshold) {
  NmsProbes& p = P();
  std::vector<Detection>& d = *detections;
  // Score-descending with a positional tie-break so that equal-score
  // detections are ordered deterministically regardless of backend.
  std::sort(d.begin(), d.end(),
            [](const Detection& a, const Detection& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.y != b.y) return a.y < b.y;
              if (a.x != b.x) return a.x < b.x;
              return a.cls < b.cls;
            });
  // Suppression flags live in thread_local scratch so pool workers running
  // per-frame NMS never contend or allocate once warm. Survivors are
  // compacted in place: the write cursor trails i, and the inner loop only
  // reads slots > i, so no live element is overwritten before it is read.
  thread_local std::vector<char> suppressed;
  suppressed.assign(d.size(), 0);
  std::size_t kept = 0;
  if (!certkit::cov::ProbesEnabled()) {
    // Release flavor: the identical suppress/compact loop with the probe
    // calls compiled out. A dense decode (hundreds of candidates) makes the
    // O(n²) pair loop the whole NMS cost when every pair fires probes.
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (suppressed[i]) continue;
      const Detection det = d[i];
      for (std::size_t j = i + 1; j < d.size(); ++j) {
        if (suppressed[j]) continue;
        if (det.cls == d[j].cls && IouFast(det, d[j]) > iou_threshold) {
          suppressed[j] = 1;
        }
      }
      d[kept++] = det;
    }
    d.resize(kept);
    return;
  }
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (suppressed[i]) continue;
    p.u->Stmt(NmsProbes::kSKeep);
    const Detection det = d[i];
    for (std::size_t j = i + 1; j < d.size(); ++j) {
      if (suppressed[j]) continue;
      const bool same_cls =
          p.u->Cond(p.d_suppress, 0, det.cls == d[j].cls);
      const bool over = p.u->Cond(
          p.d_suppress, 1, Iou(det, d[j]) > iou_threshold);
      if (p.u->Dec(p.d_suppress, same_cls && over)) {
        p.u->Stmt(NmsProbes::kSSuppress);
        suppressed[j] = 1;
      }
    }
    d[kept++] = det;
  }
  d.resize(kept);
}

}  // namespace nn
