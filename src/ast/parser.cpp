#include "ast/parser.h"

#include <algorithm>
#include <unordered_set>

#include "support/check.h"
#include "support/io.h"
#include "support/strings.h"

namespace certkit::ast {

namespace {

using lex::Token;
using lex::TokenKind;

const std::unordered_set<std::string_view>& TypeishKeywords() {
  static const std::unordered_set<std::string_view> kSet = {
      "const",    "volatile", "unsigned", "signed", "char",  "short",
      "int",      "long",     "float",    "double", "bool",  "void",
      "struct",   "enum",     "union",    "auto",   "wchar_t",
      "char8_t",  "char16_t", "char32_t",
  };
  return kSet;
}

bool IsFundamentalTypeKeyword(std::string_view s) {
  static const std::unordered_set<std::string_view> kSet = {
      "char",  "short",  "int",     "long",     "float",    "double",
      "bool",  "void",   "wchar_t", "char8_t",  "char16_t", "char32_t",
      "signed", "unsigned",
  };
  return kSet.contains(s);
}

class Parser {
 public:
  Parser(SourceFileModel* model) : model_(model), toks_(model->lexed.tokens) {}

  void Run() {
    ProcessDirectives();
    while (i_ < toks_.size()) {
      ParseTopLevel();
    }
    DetectCasts();
  }

 private:
  struct Scope {
    enum class Kind { kNamespace, kClass, kExternC };
    Kind kind;
    std::string name;
    TypeModel* type = nullptr;  // for class scopes, points into model_->types
    bool is_public = true;      // current access for class scopes
  };

  // --- token cursor helpers -------------------------------------------------

  bool AtEnd() const { return i_ >= toks_.size(); }
  const Token& Cur() const { return toks_[i_]; }
  const Token* PeekAt(std::size_t offset) const {
    return i_ + offset < toks_.size() ? &toks_[i_ + offset] : nullptr;
  }
  void Next() { ++i_; }

  // Skips a balanced group starting at the opener at i_ ('(', '{', or '[').
  // Returns the index of the matching closer (or last token on imbalance —
  // the fuzzy contract: never crash on malformed input).
  std::size_t SkipBalanced(char open, char close) {
    CERTKIT_CHECK(!AtEnd() && Cur().kind == TokenKind::kPunct &&
                  Cur().text.size() == 1 && Cur().text[0] == open);
    int depth = 0;
    const std::string open_s(1, open), close_s(1, close);
    while (!AtEnd()) {
      if (Cur().IsPunct(open_s)) {
        ++depth;
      } else if (Cur().IsPunct(close_s)) {
        --depth;
        if (depth == 0) {
          const std::size_t idx = i_;
          Next();
          return idx;
        }
      }
      Next();
    }
    return toks_.empty() ? 0 : toks_.size() - 1;
  }

  // Skips a template header: cursor is at "template"; consumes `template
  // < ... >` treating ">>" as two closers.
  void SkipTemplateHeader() {
    CERTKIT_CHECK(Cur().IsKeyword("template"));
    Next();
    if (AtEnd() || !Cur().IsPunct("<")) return;
    int depth = 0;
    while (!AtEnd()) {
      const Token& t = Cur();
      if (t.IsPunct("<") || t.IsPunct("<<")) {
        depth += static_cast<int>(t.text.size());
      } else if (t.IsPunct(">") || t.IsPunct(">>")) {
        depth -= static_cast<int>(t.text.size());
        if (depth <= 0) {
          Next();
          return;
        }
      } else if (t.IsPunct("(")) {
        SkipBalanced('(', ')');
        continue;
      }
      Next();
    }
  }

  // Skips to the next ';' at depth 0, balancing (), {}, [].
  void SkipToSemicolon() {
    while (!AtEnd()) {
      const Token& t = Cur();
      if (t.IsPunct(";")) {
        Next();
        return;
      }
      if (t.IsPunct("(")) {
        SkipBalanced('(', ')');
        continue;
      }
      if (t.IsPunct("{")) {
        SkipBalanced('{', '}');
        continue;
      }
      if (t.IsPunct("[")) {
        SkipBalanced('[', ']');
        continue;
      }
      if (t.IsPunct("}")) return;  // stray closer: let caller handle scope pop
      Next();
    }
  }

  void SkipAttributes() {
    while (!AtEnd() && Cur().IsPunct("[") && PeekAt(1) &&
           PeekAt(1)->IsPunct("[")) {
      SkipBalanced('[', ']');
    }
  }

  std::string QualifiedName(const std::string& name) const {
    std::string out;
    for (const Scope& s : scopes_) {
      if (!s.name.empty()) {
        out += s.name;
        out += "::";
      }
    }
    out += name;
    return out;
  }

  Scope* CurrentClassScope() {
    if (!scopes_.empty() && scopes_.back().kind == Scope::Kind::kClass) {
      return &scopes_.back();
    }
    return nullptr;
  }

  // --- directives -----------------------------------------------------------

  void ProcessDirectives() {
    for (const lex::Directive& d : model_->lexed.directives) {
      if (d.name == "include") {
        std::string target;
        for (const Token& t : d.tokens) target += t.text;
        model_->includes.push_back(target);
      } else if (d.name == "define" && !d.tokens.empty() &&
                 d.tokens[0].kind == TokenKind::kIdentifier) {
        MacroModel m;
        m.name = d.tokens[0].text;
        m.line = d.line;
        // Function-like iff '(' immediately follows the name (no space).
        m.function_like =
            d.tokens.size() > 1 && d.tokens[1].IsPunct("(") &&
            d.tokens[1].line == d.tokens[0].line &&
            d.tokens[1].column ==
                d.tokens[0].column +
                    static_cast<std::int32_t>(d.tokens[0].text.size());
        model_->macros.push_back(std::move(m));
      }
    }
  }

  // --- top level ------------------------------------------------------------

  void ParseTopLevel() {
    const Token& t = Cur();
    if (t.IsPunct("}")) {
      if (!scopes_.empty()) scopes_.pop_back();
      Next();
      // Class definitions end with "};" — consume the semicolon if present.
      if (!AtEnd() && Cur().IsPunct(";")) Next();
      return;
    }
    if (t.IsPunct(";")) {
      Next();
      return;
    }
    if (t.IsKeyword("namespace")) {
      ParseNamespace();
      return;
    }
    if (t.IsKeyword("inline") && PeekAt(1) &&
        PeekAt(1)->IsKeyword("namespace")) {
      Next();  // `inline namespace`: the namespace handling takes over
      return;
    }
    if (t.IsKeyword("extern") && PeekAt(1) &&
        PeekAt(1)->kind == TokenKind::kString) {
      Next();  // extern
      Next();  // "C"
      if (!AtEnd() && Cur().IsPunct("{")) {
        scopes_.push_back({Scope::Kind::kExternC, "", nullptr, true});
        Next();
      }
      return;
    }
    if (t.IsKeyword("using")) {
      if (PeekAt(1) && PeekAt(1)->IsKeyword("namespace")) {
        ++model_->using_namespace_count;
      } else {
        // `using A = B;` is an alias; `using ns::foo;` is a using-decl.
        bool has_eq = false;
        for (std::size_t k = i_ + 1; k < toks_.size(); ++k) {
          if (toks_[k].IsPunct(";")) break;
          if (toks_[k].IsPunct("=")) {
            has_eq = true;
            break;
          }
        }
        if (has_eq) ++model_->typedef_count;
      }
      SkipToSemicolon();
      return;
    }
    if (t.IsKeyword("typedef")) {
      ++model_->typedef_count;
      SkipToSemicolon();
      return;
    }
    if (t.IsKeyword("template")) {
      SkipTemplateHeader();
      return;  // the templated entity is parsed on the next iteration
    }
    if (t.IsKeyword("static_assert")) {
      SkipToSemicolon();
      return;
    }
    if (t.IsKeyword("class") || t.IsKeyword("struct") || t.IsKeyword("union")) {
      if (TryParseTypeDefinition()) return;
      // Elaborated type in a declaration — fall through to declaration-ish.
      ParseDeclarationish();
      return;
    }
    if (t.IsKeyword("enum")) {
      ParseEnum();
      return;
    }
    if (t.IsKeyword("public") || t.IsKeyword("private") ||
        t.IsKeyword("protected")) {
      if (Scope* cls = CurrentClassScope()) {
        cls->is_public = t.IsKeyword("public");
      }
      Next();
      if (!AtEnd() && Cur().IsPunct(":")) Next();
      return;
    }
    ParseDeclarationish();
  }

  void ParseNamespace() {
    CERTKIT_CHECK(Cur().IsKeyword("namespace"));
    Next();
    std::string name;
    // namespace a::b::c { ... } or anonymous namespace.
    while (!AtEnd() && (Cur().IsIdentifier() || Cur().IsPunct("::"))) {
      name += Cur().text;
      Next();
    }
    if (AtEnd()) return;
    if (Cur().IsPunct("{")) {
      scopes_.push_back({Scope::Kind::kNamespace, name, nullptr, true});
      Next();
      return;
    }
    // namespace alias or malformed — skip the statement.
    SkipToSemicolon();
  }

  // Cursor at class/struct/union. Returns true if a *definition* was parsed
  // (scope pushed); false if this is an elaborated type specifier in a
  // declaration (cursor unchanged).
  bool TryParseTypeDefinition() {
    const std::size_t start = i_;
    const Token& kw = Cur();
    TypeKind kind = kw.IsKeyword("class")    ? TypeKind::kClass
                    : kw.IsKeyword("struct") ? TypeKind::kStruct
                                             : TypeKind::kUnion;
    std::size_t k = i_ + 1;
    // Skip attributes and alignas.
    while (k < toks_.size() && toks_[k].IsPunct("[") && k + 1 < toks_.size() &&
           toks_[k + 1].IsPunct("[")) {
      int depth = 0;
      while (k < toks_.size()) {
        if (toks_[k].IsPunct("[")) ++depth;
        if (toks_[k].IsPunct("]")) {
          --depth;
          if (depth == 0) {
            ++k;
            break;
          }
        }
        ++k;
      }
    }
    std::string name;
    if (k < toks_.size() && toks_[k].IsIdentifier()) {
      name = toks_[k].text;
      ++k;
      // Skip template-id arguments in specializations: Name<...>.
      if (k < toks_.size() && toks_[k].IsPunct("<")) {
        int depth = 0;
        while (k < toks_.size()) {
          if (toks_[k].IsPunct("<")) ++depth;
          if (toks_[k].IsPunct(">")) {
            --depth;
            if (depth == 0) {
              ++k;
              break;
            }
          }
          if (toks_[k].IsPunct(">>")) {
            depth -= 2;
            if (depth <= 0) {
              ++k;
              break;
            }
          }
          ++k;
        }
      }
    }
    // `final` contextual keyword.
    if (k < toks_.size() && toks_[k].IsIdentifier() &&
        toks_[k].text == "final") {
      ++k;
    }
    // Definition iff next is '{' or ':' (base clause).
    if (k >= toks_.size() ||
        !(toks_[k].IsPunct("{") || toks_[k].IsPunct(":"))) {
      i_ = start;
      return false;
    }
    // Skip base clause to '{'.
    while (k < toks_.size() && !toks_[k].IsPunct("{")) {
      if (toks_[k].IsPunct(";")) {  // defensive: malformed
        i_ = k + 1;
        return true;
      }
      ++k;
    }
    if (k >= toks_.size()) {
      i_ = toks_.size();
      return true;
    }
    TypeModel tm;
    tm.kind = kind;
    tm.name = name.empty() ? "<anonymous>" : name;
    tm.qualified_name = QualifiedName(tm.name);
    tm.line = kw.line;
    model_->types.push_back(tm);
    Scope scope{Scope::Kind::kClass, name, nullptr,
                kind != TypeKind::kClass};
    scope.type = &model_->types.back();
    scopes_.push_back(scope);
    i_ = k + 1;  // past '{'
    return true;
  }

  void ParseEnum() {
    CERTKIT_CHECK(Cur().IsKeyword("enum"));
    const std::int32_t line = Cur().line;
    Next();
    if (!AtEnd() && (Cur().IsKeyword("class") || Cur().IsKeyword("struct"))) {
      Next();
    }
    std::string name;
    if (!AtEnd() && Cur().IsIdentifier()) {
      name = Cur().text;
      Next();
    }
    // Underlying type.
    if (!AtEnd() && Cur().IsPunct(":")) {
      while (!AtEnd() && !Cur().IsPunct("{") && !Cur().IsPunct(";")) Next();
    }
    if (!AtEnd() && Cur().IsPunct("{")) {
      TypeModel tm;
      tm.kind = TypeKind::kEnum;
      tm.name = name.empty() ? "<anonymous>" : name;
      tm.qualified_name = QualifiedName(tm.name);
      tm.line = line;
      model_->types.push_back(tm);
      SkipBalanced('{', '}');
    }
    if (!AtEnd() && Cur().IsPunct(";")) Next();
  }

  // --- declarations and function definitions --------------------------------

  // Parses one declaration-ish run at namespace/class scope. Decides between
  // function definition, function/variable declaration, and variable
  // definition.
  void ParseDeclarationish() {
    const std::size_t decl_begin = i_;
    bool saw_static = false;
    bool saw_cuda_global = false;
    bool saw_cuda_device = false;
    bool saw_extern = false;
    bool saw_const = false;
    bool saw_operator = false;

    // Walk tokens at depth 0 until a decision point.
    while (!AtEnd()) {
      const Token& t = Cur();
      if (t.IsPunct("}")) return;  // scope closer: top-level loop handles it
      if (t.IsPunct(";")) {
        // Variable declaration without initializer (or stray decl).
        RecordGlobalIfPlausible(decl_begin, i_, saw_static, saw_extern,
                                saw_const, /*has_init=*/false);
        Next();
        return;
      }
      if (t.IsKeyword("static")) saw_static = true;
      if (t.IsKeyword("extern")) saw_extern = true;
      if (t.IsKeyword("const") || t.IsKeyword("constexpr")) saw_const = true;
      if (t.IsKeyword("__global__")) saw_cuda_global = true;
      if (t.IsKeyword("__device__")) saw_cuda_device = true;

      if (t.IsKeyword("operator")) {
        saw_operator = true;
        Next();
        // operator() — the symbol itself is a paren pair; absorb it so the
        // following parens are the parameter list.
        if (!AtEnd() && Cur().IsPunct("(") && PeekAt(1) &&
            PeekAt(1)->IsPunct(")")) {
          Next();
          Next();
        }
        // Absorb the remaining operator symbol: puncts, or new/delete, or a
        // conversion-operator type (identifiers); stop at '('.
        while (!AtEnd() && !Cur().IsPunct("(")) {
          if (Cur().IsPunct(";") || Cur().IsPunct("{")) break;
          Next();
        }
        continue;
      }
      if (t.IsPunct("[") && PeekAt(1) && PeekAt(1)->IsPunct("[")) {
        SkipAttributes();
        continue;
      }
      if (t.IsPunct("[")) {  // array declarator
        SkipBalanced('[', ']');
        continue;
      }
      if (t.IsPunct("<")) {
        // Template arguments inside the declarator (e.g. return type
        // std::vector<int>). Balance conservatively.
        SkipAngleBrackets();
        continue;
      }
      if (t.IsPunct("=")) {
        // Variable with initializer.
        RecordGlobalIfPlausible(decl_begin, i_, saw_static, saw_extern,
                                saw_const, /*has_init=*/true);
        SkipToSemicolon();
        return;
      }
      if (t.IsPunct("{")) {
        // Brace initializer without '=' : `int x{3};` — or something we do
        // not understand. Record then skip.
        RecordGlobalIfPlausible(decl_begin, i_, saw_static, saw_extern,
                                saw_const, /*has_init=*/true);
        SkipBalanced('{', '}');
        if (!AtEnd() && Cur().IsPunct(";")) Next();
        return;
      }
      if (t.IsPunct("(")) {
        HandleParenInDeclarator(decl_begin, saw_static, saw_cuda_global,
                                saw_cuda_device, saw_operator);
        return;
      }
      Next();
    }
  }

  void SkipAngleBrackets() {
    CERTKIT_CHECK(Cur().IsPunct("<"));
    int depth = 0;
    while (!AtEnd()) {
      const Token& t = Cur();
      if (t.IsPunct("<")) {
        ++depth;
      } else if (t.IsPunct(">")) {
        --depth;
        if (depth == 0) {
          Next();
          return;
        }
      } else if (t.IsPunct(">>")) {
        depth -= 2;
        if (depth <= 0) {
          Next();
          return;
        }
      } else if (t.IsPunct(";") || t.IsPunct("{")) {
        return;  // not template args after all — bail out, cursor stays
      } else if (t.IsPunct("(")) {
        SkipBalanced('(', ')');
        continue;
      }
      Next();
    }
  }

  // Cursor at '(' inside a declarator run. Determines whether this is a
  // function definition, declaration, or ctor-style variable init.
  void HandleParenInDeclarator(std::size_t decl_begin, bool is_static,
                               bool is_cuda_global, bool is_cuda_device,
                               bool saw_operator) {
    const std::size_t lparen = i_;
    const std::size_t rparen = SkipBalanced('(', ')');
    // After the parameter list: qualifiers, then '{', ';', '=', ':' or 'try'.
    while (!AtEnd()) {
      const Token& t = Cur();
      if (t.IsPunct("{")) {
        RecordFunction(decl_begin, lparen, rparen, is_static, is_cuda_global,
                       is_cuda_device, saw_operator);
        return;
      }
      if (t.IsPunct(";")) {
        Next();  // declaration only — not recorded
        return;
      }
      if (t.IsPunct("=")) {
        // `= default;` / `= delete;` / pure virtual — declaration.
        SkipToSemicolon();
        return;
      }
      if (t.IsPunct(":")) {
        // Constructor member-initializer list: `name(...)` or `name{...}`
        // items separated by commas; the first '{' that is not an item
        // initializer opens the body.
        Next();
        while (!AtEnd()) {
          // Skip the member/base name (possibly qualified / templated).
          while (!AtEnd() &&
                 (Cur().IsIdentifier() || Cur().IsPunct("::") ||
                  Cur().kind == lex::TokenKind::kKeyword)) {
            Next();
          }
          if (!AtEnd() && Cur().IsPunct("<")) SkipAngleBrackets();
          if (AtEnd()) return;
          if (Cur().IsPunct("(")) {
            SkipBalanced('(', ')');
          } else if (Cur().IsPunct("{")) {
            SkipBalanced('{', '}');
          } else if (Cur().IsPunct(";")) {  // malformed; bail
            Next();
            return;
          } else if (Cur().IsPunct("...")) {  // pack expansion
            Next();
            continue;
          } else {
            // Unknown construct: consume one token defensively.
            Next();
            continue;
          }
          // After an item initializer: ',' continues the list, anything else
          // (normally '{') is handled by the outer loop.
          if (!AtEnd() && Cur().IsPunct("...")) Next();
          if (!AtEnd() && Cur().IsPunct(",")) {
            Next();
            continue;
          }
          break;
        }
        continue;
      }
      if (t.IsKeyword("try")) {
        // Function-try-block: body follows; catch clauses handled by the
        // body skip since they are brace groups — consume them after.
        Next();
        continue;
      }
      if (t.IsKeyword("const") || t.IsKeyword("noexcept") ||
          t.IsKeyword("volatile") || t.IsKeyword("throw") ||
          (t.IsIdentifier() &&
           (t.text == "override" || t.text == "final"))) {
        Next();
        if (!AtEnd() && Cur().IsPunct("(")) SkipBalanced('(', ')');
        continue;
      }
      if (t.IsPunct("->")) {  // trailing return type
        Next();
        while (!AtEnd() && !Cur().IsPunct("{") && !Cur().IsPunct(";")) {
          if (Cur().IsPunct("(")) {
            SkipBalanced('(', ')');
            continue;
          }
          if (Cur().IsPunct("<")) {
            SkipAngleBrackets();
            continue;
          }
          Next();
        }
        continue;
      }
      if (t.IsPunct("[") && PeekAt(1) && PeekAt(1)->IsPunct("[")) {
        SkipAttributes();
        continue;
      }
      if (t.IsPunct("(")) {
        // Second paren group: pointer-to-function variable or macro call.
        SkipBalanced('(', ')');
        continue;
      }
      // Unknown token (macro, K&R parameter, etc.): consume conservatively.
      Next();
    }
  }

  void RecordFunction(std::size_t decl_begin, std::size_t lparen,
                      std::size_t rparen, bool is_static, bool is_cuda_global,
                      bool is_cuda_device, bool saw_operator) {
    CERTKIT_CHECK(!AtEnd() && Cur().IsPunct("{"));
    FunctionModel fn;
    fn.sig_begin = decl_begin;
    fn.lparen = lparen;
    fn.body_begin = i_;
    fn.start_line = toks_[decl_begin].line;
    // Return type is plain void iff a `void` keyword appears before the name
    // with no pointer decoration after it.
    for (std::size_t j = decl_begin; j < lparen; ++j) {
      if (toks_[j].IsKeyword("void")) {
        fn.returns_void = true;
      } else if (toks_[j].IsPunct("*") || toks_[j].IsPunct("&")) {
        fn.returns_void = false;
      }
    }
    fn.is_static = is_static;
    fn.is_cuda_kernel = is_cuda_global;
    fn.is_cuda_device = is_cuda_device;
    fn.is_method = false;
    for (const Scope& s : scopes_) {
      if (s.kind == Scope::Kind::kClass) fn.is_method = true;
    }

    // Extract the (possibly qualified) function name: walk back from lparen.
    std::string prefix;  // out-of-line qualifier, e.g. "Foo::"
    std::string name;
    std::size_t k = lparen;
    if (saw_operator) {
      // Name runs from the 'operator' keyword to lparen.
      std::size_t op_idx = decl_begin;
      for (std::size_t j = decl_begin; j < lparen; ++j) {
        if (toks_[j].IsKeyword("operator")) op_idx = j;
      }
      for (std::size_t j = op_idx; j < lparen; ++j) name += toks_[j].text;
    } else if (k > decl_begin) {
      std::size_t j = k;  // token just after the name is toks_[lparen]
      // Walk backward over: ident | ~ident | ident<...> | qualified ids.
      std::vector<std::string> parts;
      while (j > decl_begin) {
        --j;
        const Token& t = toks_[j];
        if (t.IsPunct(">") || t.IsPunct(">>")) {
          // Skip template args backward.
          int depth = 0;
          while (true) {
            const Token& u = toks_[j];
            if (u.IsPunct(">")) ++depth;
            if (u.IsPunct(">>")) depth += 2;
            if (u.IsPunct("<")) --depth;
            if (depth <= 0 || j == decl_begin) break;
            --j;
          }
          continue;
        }
        if (t.IsIdentifier()) {
          parts.push_back(t.str());
          if (j > decl_begin && toks_[j - 1].IsPunct("~")) {
            parts.back() = "~" + parts.back();
            --j;
          }
          if (j > decl_begin && toks_[j - 1].IsPunct("::")) {
            --j;
            continue;  // keep walking the qualified id
          }
          break;
        }
        break;  // anything else ends the name walk
      }
      if (!parts.empty()) {
        name = parts.front();  // the last component
        for (std::size_t p = parts.size(); p > 1; --p) {
          prefix += parts[p - 1] + "::";
        }
      }
    }
    if (name.empty()) name = "<anonymous>";
    fn.name = name;
    fn.qualified_name = QualifiedName(prefix + name);
    if (!prefix.empty()) fn.is_method = true;

    ParseParameters(lparen, rparen, &fn.params);

    // Skip the body (and any function-try-block catch groups).
    fn.body_end = SkipBalanced('{', '}');
    while (!AtEnd() && Cur().IsKeyword("catch")) {
      Next();
      if (!AtEnd() && Cur().IsPunct("(")) SkipBalanced('(', ')');
      if (!AtEnd() && Cur().IsPunct("{")) SkipBalanced('{', '}');
    }
    fn.end_line = toks_[fn.body_end].line;

    if (Scope* cls = CurrentClassScope()) {
      ++cls->type->method_count;
      if (cls->is_public) ++cls->type->public_method_count;
    }
    model_->functions.push_back(std::move(fn));
  }

  void ParseParameters(std::size_t lparen, std::size_t rparen,
                       std::vector<ParamModel>* out) {
    if (rparen <= lparen + 1) return;  // ()
    // Split the span (lparen, rparen) on top-level commas.
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    std::size_t start = lparen + 1;
    int paren = 0, angle = 0, brace = 0, bracket = 0;
    for (std::size_t j = lparen + 1; j < rparen; ++j) {
      const Token& t = toks_[j];
      if (t.IsPunct("(")) ++paren;
      if (t.IsPunct(")")) --paren;
      if (t.IsPunct("{")) ++brace;
      if (t.IsPunct("}")) --brace;
      if (t.IsPunct("[")) ++bracket;
      if (t.IsPunct("]")) --bracket;
      if (t.IsPunct("<")) ++angle;
      if (t.IsPunct(">") && angle > 0) --angle;
      if (t.IsPunct(">>") && angle > 0) angle = std::max(0, angle - 2);
      if (t.IsPunct(",") && paren == 0 && angle == 0 && brace == 0 &&
          bracket == 0) {
        spans.emplace_back(start, j);
        start = j + 1;
      }
    }
    spans.emplace_back(start, rparen);

    for (auto [b, e] : spans) {
      if (b >= e) continue;
      // Single `void` means no parameters.
      if (e == b + 1 && toks_[b].IsKeyword("void")) continue;
      ParamModel p;
      if (e == b + 1 && toks_[b].IsPunct("...")) {
        p.name = "...";
        out->push_back(std::move(p));
        continue;
      }
      // Drop a default argument: truncate at top-level '='.
      std::size_t val_end = e;
      int d_paren = 0, d_angle = 0, d_brace = 0;
      for (std::size_t j = b; j < e; ++j) {
        const Token& t = toks_[j];
        if (t.IsPunct("(")) ++d_paren;
        if (t.IsPunct(")")) --d_paren;
        if (t.IsPunct("{")) ++d_brace;
        if (t.IsPunct("}")) --d_brace;
        if (t.IsPunct("<")) ++d_angle;
        if (t.IsPunct(">") && d_angle > 0) --d_angle;
        if (t.IsPunct("=") && d_paren == 0 && d_angle == 0 && d_brace == 0) {
          val_end = j;
          break;
        }
      }
      // Name = the last identifier in the span (skipping trailing []).
      std::size_t name_idx = val_end;
      std::size_t j = val_end;
      while (j > b) {
        --j;
        if (toks_[j].IsPunct("]") || toks_[j].IsPunct("[")) continue;
        if (toks_[j].IsIdentifier()) {
          name_idx = j;
          p.name = toks_[j].text;
        }
        break;
      }
      for (std::size_t q = b; q < val_end; ++q) {
        if (q == name_idx && !p.name.empty()) continue;
        if (!p.type_text.empty()) p.type_text += ' ';
        p.type_text += toks_[q].text;
      }
      out->push_back(std::move(p));
    }
  }

  void RecordGlobalIfPlausible(std::size_t decl_begin, std::size_t decl_end,
                               bool is_static, bool is_extern, bool is_const,
                               bool has_init) {
    if (decl_end <= decl_begin) return;
    // Need at least `type name` (2 tokens), name must be an identifier.
    if (decl_end - decl_begin < 2) return;
    // Find the last identifier before decl_end (skip array brackets).
    std::size_t j = decl_end;
    std::string name;
    std::int32_t line = 0;
    while (j > decl_begin) {
      --j;
      const Token& t = toks_[j];
      if (t.IsPunct("]") || t.IsPunct("[") || t.kind == TokenKind::kNumber) {
        continue;
      }
      if (t.IsIdentifier()) {
        name = t.text;
        line = t.line;
      }
      break;
    }
    if (name.empty()) return;
    // Reject runs containing control keywords or 'return' (defensive).
    for (std::size_t q = decl_begin; q < decl_end; ++q) {
      const Token& t = toks_[q];
      if (t.IsKeyword("return") || t.IsKeyword("if") || t.IsKeyword("goto") ||
          t.IsKeyword("friend")) {
        return;
      }
    }
    // Inside a class scope, this is a data member, not a global.
    if (Scope* cls = CurrentClassScope()) {
      ++cls->type->field_count;
      return;
    }
    GlobalVarModel g;
    g.name = name;
    g.qualified_name = QualifiedName(name);
    g.line = line;
    g.is_static = is_static;
    g.is_const = is_const;
    g.is_extern_decl = is_extern && !has_init;
    g.has_initializer = has_init;
    model_->globals.push_back(std::move(g));
  }

  // --- cast detection (whole-file token scan) --------------------------------

  void DetectCasts() {
    const auto& toks = toks_;
    for (std::size_t j = 0; j < toks.size(); ++j) {
      const Token& t = toks[j];
      if (t.kind == TokenKind::kKeyword) {
        CastKind kind;
        if (t.text == "static_cast") {
          kind = CastKind::kStaticCast;
        } else if (t.text == "dynamic_cast") {
          kind = CastKind::kDynamicCast;
        } else if (t.text == "reinterpret_cast") {
          kind = CastKind::kReinterpretCast;
        } else if (t.text == "const_cast") {
          kind = CastKind::kConstCast;
        } else if (IsFundamentalTypeKeyword(t.text) && j + 1 < toks.size() &&
                   toks[j + 1].IsPunct("(") &&
                   (j == 0 || !IsTypePosition(toks[j - 1]))) {
          // Functional cast like `int(x)` — but not `unsigned int(x)` counted
          // twice, and not declarations like `void f(`.
          if (t.text != "void" &&
              !(j + 2 < toks.size() && toks[j + 2].IsPunct(")"))) {
            CastModel c;
            c.kind = CastKind::kFunctional;
            c.line = t.line;
            c.target_text = t.text;
            model_->casts.push_back(std::move(c));
          }
          continue;
        } else {
          continue;
        }
        CastModel c;
        c.kind = kind;
        c.line = t.line;
        // Target type between '<' and matching '>'.
        if (j + 1 < toks.size() && toks[j + 1].IsPunct("<")) {
          int depth = 0;
          for (std::size_t q = j + 1; q < toks.size(); ++q) {
            if (toks[q].IsPunct("<")) ++depth;
            if (toks[q].IsPunct(">")) {
              --depth;
              if (depth == 0) break;
            }
            if (depth >= 1 && q > j + 1) {
              if (!c.target_text.empty()) c.target_text += ' ';
              c.target_text += toks[q].text;
            }
          }
        }
        model_->casts.push_back(std::move(c));
        continue;
      }
      if (t.IsPunct("(")) {
        DetectCStyleCastAt(j);
      }
    }
  }

  static bool IsTypePosition(const Token& prev) {
    // Token kinds after which a fundamental-type keyword begins a declaration
    // rather than a functional cast.
    return prev.kind == TokenKind::kKeyword || prev.IsPunct(",") ||
           prev.IsPunct("(") || prev.IsPunct(";") || prev.IsPunct("{") ||
           prev.IsPunct("<");
  }

  void DetectCStyleCastAt(std::size_t lparen) {
    const auto& toks = toks_;
    // Exclude call-position parens.
    if (lparen > 0) {
      const Token& p = toks[lparen - 1];
      if (p.IsIdentifier() || p.IsPunct(")") || p.IsPunct("]") ||
          p.kind == TokenKind::kNumber || p.kind == TokenKind::kString ||
          p.IsKeyword("sizeof") || p.IsKeyword("alignof") ||
          p.IsKeyword("if") || p.IsKeyword("while") || p.IsKeyword("for") ||
          p.IsKeyword("switch") || p.IsKeyword("catch") ||
          p.IsKeyword("this") || p.IsKeyword("noexcept") ||
          p.IsKeyword("decltype") || p.IsKeyword("alignas") ||
          p.IsKeyword("operator") || p.IsPunct(">")) {
        return;
      }
    }
    // Content must be purely type-ish and contain a type name.
    int depth = 0;
    std::size_t rparen = 0;
    bool typeish = true;
    bool has_type_name = false;
    bool has_star_or_amp = false;
    std::string text;
    for (std::size_t q = lparen; q < toks.size(); ++q) {
      const Token& t = toks[q];
      if (t.IsPunct("(")) {
        ++depth;
        if (depth > 1) {
          typeish = false;
          break;
        }
        continue;
      }
      if (t.IsPunct(")")) {
        --depth;
        if (depth == 0) {
          rparen = q;
          break;
        }
        continue;
      }
      const bool ok =
          t.IsIdentifier() ||
          (t.kind == TokenKind::kKeyword && TypeishKeywords().contains(t.text)) ||
          t.IsPunct("::") || t.IsPunct("<") || t.IsPunct(">") ||
          t.IsPunct("*") || t.IsPunct("&") || t.IsPunct("[") ||
          t.IsPunct("]") || t.kind == TokenKind::kNumber;
      if (!ok) {
        typeish = false;
        break;
      }
      if (t.IsIdentifier() ||
          (t.kind == TokenKind::kKeyword && TypeishKeywords().contains(t.text) &&
           t.text != "const" && t.text != "volatile")) {
        has_type_name = true;
      }
      if (t.IsPunct("*") || t.IsPunct("&")) has_star_or_amp = true;
      if (!text.empty()) text += ' ';
      text += t.text;
    }
    if (!typeish || rparen == 0 || !has_type_name) return;
    // `(void)expr` is the conventional discard idiom, not a conversion.
    if (rparen == lparen + 2 && toks[lparen + 1].IsKeyword("void")) return;
    if (rparen + 1 >= toks.size()) return;
    const Token& next = toks[rparen + 1];
    // The casted expression must follow immediately.
    const bool expr_follows =
        next.IsIdentifier() || next.kind == TokenKind::kNumber ||
        next.kind == TokenKind::kString || next.kind == TokenKind::kChar ||
        next.IsPunct("(") || next.IsKeyword("new") || next.IsKeyword("this") ||
        next.IsKeyword("sizeof");
    if (!expr_follows) return;
    // `(identifier) (x)` with a bare identifier and no '*' is too ambiguous
    // (could be a call through a parenthesized name) — require either a
    // pointer/reference decoration, a qualified name, multiple tokens, or a
    // fundamental type keyword, to keep precision high.
    const std::size_t content_tokens = rparen - lparen - 1;
    if (content_tokens == 1 && toks[lparen + 1].IsIdentifier() &&
        !has_star_or_amp && !next.IsPunct("(") &&
        next.kind != TokenKind::kNumber) {
      // Accept single-identifier casts only before literals: `(T)3`.
      return;
    }
    CastModel c;
    c.kind = CastKind::kCStyle;
    c.line = toks[lparen].line;
    c.target_text = text;
    model_->casts.push_back(std::move(c));
  }

  SourceFileModel* model_;
  const std::vector<Token>& toks_;
  std::size_t i_ = 0;
  std::vector<Scope> scopes_;
};

}  // namespace

const char* CastKindName(CastKind kind) {
  switch (kind) {
    case CastKind::kStaticCast:
      return "static_cast";
    case CastKind::kDynamicCast:
      return "dynamic_cast";
    case CastKind::kReinterpretCast:
      return "reinterpret_cast";
    case CastKind::kConstCast:
      return "const_cast";
    case CastKind::kCStyle:
      return "c-style";
    case CastKind::kFunctional:
      return "functional";
  }
  return "unknown";
}

support::Result<SourceFileModel> ParseSource(std::string path,
                                             std::string_view source,
                                             const ParseOptions& options) {
  auto lexed = lex::Lex(path, source, options.lex_options);
  if (!lexed.ok()) return lexed.status();
  SourceFileModel model;
  model.path = std::move(path);
  model.lexed = std::move(lexed).value();
  Parser parser(&model);
  parser.Run();
  return model;
}

support::Result<SourceFileModel> ParseFile(const std::string& path,
                                           const ParseOptions& options) {
  auto content = support::ReadFile(path);
  if (!content.ok()) return content.status();
  return ParseSource(path, content.value(), options);
}

}  // namespace certkit::ast
