// certkit ast: the source model produced by the fuzzy parser.
//
// The parser is deliberately *fuzzy* in the tradition of Lizard and other
// lightweight analyzers: it recognizes the structural skeleton of C/C++/CUDA
// translation units (namespaces, types, function definitions, file-scope
// variables, casts) from the raw token stream without preprocessing or
// semantic analysis. It tolerates and skips constructs it does not
// understand. This matches the tooling used in the paper and makes the
// analyzer usable on arbitrary, unbuildable source snapshots.
#ifndef CERTKIT_AST_SOURCE_MODEL_H_
#define CERTKIT_AST_SOURCE_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lex/token.h"

namespace certkit::ast {

struct ParamModel {
  std::string type_text;  // e.g. "const std::string &"
  std::string name;       // may be empty (unnamed parameter)
};

struct FunctionModel {
  std::string name;            // unqualified; "operator+" for operators
  std::string qualified_name;  // scope-qualified, e.g. "ns::Class::name"
  std::vector<ParamModel> params;
  std::int32_t start_line = 0;  // line of the first signature token
  std::int32_t end_line = 0;    // line of the closing brace
  // Token index ranges into LexedFile::tokens:
  std::size_t sig_begin = 0;   // first token of the declarator run
  std::size_t lparen = 0;      // index of the parameter-list '('
  std::size_t body_begin = 0;  // index of '{'
  std::size_t body_end = 0;    // index of matching '}' (inclusive)
  bool returns_void = false;   // declared return type is plain `void`
  bool is_method = false;       // defined lexically inside a class/struct
  bool is_cuda_kernel = false;  // declared __global__
  bool is_cuda_device = false;  // declared __device__
  bool is_static = false;
};

enum class TypeKind { kClass, kStruct, kUnion, kEnum };

struct TypeModel {
  TypeKind kind = TypeKind::kClass;
  std::string name;
  std::string qualified_name;
  std::int32_t line = 0;
  std::int32_t method_count = 0;       // member functions defined inline
  std::int32_t field_count = 0;        // data members (heuristic)
  std::int32_t public_method_count = 0;
};

struct GlobalVarModel {
  std::string name;
  std::string qualified_name;
  std::int32_t line = 0;
  bool is_static = false;     // internal linkage
  bool is_const = false;      // const/constexpr (not counted as mutable state)
  bool is_extern_decl = false;
  bool has_initializer = false;
};

enum class CastKind {
  kStaticCast,
  kDynamicCast,
  kReinterpretCast,
  kConstCast,
  kCStyle,       // (T)expr — heuristic detection
  kFunctional,   // T(expr) for fundamental types, e.g. int(x)
};

const char* CastKindName(CastKind kind);

struct CastModel {
  CastKind kind = CastKind::kStaticCast;
  std::int32_t line = 0;
  std::string target_text;  // best-effort text of the target type
};

struct MacroModel {
  std::string name;
  std::int32_t line = 0;
  bool function_like = false;
};

// Parse result for one translation unit. Owns the lexed token stream that the
// token-index ranges in FunctionModel refer to.
struct SourceFileModel {
  std::string path;
  lex::LexedFile lexed;
  std::vector<FunctionModel> functions;   // definitions only
  std::vector<TypeModel> types;
  std::vector<GlobalVarModel> globals;    // namespace/file-scope variables
  std::vector<CastModel> casts;
  std::vector<MacroModel> macros;
  std::vector<std::string> includes;      // include targets, as written
  std::int32_t using_namespace_count = 0;
  std::int32_t typedef_count = 0;  // typedef + alias using
};

}  // namespace certkit::ast

#endif  // CERTKIT_AST_SOURCE_MODEL_H_
