// certkit ast: fuzzy C/C++/CUDA structural parser.
//
// Recognized constructs: namespace blocks (incl. anonymous and nested-name),
// extern "C" blocks, class/struct/union/enum definitions, template headers,
// function definitions (free functions, methods, operators, constructors,
// destructors, CUDA __global__/__device__ functions), file-scope variable
// definitions, using/typedef aliases, preprocessor includes and macro
// definitions, and all four named C++ casts plus heuristic C-style and
// functional casts.
//
// Known limits (documented, by design — this is a lexical analyzer, not a
// compiler front end): function-like macro invocations at namespace scope can
// be misread as declarations; C-style cast detection is heuristic; lambdas
// are folded into their enclosing function for all metrics.
#ifndef CERTKIT_AST_PARSER_H_
#define CERTKIT_AST_PARSER_H_

#include <string>
#include <string_view>

#include "ast/source_model.h"
#include "lex/lexer.h"
#include "support/status.h"

namespace certkit::ast {

struct ParseOptions {
  lex::LexOptions lex_options;
};

// Lexes and parses `source` into a SourceFileModel.
support::Result<SourceFileModel> ParseSource(std::string path,
                                             std::string_view source,
                                             const ParseOptions& options = {});

// Convenience: reads `path` from disk and parses it.
support::Result<SourceFileModel> ParseFile(const std::string& path,
                                           const ParseOptions& options = {});

}  // namespace certkit::ast

#endif  // CERTKIT_AST_PARSER_H_
