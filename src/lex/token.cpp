#include "lex/token.h"

#include "lex/dfa_tables.h"

namespace certkit::lex {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kChar:
      return "char";
    case TokenKind::kPunct:
      return "punct";
  }
  return "unknown";
}

bool IsCppKeyword(std::string_view word) {
  return tables::CppKeywordTableContains(word);
}

bool IsCudaKeyword(std::string_view word) {
  return tables::CudaKeywordTableContains(word);
}

}  // namespace certkit::lex
