#include "lex/token.h"

#include <string_view>
#include <unordered_set>

namespace certkit::lex {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kChar:
      return "char";
    case TokenKind::kPunct:
      return "punct";
  }
  return "unknown";
}

namespace {

const std::unordered_set<std::string_view>& CppKeywords() {
  static const std::unordered_set<std::string_view> kKeywords = {
      // C++20 keyword set.
      "alignas", "alignof", "and", "and_eq", "asm", "auto", "bitand", "bitor",
      "bool", "break", "case", "catch", "char", "char8_t", "char16_t",
      "char32_t", "class", "compl", "concept", "const", "consteval",
      "constexpr", "constinit", "const_cast", "continue", "co_await",
      "co_return", "co_yield", "decltype", "default", "delete", "do",
      "double", "dynamic_cast", "else", "enum", "explicit", "export",
      "extern", "false", "float", "for", "friend", "goto", "if", "inline",
      "int", "long", "mutable", "namespace", "new", "noexcept", "not",
      "not_eq", "nullptr", "operator", "or", "or_eq", "private", "protected",
      "public", "register", "reinterpret_cast", "requires", "return", "short",
      "signed", "sizeof", "static", "static_assert", "static_cast", "struct",
      "switch", "template", "this", "thread_local", "throw", "true", "try",
      "typedef", "typeid", "typename", "union", "unsigned", "using",
      "virtual", "void", "volatile", "wchar_t", "while",
      // C99/C11 spellings that appear in mixed C/C++ automotive codebases.
      "restrict", "_Bool", "_Static_assert",
  };
  return kKeywords;
}

const std::unordered_set<std::string_view>& CudaKeywords() {
  static const std::unordered_set<std::string_view> kKeywords = {
      "__global__",   "__device__",  "__host__",     "__shared__",
      "__constant__", "__managed__", "__restrict__", "__forceinline__",
      "__launch_bounds__",
  };
  return kKeywords;
}

}  // namespace

bool IsCppKeyword(std::string_view word) {
  return CppKeywords().contains(word);
}

bool IsCudaKeyword(std::string_view word) {
  return CudaKeywords().contains(word);
}

}  // namespace certkit::lex
