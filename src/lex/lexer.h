// certkit lexer: tokenizes raw C/C++/CUDA source.
//
// Design notes:
//  * Works on unpreprocessed source; line continuations (backslash-newline)
//    are spliced logically but physical line numbers are preserved for
//    reporting.
//  * Comments are consumed and counted, never emitted as tokens.
//  * Raw strings, ordinary strings with escapes, char literals, hex/bin/
//    floating literals with digit separators and suffixes are handled.
//  * Preprocessor directives are collected into LexedFile::directives and do
//    not appear in the main token stream.
//  * The lexer never fails on valid UTF-8 bytes inside comments/strings; a
//    genuinely unterminated construct yields a ParseError, because downstream
//    metrics would otherwise silently miscount.
#ifndef CERTKIT_LEX_LEXER_H_
#define CERTKIT_LEX_LEXER_H_

#include <string>
#include <string_view>

#include "lex/token.h"
#include "support/status.h"

namespace certkit::lex {

struct LexOptions {
  // When true (default), CUDA execution-space qualifiers (__global__ etc.)
  // are classified as keywords; otherwise they are plain identifiers.
  bool cuda_dialect = true;
  // When true, comment text is retained in LexedFile::comments (used by the
  // requirement-traceability analyzer). Off by default: most analyses only
  // need the counts.
  bool keep_comments = false;
};

// Lexes `source` (notional file name `path`, used only for reporting).
support::Result<LexedFile> Lex(std::string path, std::string_view source,
                               const LexOptions& options = {});

}  // namespace certkit::lex

#endif  // CERTKIT_LEX_LEXER_H_
