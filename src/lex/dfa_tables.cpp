#include "lex/dfa_tables.h"

namespace certkit::lex::tables {

namespace {

constexpr std::array<std::uint8_t, 256> BuildCharClass() {
  std::array<std::uint8_t, 256> t{};
  for (int i = 0; i < 256; ++i) t[i] = kClOther;
  t[' '] = t['\t'] = t['\r'] = t['\v'] = t['\f'] = kClWs;
  t['\n'] = kClNl;
  t['0'] = kClZero;
  t['1'] = kClOne;
  for (char c = '2'; c <= '9'; ++c) t[static_cast<unsigned char>(c)] = kClDec;
  for (char c : {'a', 'c', 'd', 'A', 'C', 'D'}) {
    t[static_cast<unsigned char>(c)] = kClHexOnly;
  }
  t['b'] = t['B'] = kClB;
  t['e'] = t['E'] = kClE;
  t['f'] = t['F'] = kClF;
  t['p'] = t['P'] = kClP;
  t['x'] = t['X'] = kClX;
  t['u'] = t['U'] = t['l'] = t['L'] = kClUL;
  t['z'] = t['Z'] = kClZ;
  for (char c = 'a'; c <= 'z'; ++c) {
    unsigned char u = static_cast<unsigned char>(c);
    if (t[u] == kClOther) t[u] = kClIdent;
  }
  for (char c = 'A'; c <= 'Z'; ++c) {
    unsigned char u = static_cast<unsigned char>(c);
    if (t[u] == kClOther) t[u] = kClIdent;
  }
  t['_'] = kClIdent;
  t['+'] = t['-'] = kClSign;
  t['.'] = kClDot;
  t['\''] = kClSquote;
  t['"'] = kClDquote;
  t['/'] = kClSlash;
  t['\\'] = kClBackslash;
  t['#'] = kClHash;
  return t;
}

using DfaRow = std::array<std::uint8_t, kClassCount>;
using DfaTable = std::array<DfaRow, kStateCount>;

constexpr DfaTable BuildTokenDfa() {
  DfaTable t{};  // zero-initialized: every transition defaults to kStEnd

  // Identifier: any identifier-continuation character keeps the state.
  for (std::uint8_t cls = 0; cls < kClassCount; ++cls) {
    if (IsIdentContClass(cls)) t[kStIdent][cls] = kStIdent;
  }

  auto set = [&t](DfaState st, std::initializer_list<CharClass> classes,
                  DfaState next) {
    for (CharClass cls : classes) t[st][cls] = next;
  };

  // Decimal: digits and separators, at most one '.', one e/E exponent with
  // an optional sign, then a suffix run over {u U l L f F z Z}.
  set(kStDec, {kClZero, kClOne, kClDec, kClSquote}, kStDec);
  set(kStDec, {kClDot}, kStFrac);
  set(kStDec, {kClE}, kStExp1);
  set(kStDec, {kClUL, kClF, kClZ}, kStDSuf);

  set(kStFrac, {kClZero, kClOne, kClDec, kClSquote}, kStFrac);
  set(kStFrac, {kClE}, kStExp1);
  set(kStFrac, {kClUL, kClF, kClZ}, kStDSuf);

  set(kStExp1, {kClSign}, kStExpD);
  set(kStExp1, {kClZero, kClOne, kClDec}, kStExpD);
  set(kStExp1, {kClUL, kClF, kClZ}, kStDSuf);

  set(kStExpD, {kClZero, kClOne, kClDec}, kStExpD);
  set(kStExpD, {kClUL, kClF, kClZ}, kStDSuf);

  set(kStDSuf, {kClUL, kClF, kClZ}, kStDSuf);

  // Hex (0x consumed by the dispatcher): hex digits, separators, and dots
  // all stay; p/P opens a hex-float exponent; suffixes exclude z/Z.
  set(kStHex,
      {kClZero, kClOne, kClDec, kClHexOnly, kClB, kClE, kClF, kClSquote,
       kClDot},
      kStHex);
  set(kStHex, {kClP}, kStHexE1);
  set(kStHex, {kClUL}, kStHSuf);

  set(kStHexE1, {kClSign}, kStHexED);
  set(kStHexE1, {kClZero, kClOne, kClDec}, kStHexED);
  set(kStHexE1, {kClUL, kClF}, kStHSuf);

  set(kStHexED, {kClZero, kClOne, kClDec}, kStHexED);
  set(kStHexED, {kClUL, kClF}, kStHSuf);

  set(kStHSuf, {kClUL, kClF}, kStHSuf);

  // Binary (0b consumed by the dispatcher): 0/1/' stay; decimal suffixes.
  set(kStBin, {kClZero, kClOne, kClSquote}, kStBin);
  set(kStBin, {kClUL, kClF, kClZ}, kStDSuf);

  return t;
}

// Multi-character punctuators grouped by lead character. Within each group
// the order matches the reference lexer's kMultiPunct scan order, so maximal
// munch resolves identically (e.g. for '<': "<<=" before "<=>" before "<<"
// before "<=").
constexpr std::array<std::string_view, 27> kPunctTableInit = {
    "<<=", "<=>", "<<", "<=",   // '<'  [0..3]
    ">>=", ">>",  ">=",         // '>'  [4..6]
    "...", ".*",                // '.'  [7..8]
    "->*", "->",  "--", "-=",   // '-'  [9..12]
    "::",                       // ':'  [13]
    "++",  "+=",                // '+'  [14..15]
    "==",                       // '='  [16]
    "!=",                       // '!'  [17]
    "&&",  "&=",                // '&'  [18..19]
    "||",  "|=",                // '|'  [20..21]
    "*=",                       // '*'  [22]
    "/=",                       // '/'  [23]
    "%=",                       // '%'  [24]
    "^=",                       // '^'  [25]
    "##",                       // '#'  [26]
};

constexpr std::array<PunctGroup, 256> BuildPunctIndex() {
  std::array<PunctGroup, 256> idx{};
  for (std::uint8_t i = 0; i < kPunctTableInit.size(); ++i) {
    const unsigned char lead =
        static_cast<unsigned char>(kPunctTableInit[i].front());
    if (idx[lead].count == 0) idx[lead].offset = i;
    ++idx[lead].count;
  }
  return idx;
}

constexpr std::uint64_t Fnv1a64(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// A frozen open-addressing hash set: FNV-1a/64 modulo a power-of-two
// capacity, linear probing, built entirely at compile time. An empty
// string_view marks a vacant slot (no keyword is empty).
template <std::size_t Capacity>
struct FrozenStringSet {
  static_assert((Capacity & (Capacity - 1)) == 0, "capacity must be 2^k");
  std::array<std::string_view, Capacity> slots{};

  template <std::size_t N>
  constexpr explicit FrozenStringSet(
      const std::array<std::string_view, N>& words) {
    static_assert(N * 5 <= Capacity * 2, "load factor must stay under 0.4");
    for (std::string_view w : words) {
      std::size_t i = Fnv1a64(w) & (Capacity - 1);
      while (!slots[i].empty()) i = (i + 1) & (Capacity - 1);
      slots[i] = w;
    }
  }

  constexpr bool Contains(std::string_view w) const {
    std::size_t i = Fnv1a64(w) & (Capacity - 1);
    while (!slots[i].empty()) {
      if (slots[i] == w) return true;
      i = (i + 1) & (Capacity - 1);
    }
    return false;
  }
};

// C++20 keyword set, plus the C99/C11 spellings that appear in mixed C/C++
// automotive codebases. Identical contents to the seed lexer's set.
constexpr std::array<std::string_view, 93> kCppKeywords = {
    "alignas", "alignof", "and", "and_eq", "asm", "auto", "bitand", "bitor",
    "bool", "break", "case", "catch", "char", "char8_t", "char16_t",
    "char32_t", "class", "compl", "concept", "const", "consteval",
    "constexpr", "constinit", "const_cast", "continue", "co_await",
    "co_return", "co_yield", "decltype", "default", "delete", "do",
    "double", "dynamic_cast", "else", "enum", "explicit", "export",
    "extern", "false", "float", "for", "friend", "goto", "if", "inline",
    "int", "long", "mutable", "namespace", "new", "noexcept", "not",
    "not_eq", "nullptr", "operator", "or", "or_eq", "private", "protected",
    "public", "register", "reinterpret_cast", "requires", "return", "short",
    "signed", "sizeof", "static", "static_assert", "static_cast", "struct",
    "switch", "template", "this", "thread_local", "throw", "true", "try",
    "typedef", "typeid", "typename", "union", "unsigned", "using",
    "virtual", "void", "volatile", "wchar_t", "while",
    "restrict", "_Bool", "_Static_assert",
};

constexpr std::array<std::string_view, 9> kCudaKeywords = {
    "__global__",   "__device__",  "__host__",     "__shared__",
    "__constant__", "__managed__", "__restrict__", "__forceinline__",
    "__launch_bounds__",
};

constexpr FrozenStringSet<256> kCppKeywordSet(kCppKeywords);
constexpr FrozenStringSet<32> kCudaKeywordSet(kCudaKeywords);

}  // namespace

const std::array<std::uint8_t, 256> kCharClass = BuildCharClass();
const std::array<std::array<std::uint8_t, kClassCount>, kStateCount>
    kTokenDfa = BuildTokenDfa();
const std::array<std::string_view, 27> kPunctTable = kPunctTableInit;
const std::array<PunctGroup, 256> kPunctIndex = BuildPunctIndex();

std::uint64_t KeywordHash(std::string_view word) { return Fnv1a64(word); }

bool CppKeywordTableContains(std::string_view word) {
  return kCppKeywordSet.Contains(word);
}

bool CudaKeywordTableContains(std::string_view word) {
  return kCudaKeywordSet.Contains(word);
}

}  // namespace certkit::lex::tables
