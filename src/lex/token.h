// certkit lexer: token and line-classification types.
//
// The lexer operates on raw (unpreprocessed) C, C++, or CUDA-C++ source, as
// the paper's tooling (Lizard, style checkers) does. Preprocessor directives
// are lexed but kept out of the main token stream so the fuzzy parser sees a
// directive-free token sequence.
//
// Tokens are ZERO-COPY: Token::text and Comment::text are string_views into
// storage owned by the enclosing LexedFile — `buffer` holds the exact source
// bytes, and `owned_lexemes` holds the rare lexemes whose text differs from
// the raw bytes (string literals and line comments interrupted by a
// backslash-newline splice). Both are shared_ptrs, so copying or moving a
// LexedFile never invalidates a view. Code that keeps a token's text beyond
// the LexedFile's lifetime must copy it explicitly via Token::str().
#ifndef CERTKIT_LEX_TOKEN_H_
#define CERTKIT_LEX_TOKEN_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace certkit::lex {

enum class TokenKind {
  kIdentifier,  // foo, bar_baz
  kKeyword,     // if, while, template, __global__ (CUDA dialect)
  kNumber,      // 42, 0x1F, 3.5f, 0b1010, 1'000'000
  kString,      // "...", R"(...)", L"...", u8"..."
  kChar,        // 'a', L'\n'
  kPunct,       // operators and punctuation, maximal munch
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kPunct;
  // View into the owning LexedFile's buffer (or owned_lexemes). Valid for
  // the lifetime of that LexedFile and of any copy of it.
  std::string_view text;
  std::int32_t line = 0;    // 1-based
  std::int32_t column = 0;  // 1-based byte column

  // Explicit owning copy, for text that must outlive the LexedFile.
  std::string str() const { return std::string(text); }

  bool Is(TokenKind k, std::string_view t) const {
    return kind == k && text == t;
  }
  bool IsPunct(std::string_view t) const { return Is(TokenKind::kPunct, t); }
  bool IsKeyword(std::string_view t) const {
    return Is(TokenKind::kKeyword, t);
  }
  bool IsIdentifier() const { return kind == TokenKind::kIdentifier; }
};

// One preprocessor directive (logical line, after continuation splicing).
struct Directive {
  std::string name;           // "include", "define", "if", ... ("" if bare #)
  std::int32_t line = 0;      // line of the '#'
  std::vector<Token> tokens;  // tokens after the directive name
};

// Per-file physical-line statistics, in the sense used by Figure 3 (LOC) and
// by the size limits of Table 2.
struct LineStats {
  std::int64_t total = 0;         // physical lines
  std::int64_t blank = 0;         // whitespace only
  std::int64_t comment_only = 0;  // comment text, no code
  std::int64_t code = 0;          // at least one code token (NLOC)
  std::int64_t preprocessor = 0;  // directive lines (incl. continuations)
};

// A retained comment (populated only with LexOptions::keep_comments).
struct Comment {
  // Raw text including the // or /* */ markers; views into the owning
  // LexedFile's storage, like Token::text.
  std::string_view text;
  std::int32_t line = 0;  // line the comment starts on
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;         // code tokens, directives excluded
  std::vector<Directive> directives;
  std::vector<Comment> comments;     // only with LexOptions::keep_comments
  LineStats lines;
  std::int64_t comment_count = 0;    // number of comments (// or /*...*/)

  // Zero-copy backing storage. `buffer` owns the exact source bytes that
  // were lexed; almost every Token::text is a slice of it. `owned_lexemes`
  // (usually null) owns the synthesized lexemes — string literals and line
  // comments whose backslash-newline splices were removed — in a deque so
  // growth never moves an element. shared_ptr ownership means copies of a
  // LexedFile share storage and all views stay valid.
  std::shared_ptr<const std::string> buffer;
  std::shared_ptr<std::deque<std::string>> owned_lexemes;

  std::string_view source() const {
    return buffer ? std::string_view(*buffer) : std::string_view();
  }
};

// True for C/C++/CUDA keywords in the dialect the toolkit analyzes.
bool IsCppKeyword(std::string_view word);
// True for CUDA-specific execution-space / memory-space keywords
// (__global__, __device__, __host__, __shared__, __constant__, ...).
bool IsCudaKeyword(std::string_view word);

}  // namespace certkit::lex

#endif  // CERTKIT_LEX_TOKEN_H_
