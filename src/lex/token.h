// certkit lexer: token and line-classification types.
//
// The lexer operates on raw (unpreprocessed) C, C++, or CUDA-C++ source, as
// the paper's tooling (Lizard, style checkers) does. Preprocessor directives
// are lexed but kept out of the main token stream so the fuzzy parser sees a
// directive-free token sequence.
#ifndef CERTKIT_LEX_TOKEN_H_
#define CERTKIT_LEX_TOKEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace certkit::lex {

enum class TokenKind {
  kIdentifier,  // foo, bar_baz
  kKeyword,     // if, while, template, __global__ (CUDA dialect)
  kNumber,      // 42, 0x1F, 3.5f, 0b1010, 1'000'000
  kString,      // "...", R"(...)", L"...", u8"..."
  kChar,        // 'a', L'\n'
  kPunct,       // operators and punctuation, maximal munch
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  std::int32_t line = 0;    // 1-based
  std::int32_t column = 0;  // 1-based byte column

  bool Is(TokenKind k, std::string_view t) const {
    return kind == k && text == t;
  }
  bool IsPunct(std::string_view t) const { return Is(TokenKind::kPunct, t); }
  bool IsKeyword(std::string_view t) const {
    return Is(TokenKind::kKeyword, t);
  }
  bool IsIdentifier() const { return kind == TokenKind::kIdentifier; }
};

// One preprocessor directive (logical line, after continuation splicing).
struct Directive {
  std::string name;           // "include", "define", "if", ... ("" if bare #)
  std::int32_t line = 0;      // line of the '#'
  std::vector<Token> tokens;  // tokens after the directive name
};

// Per-file physical-line statistics, in the sense used by Figure 3 (LOC) and
// by the size limits of Table 2.
struct LineStats {
  std::int64_t total = 0;         // physical lines
  std::int64_t blank = 0;         // whitespace only
  std::int64_t comment_only = 0;  // comment text, no code
  std::int64_t code = 0;          // at least one code token (NLOC)
  std::int64_t preprocessor = 0;  // directive lines (incl. continuations)
};

// A retained comment (populated only with LexOptions::keep_comments).
struct Comment {
  std::string text;       // raw text including the // or /* */ markers
  std::int32_t line = 0;  // line the comment starts on
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;         // code tokens, directives excluded
  std::vector<Directive> directives;
  std::vector<Comment> comments;     // only with LexOptions::keep_comments
  LineStats lines;
  std::int64_t comment_count = 0;    // number of comments (// or /*...*/)
};

// True for C/C++/CUDA keywords in the dialect the toolkit analyzes.
bool IsCppKeyword(std::string_view word);
// True for CUDA-specific execution-space / memory-space keywords
// (__global__, __device__, __host__, __shared__, __constant__, ...).
bool IsCudaKeyword(std::string_view word);

}  // namespace certkit::lex

#endif  // CERTKIT_LEX_TOKEN_H_
