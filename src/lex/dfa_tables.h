// certkit lexer: the static tables behind the table-driven DFA scanner.
//
// Three frozen structures, all built at compile time:
//
//  1. kCharClass — a 256-entry byte-to-character-class map. Classes are
//     chosen so that the quirks of C/C++ numeric literals (hex digits that
//     double as suffixes, `e`/`E` as both hex digit and decimal exponent,
//     `b`/`B` as both hex digit and binary prefix) are distinctions the
//     transition table can see.
//  2. kTokenDfa — the transition table of the identifier/number automaton:
//     kTokenDfa[state][class] is the next state, kStEnd meaning "the token
//     ends before this character". The automaton reproduces the reference
//     scanner's behavior exactly (including its accepting quirks, e.g.
//     `1el` lexing as one number token); the differential test in
//     tests/lex/ holds it to that contract.
//  3. Keyword tables — frozen open-addressing hash sets (FNV-1a/64, linear
//     probing, power-of-two capacity) for the C++20 and CUDA keyword sets,
//     built constexpr so lookup is two or three probes with no startup cost.
//
// Multi-character punctuators use a per-lead-character candidate table
// (kPunctIndex/kPunctTable) that preserves the reference lexer's maximal-
// munch priority order.
#ifndef CERTKIT_LEX_DFA_TABLES_H_
#define CERTKIT_LEX_DFA_TABLES_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace certkit::lex::tables {

// Character classes. The partition is exactly fine enough to drive the
// number automaton; everything coarser would conflate, say, `z` (a decimal
// suffix but not a hex one) with `u` (both).
enum CharClass : std::uint8_t {
  kClWs = 0,     // space, \t, \r, \v, \f  (isspace minus \n)
  kClNl,         // \n
  kClZero,       // 0
  kClOne,        // 1
  kClDec,        // 2-9
  kClHexOnly,    // a c d A C D  (hex digits with no second meaning)
  kClB,          // b B          (hex digit; binary prefix after 0)
  kClE,          // e E          (hex digit; decimal exponent marker)
  kClF,          // f F          (hex digit; float suffix)
  kClP,          // p P          (hex-float exponent marker)
  kClX,          // x X          (hex prefix after 0)
  kClUL,         // u U l L      (integer suffixes)
  kClZ,          // z Z          (C++23-style suffix, decimal only)
  kClSign,       // + -
  kClDot,        // .
  kClSquote,     // '
  kClDquote,     // "
  kClSlash,      // /
  kClBackslash,  // backslash
  kClHash,       // #
  kClIdent,      // _, and letters with no class of their own
  kClOther,      // everything else
  kClassCount,
};

// States of the identifier/number automaton.
enum DfaState : std::uint8_t {
  kStEnd = 0,  // not a state: "stop, do not consume"
  kStIdent,    // inside an identifier
  kStDec,      // decimal integer part (also entered on a leading '.')
  kStFrac,     // after the decimal point
  kStExp1,     // just consumed e/E (optional sign next)
  kStExpD,     // exponent digits
  kStDSuf,     // decimal/binary suffix run (u U l L f F z Z)
  kStHex,      // hex digits (prefix 0x already consumed)
  kStHexE1,    // just consumed p/P (optional sign next)
  kStHexED,    // hex-float exponent digits
  kStHSuf,     // hex suffix run (u U l L f F)
  kStBin,      // binary digits (prefix 0b already consumed)
  kStateCount,
};

extern const std::array<std::uint8_t, 256> kCharClass;
extern const std::array<std::array<std::uint8_t, kClassCount>, kStateCount>
    kTokenDfa;

// Per-character lexical properties derived from the class partition.
constexpr bool IsIdentStartClass(std::uint8_t cls) {
  switch (cls) {
    case kClHexOnly:
    case kClB:
    case kClE:
    case kClF:
    case kClP:
    case kClX:
    case kClUL:
    case kClZ:
    case kClIdent:
      return true;
    default:
      return false;
  }
}
constexpr bool IsIdentContClass(std::uint8_t cls) {
  return IsIdentStartClass(cls) || cls == kClZero || cls == kClOne ||
         cls == kClDec;
}
constexpr bool IsDigitClass(std::uint8_t cls) {
  return cls == kClZero || cls == kClOne || cls == kClDec;
}

// Multi-character punctuators, grouped by lead character. For lead byte c,
// the candidates are kPunctTable[kPunctIndex[c].offset .. +count), in
// maximal-munch priority order; the first full match wins, and a bare
// single character is always a valid fallback.
struct PunctGroup {
  std::uint8_t offset = 0;
  std::uint8_t count = 0;
};
extern const std::array<std::string_view, 27> kPunctTable;
extern const std::array<PunctGroup, 256> kPunctIndex;

// Frozen keyword sets. Capacities are powers of two with load factor < 0.4.
std::uint64_t KeywordHash(std::string_view word);
bool CppKeywordTableContains(std::string_view word);
bool CudaKeywordTableContains(std::string_view word);

}  // namespace certkit::lex::tables

#endif  // CERTKIT_LEX_DFA_TABLES_H_
