#include "rules/iso26262.h"

namespace certkit::rules {

namespace {
constexpr Recommendation kOO = Recommendation::kNone;
constexpr Recommendation kR = Recommendation::kRecommended;
constexpr Recommendation kHR = Recommendation::kHighlyRecommended;
}  // namespace

const char* AsilName(Asil asil) {
  switch (asil) {
    case Asil::kA:
      return "A";
    case Asil::kB:
      return "B";
    case Asil::kC:
      return "C";
    case Asil::kD:
      return "D";
  }
  return "?";
}

const char* RecommendationMark(Recommendation r) {
  switch (r) {
    case Recommendation::kNone:
      return "o";
    case Recommendation::kRecommended:
      return "+";
    case Recommendation::kHighlyRecommended:
      return "++";
  }
  return "?";
}

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kCompliant:
      return "compliant";
    case Verdict::kPartial:
      return "partial";
    case Verdict::kNonCompliant:
      return "non-compliant";
    case Verdict::kNotApplicable:
      return "n/a";
  }
  return "?";
}

const TechniqueTable& CodingGuidelinesTable() {
  static const TechniqueTable kTable = {
      "ISO26262-6:Table1",
      "Modeling/coding guidelines (ISO26262_6 Table 1)",
      {
          {"1", "Enforcement of low complexity", {kHR, kHR, kHR, kHR}},
          {"2", "Use language subsets", {kHR, kHR, kHR, kHR}},
          {"3", "Enforcement of strong typing", {kHR, kHR, kHR, kHR}},
          {"4", "Use defensive implementation techniques", {kOO, kR, kHR, kHR}},
          {"5", "Use established design principles", {kR, kR, kR, kHR}},
          {"6", "Use unambiguous graphical representation", {kR, kHR, kHR, kHR}},
          {"7", "Use style guides", {kR, kHR, kHR, kHR}},
          {"8", "Use naming conventions", {kHR, kHR, kHR, kHR}},
      },
  };
  return kTable;
}

const TechniqueTable& ArchitecturalDesignTable() {
  static const TechniqueTable kTable = {
      "ISO26262-6:Table3",
      "Architectural design (ISO26262_6 Table 3)",
      {
          {"1", "Hierarchical structure of SW components", {kHR, kHR, kHR, kHR}},
          {"2", "Restricted size of software components", {kHR, kHR, kHR, kHR}},
          {"3", "Restricted size of interfaces", {kR, kR, kR, kR}},
          {"4", "High cohesion in each software component", {kR, kHR, kHR, kHR}},
          {"5", "Restricted coupling between SW components", {kR, kHR, kHR, kHR}},
          {"6", "Appropriate scheduling properties", {kHR, kHR, kHR, kHR}},
          {"7", "Restricted use of interrupts", {kR, kR, kR, kHR}},
      },
  };
  return kTable;
}

const TechniqueTable& UnitDesignTable() {
  static const TechniqueTable kTable = {
      "ISO26262-6:Table8",
      "SW unit design & implement. (ISO26262_6 Table 8)",
      {
          {"1", "One entry and one exit point in functions", {kHR, kHR, kHR, kHR}},
          {"2",
           "No dynamic objects or variables, or else online test during "
           "their creation",
           {kR, kHR, kHR, kHR}},
          {"3", "Initialization of variables", {kHR, kHR, kHR, kHR}},
          {"4", "No multiple use of variable names", {kR, kHR, kHR, kHR}},
          {"5", "Avoid global variables or justify usage", {kR, kR, kHR, kHR}},
          {"6", "Limited use of pointers", {kOO, kR, kR, kHR}},
          {"7", "No implicit type conversions", {kR, kHR, kHR, kHR}},
          {"8", "No hidden data flow or control flow", {kR, kHR, kHR, kHR}},
          {"9", "No unconditional jumps", {kHR, kHR, kHR, kHR}},
          {"10", "No recursions", {kR, kR, kHR, kHR}},
      },
  };
  return kTable;
}

const TechniqueTable& UnitVerificationTable() {
  static const TechniqueTable kTable = {
      "ISO26262-6:Table9",
      "Methods for software unit verification (ISO26262_6 Table 9)",
      {
          {"1", "Walk-through", {kHR, kR, kOO, kOO}},
          {"2", "Inspection", {kR, kHR, kHR, kHR}},
          {"3", "Semi-formal verification", {kR, kR, kHR, kHR}},
          {"4", "Formal verification", {kOO, kOO, kR, kR}},
          {"5", "Control flow analysis", {kR, kR, kHR, kHR}},
          {"6", "Data flow analysis", {kR, kR, kHR, kHR}},
          {"7", "Static code analysis", {kR, kHR, kHR, kHR}},
          {"8", "Semantic code analysis", {kR, kR, kR, kR}},
      },
  };
  return kTable;
}

const TechniqueTable& UnitCoverageTable() {
  static const TechniqueTable kTable = {
      "ISO26262-6:Table10",
      "Structural coverage metrics at the unit level (ISO26262_6 Table 10)",
      {
          {"1", "Statement coverage", {kHR, kHR, kR, kR}},
          {"2", "Branch coverage", {kR, kHR, kHR, kHR}},
          {"3", "MC/DC (modified condition/decision coverage)",
           {kR, kR, kR, kHR}},
      },
  };
  return kTable;
}

const TechniqueTable& IntegrationCoverageTable() {
  static const TechniqueTable kTable = {
      "ISO26262-6:Table12",
      "Structural coverage at the architectural level (ISO26262_6 Table 12)",
      {
          {"1", "Function coverage", {kR, kR, kHR, kHR}},
          {"2", "Call coverage", {kR, kR, kHR, kHR}},
      },
  };
  return kTable;
}

bool Satisfies(Verdict verdict, Recommendation recommendation) {
  if (verdict == Verdict::kNotApplicable) return true;
  switch (recommendation) {
    case Recommendation::kNone:
      return true;
    case Recommendation::kRecommended:
      return verdict == Verdict::kCompliant || verdict == Verdict::kPartial;
    case Recommendation::kHighlyRecommended:
      return verdict == Verdict::kCompliant;
  }
  return false;
}

}  // namespace certkit::rules
