#include "rules/style.h"

#include <string>
#include <vector>

#include "support/strings.h"

namespace certkit::rules {

namespace {

using support::IsMacroCase;
using support::IsSnakeCase;
using support::IsUpperCamelCase;
using support::StartsWith;

bool IsConstantName(std::string_view name) {
  // kUpperCamelCase.
  return name.size() >= 2 && name[0] == 'k' &&
         IsUpperCamelCase(name.substr(1));
}

bool HasIncludeGuardOrPragmaOnce(const ast::SourceFileModel& file) {
  bool has_ifndef = false, has_define = false;
  for (const auto& d : file.lexed.directives) {
    if (d.name == "pragma" && !d.tokens.empty() &&
        d.tokens[0].text == "once") {
      return true;
    }
    if (d.name == "ifndef") has_ifndef = true;
    if (d.name == "define" && has_ifndef) has_define = true;
  }
  return has_ifndef && has_define;
}

}  // namespace

StyleResult CheckStyle(const ast::SourceFileModel& file,
                       std::string_view raw_source,
                       const StyleOptions& options) {
  StyleResult result;
  result.report.checker = "style";
  CheckReport& rep = result.report;

  // --- line-level checks ---
  std::vector<std::string> lines = support::Split(raw_source, '\n');
  // A trailing newline produces one empty final field; that is the desired
  // EOF state, so drop it from per-line checks.
  const bool ends_with_newline =
      !raw_source.empty() && raw_source.back() == '\n';
  if (ends_with_newline && !lines.empty()) lines.pop_back();

  result.stats.lines_checked = static_cast<std::int64_t>(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::int32_t ln = static_cast<std::int32_t>(i + 1);
    if (static_cast<int>(line.size()) > options.max_line_length) {
      rep.Add("STYLE-LINELEN", Severity::kInfo, file.path, ln,
              "line is " + std::to_string(line.size()) + " columns (limit " +
                  std::to_string(options.max_line_length) + ")");
    }
    if (line.find('\t') != std::string::npos) {
      rep.Add("STYLE-TAB", Severity::kInfo, file.path, ln,
              "tab character in source line");
    }
    if (!line.empty() &&
        (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      rep.Add("STYLE-TRAILWS", Severity::kInfo, file.path, ln,
              "trailing whitespace");
    }
  }
  if (!raw_source.empty() && !ends_with_newline) {
    rep.Add("STYLE-EOFNL", Severity::kInfo, file.path,
            static_cast<std::int32_t>(lines.size()),
            "file does not end with a newline");
  }

  // --- naming checks ---
  if (options.check_naming) {
    result.stats.lines_checked +=
        static_cast<std::int64_t>(file.types.size() + file.functions.size() +
                                  file.globals.size() + file.macros.size());
    for (const auto& ty : file.types) {
      if (ty.name == "<anonymous>") continue;
      if (!IsUpperCamelCase(ty.name)) {
        rep.Add("STYLE-TYPENAME", Severity::kInfo, file.path, ty.line,
                "type '" + ty.name + "' is not UpperCamelCase");
      }
    }
    for (const auto& fn : file.functions) {
      if (fn.name == "<anonymous>" || StartsWith(fn.name, "operator") ||
          StartsWith(fn.name, "~")) {
        continue;
      }
      // Constructors share the (UpperCamelCase) type name — fine either way.
      if (!IsUpperCamelCase(fn.name) && !IsSnakeCase(fn.name) &&
          !IsMacroCase(fn.name)) {  // MACRO_CASE: test/registration macros
        rep.Add("STYLE-FUNCNAME", Severity::kInfo, file.path, fn.start_line,
                "function '" + fn.name +
                    "' is neither UpperCamelCase nor snake_case");
      }
    }
    for (const auto& g : file.globals) {
      if (g.is_const) {
        if (!IsConstantName(g.name) && !IsMacroCase(g.name)) {
          rep.Add("STYLE-CONSTNAME", Severity::kInfo, file.path, g.line,
                  "constant '" + g.name + "' is not kUpperCamelCase");
        }
      } else if (!IsSnakeCase(g.name)) {
        rep.Add("STYLE-VARNAME", Severity::kInfo, file.path, g.line,
                "variable '" + g.name + "' is not snake_case");
      }
    }
    for (const auto& m : file.macros) {
      if (!IsMacroCase(m.name)) {
        rep.Add("STYLE-MACRONAME", Severity::kInfo, file.path, m.line,
                "macro '" + m.name + "' is not MACRO_CASE");
      }
    }
  }

  if (options.is_header && !HasIncludeGuardOrPragmaOnce(file)) {
    rep.Add("STYLE-GUARD", Severity::kWarning, file.path, 1,
            "header has neither an include guard nor #pragma once");
  }

  result.stats.violations = static_cast<std::int64_t>(rep.findings.size());
  rep.entities_checked = result.stats.lines_checked;
  return result;
}

}  // namespace certkit::rules
