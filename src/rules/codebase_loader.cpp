#include "rules/codebase_loader.h"

#include <filesystem>
#include <map>

#include "ast/parser.h"
#include "support/io.h"

namespace certkit::rules {

namespace fs = std::filesystem;

support::Result<Codebase> LoadCodebase(const std::string& root,
                                       const LoadOptions& options) {
  auto files = support::ListFiles(root, options.extensions);
  if (!files.ok()) return files.status();

  std::map<std::string, std::vector<std::string>> by_module;
  for (const std::string& path : files.value()) {
    const fs::path rel = fs::relative(path, root);
    const std::string module = rel.has_parent_path()
                                   ? rel.begin()->string()
                                   : fs::path(root).filename().string();
    by_module[module].push_back(path);
  }

  Codebase out;
  ast::ParseOptions parse_opts;
  parse_opts.lex_options.keep_comments = true;
  for (auto& [module, paths] : by_module) {
    std::vector<ast::SourceFileModel> parsed;
    for (const std::string& path : paths) {
      auto content = support::ReadFile(path);
      if (!content.ok()) {
        out.skipped.push_back(path);
        continue;
      }
      auto model = ast::ParseSource(path, content.value(), parse_opts);
      if (!model.ok()) {
        out.skipped.push_back(path);
        continue;
      }
      out.raw_sources.push_back(
          RawSource{path, std::move(content).value()});
      out.traces.push_back(AnalyzeTraceability(model.value()));
      parsed.push_back(std::move(model).value());
    }
    if (!parsed.empty()) {
      out.modules.push_back(
          metrics::AnalyzeModule(module, std::move(parsed)));
    }
  }
  return out;
}

}  // namespace certkit::rules
