// certkit rules: a lexically checkable subset of MISRA C:2012 (plus C++/CUDA
// analogues), in the spirit of the paper's §3.1.2 "Use of language subsets".
//
// MISRA C:2012 stipulates 143 rules; a static checker without full semantic
// analysis can decide a meaningful subset of them. The rules implemented here
// are the ones the paper's observations rest on (dynamic memory, pointers,
// exits, jumps, recursion) plus the classic lexically decidable rules.
//
// Implemented rules:
//   MISRA-15.1   goto shall not be used
//   MISRA-15.5   single point of exit at the end of a function
//   MISRA-15.6   loop/selection bodies shall be compound statements
//   MISRA-16.1   switch: no implicit fallthrough between non-empty cases
//   MISRA-16.4   every switch shall have a default label
//   MISRA-17.2   functions shall not call themselves (direct recursion)
//   MISRA-19.2   the union keyword should not be used
//   MISRA-20.5   #undef should not be used
//   MISRA-21.3   stdlib dynamic memory shall not be used (malloc/free/...);
//                C++ new/delete and CUDA cudaMalloc/cudaFree are reported
//                under the same rule as dialect analogues
//   MISRA-21.6   standard I/O shall not be used (printf/scanf/...)
//   MISRA-11.4   cast-like conversions via C-style casts are flagged
//   MISRA-2.7    there should be no unused parameters
//   MISRA-D4.9   function-like macros should not be used (Directive 4.9)
//   MISRA-7.1    octal constants shall not be used
//   MISRA-13.3   floating-point values shall not be compared for equality
//                (classic guideline; flagged when == or != touches a
//                floating literal)
//   MISRA-17.1   the features of <stdarg.h> shall not be used (variadic
//                parameters)
#ifndef CERTKIT_RULES_MISRA_H_
#define CERTKIT_RULES_MISRA_H_

#include "ast/source_model.h"
#include "rules/finding.h"

namespace certkit::rules {

struct MisraOptions {
  // When true, C++ `new`/`delete` and CUDA `cudaMalloc`/`cudaFree`/`cudaNew`
  // count as dynamic-memory violations (rule 21.3 analogues).
  bool include_dialect_analogues = true;
  // When true, rule 2.7 (unused parameters) is checked; noisy on interface-
  // conforming callbacks, so it can be disabled.
  bool check_unused_params = true;
};

// Runs the MISRA subset over one parsed file. `entities_checked` counts
// function definitions.
CheckReport CheckMisra(const ast::SourceFileModel& file,
                       const MisraOptions& options = {});

// CUDA-dialect census for Observations 3–4: how device code uses pointers
// and dynamic memory (Figure 4 discussion).
struct CudaDialectStats {
  std::int32_t kernel_count = 0;        // __global__ functions
  std::int32_t device_fn_count = 0;     // __device__ functions
  std::int32_t kernel_pointer_params = 0;
  std::int32_t kernels_with_pointer_params = 0;
  std::int32_t cuda_malloc_calls = 0;   // cudaMalloc / cudaMallocManaged
  std::int32_t cuda_memcpy_calls = 0;
  std::int32_t cuda_free_calls = 0;
};

CudaDialectStats AnalyzeCudaDialect(const ast::SourceFileModel& file);

}  // namespace certkit::rules

#endif  // CERTKIT_RULES_MISRA_H_
