#include "rules/traceability.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace certkit::rules {

std::vector<std::string> ExtractRequirementTags(std::string_view text) {
  std::vector<std::string> tags;
  std::size_t pos = 0;
  while ((pos = text.find("REQ-", pos)) != std::string_view::npos) {
    // The tag must not be a suffix of a longer identifier (e.g. FOO_REQ-).
    if (pos > 0) {
      const char before = text[pos - 1];
      if (std::isalnum(static_cast<unsigned char>(before)) ||
          before == '_' || before == '-') {
        pos += 4;
        continue;
      }
    }
    std::size_t end = pos + 4;
    while (end < text.size() &&
           (std::isupper(static_cast<unsigned char>(text[end])) ||
            std::isdigit(static_cast<unsigned char>(text[end])) ||
            text[end] == '-')) {
      ++end;
    }
    // Trim trailing dashes (punctuation like "REQ-X-").
    std::size_t trimmed = end;
    while (trimmed > pos + 4 && text[trimmed - 1] == '-') --trimmed;
    if (trimmed > pos + 4) {
      tags.emplace_back(text.substr(pos, trimmed - pos));
    }
    pos = end;
  }
  return tags;
}

TraceReport AnalyzeTraceability(const ast::SourceFileModel& file) {
  TraceReport report;
  report.functions_total = static_cast<std::int64_t>(file.functions.size());

  // Functions sorted by start line (parser emits them in order, but be
  // defensive).
  std::vector<const ast::FunctionModel*> fns;
  fns.reserve(file.functions.size());
  for (const auto& fn : file.functions) fns.push_back(&fn);
  std::sort(fns.begin(), fns.end(),
            [](const ast::FunctionModel* a, const ast::FunctionModel* b) {
              return a->start_line < b->start_line;
            });

  std::set<std::string> traced;
  for (const auto& comment : file.lexed.comments) {
    const auto tags = ExtractRequirementTags(comment.text);
    if (tags.empty()) continue;
    // Link to the function whose span contains the comment line, or else
    // the next function starting at/after it.
    const ast::FunctionModel* target = nullptr;
    for (const ast::FunctionModel* fn : fns) {
      if (comment.line >= fn->start_line && comment.line <= fn->end_line) {
        target = fn;
        break;
      }
      if (fn->start_line >= comment.line) {
        target = fn;
        break;
      }
    }
    for (const auto& tag : tags) {
      RequirementLink link;
      link.requirement = tag;
      link.file = file.path;
      link.comment_line = comment.line;
      if (target != nullptr) {
        link.function = target->qualified_name;
        traced.insert(target->qualified_name);
      }
      report.links.push_back(std::move(link));
    }
  }

  for (const auto& fn : file.functions) {
    if (!traced.contains(fn.qualified_name)) {
      report.untraced_functions.push_back(fn.qualified_name);
    }
  }
  return report;
}

TraceReport MergeTraceReports(const std::vector<TraceReport>& reports) {
  TraceReport merged;
  for (const auto& r : reports) {
    merged.functions_total += r.functions_total;
    merged.links.insert(merged.links.end(), r.links.begin(), r.links.end());
    merged.untraced_functions.insert(merged.untraced_functions.end(),
                                     r.untraced_functions.begin(),
                                     r.untraced_functions.end());
  }
  return merged;
}

std::vector<std::string> TraceReport::Requirements() const {
  std::set<std::string> unique;
  for (const auto& link : links) unique.insert(link.requirement);
  return {unique.begin(), unique.end()};
}

}  // namespace certkit::rules
