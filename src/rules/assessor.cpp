#include "rules/assessor.h"

#include <unordered_map>

#include "support/strings.h"

namespace certkit::rules {

namespace {

using support::FormatDouble;

std::string Num(std::int64_t v) { return std::to_string(v); }

}  // namespace

void AccumulateStyle(const StyleResult& result,
                     const ast::SourceFileModel& file, StyleStats* style_total,
                     StyleStats* naming_total) {
  style_total->lines_checked += result.stats.lines_checked;
  style_total->violations += result.stats.violations;
  for (const auto& f : result.report.findings) {
    if (support::StartsWith(f.rule_id, "STYLE-") &&
        support::Contains(f.rule_id, "NAME")) {
      ++naming_total->violations;
    }
  }
  naming_total->lines_checked += static_cast<std::int64_t>(
      file.types.size() + file.functions.size() + file.globals.size() +
      file.macros.size());
}

void MergeDefensive(DefensiveResult part, DefensiveResult* total) {
  total->stats.functions_with_params += part.stats.functions_with_params;
  total->stats.functions_validating_inputs +=
      part.stats.functions_validating_inputs;
  total->stats.call_sites_checked += part.stats.call_sites_checked;
  total->stats.discarded_results += part.stats.discarded_results;
  total->stats.assertion_sites += part.stats.assertion_sites;
  for (auto& f : part.report.findings) {
    total->report.findings.push_back(std::move(f));
  }
  total->report.entities_checked += part.report.entities_checked;
}

AssessorInputs ComputeAssessorInputs(
    const std::vector<metrics::ModuleAnalysis>& modules,
    const std::vector<RawSource>* raw_sources) {
  AssessorInputs in;
  in.modules = &modules;

  std::unordered_map<std::string, const std::string*> raw_by_path;
  if (raw_sources != nullptr) {
    for (const auto& rs : *raw_sources) raw_by_path[rs.path] = &rs.text;
  }

  for (const auto& mod : modules) {
    in.unit_design.push_back(AnalyzeUnitDesign(mod));
    in.total_functions += mod.metrics.function_count;
    in.total_nloc += mod.metrics.nloc;
    for (const auto& file : mod.files) {
      in.total_casts += static_cast<std::int64_t>(file.casts.size());
      in.misra_reports.push_back(CheckMisra(file));
      auto it = raw_by_path.find(file.path);
      if (it != raw_by_path.end()) {
        StyleResult sr = CheckStyle(file, *it->second);
        AccumulateStyle(sr, file, &in.style_total, &in.naming_total);
      }
    }
  }
  // Defensive analysis groups by module (cross-module name resolution adds
  // little and copying file models is heavy).
  for (const auto& mod : modules) {
    MergeDefensive(AnalyzeDefensive(mod.files), &in.defensive);
  }
  return in;
}

Assessor::Assessor(AssessorInputs inputs, const AssessorThresholds& thresholds)
    : inputs_(std::move(inputs)), thresholds_(thresholds) {
  architecture_ = metrics::AnalyzeArchitecture(
      *inputs_.modules,
      metrics::ArchitectureLimits{thresholds_.max_component_nloc,
                                  thresholds_.max_params, 20});
}

Assessor::Assessor(const std::vector<metrics::ModuleAnalysis>* modules,
                   const std::vector<RawSource>* raw_sources,
                   const AssessorThresholds& thresholds)
    : Assessor(ComputeAssessorInputs(*modules, raw_sources), thresholds) {}

std::int64_t Assessor::functions_cc_over(int threshold) const {
  std::int64_t n = 0;
  for (const auto& mod : *inputs_.modules) {
    n += mod.metrics.FunctionsOverCc(threshold);
  }
  return n;
}

TableAssessment Assessor::AssessCodingGuidelines() {
  TableAssessment out;
  out.table_id = CodingGuidelinesTable().id;

  // Row 1: enforcement of low complexity (Observation 1).
  {
    const std::int64_t over10 = functions_cc_over(10);
    const double fraction =
        inputs_.total_functions > 0
            ? static_cast<double>(over10) / static_cast<double>(inputs_.total_functions)
            : 0.0;
    Verdict v = over10 == 0 ? Verdict::kCompliant
                : fraction <= thresholds_.cc_over10_partial_fraction
                    ? Verdict::kPartial
                    : Verdict::kNonCompliant;
    out.assessments.push_back(
        {"1", v,
         Num(over10) + " of " + Num(inputs_.total_functions) +
             " functions have cyclomatic complexity > 10 (" +
             FormatDouble(100.0 * fraction, 1) + "%)",
         1});
  }

  // Row 2: use language subsets (Observation 2; Obs. 3–4 for GPU code).
  {
    std::int64_t required_violations = 0, total_violations = 0;
    for (const auto& rep : inputs_.misra_reports) {
      for (const auto& f : rep.findings) {
        ++total_violations;
        if (f.severity == Severity::kRequired) ++required_violations;
      }
    }
    Verdict v = total_violations == 0 ? Verdict::kCompliant
                : required_violations == 0 ? Verdict::kPartial
                                           : Verdict::kNonCompliant;
    out.assessments.push_back(
        {"2", v,
         Num(total_violations) + " MISRA-subset violations (" +
             Num(required_violations) + " of required rules); no language "
             "subset exists for the GPU dialect",
         2});
  }

  // Row 3: strong typing (Observation 5).
  {
    const double per_knloc =
        inputs_.total_nloc > 0 ? 1000.0 * static_cast<double>(inputs_.total_casts) /
                              static_cast<double>(inputs_.total_nloc)
                        : 0.0;
    Verdict v = inputs_.total_casts == 0 ? Verdict::kCompliant
                : per_knloc <= thresholds_.casts_per_knloc_partial
                    ? Verdict::kPartial
                    : Verdict::kNonCompliant;
    out.assessments.push_back(
        {"3", v,
         Num(inputs_.total_casts) + " explicit casts (" +
             FormatDouble(per_knloc, 2) + " per kNLOC)",
         5});
  }

  // Row 4: defensive implementation (Observation 6).
  {
    const double ratio = inputs_.defensive.stats.InputValidationRatio();
    Verdict v = ratio >= thresholds_.defensive_compliant_ratio
                    ? Verdict::kCompliant
                : ratio >= thresholds_.defensive_partial_ratio
                    ? Verdict::kPartial
                    : Verdict::kNonCompliant;
    out.assessments.push_back(
        {"4", v,
         FormatDouble(100.0 * ratio, 1) +
             "% of parameterized functions validate inputs; " +
             Num(inputs_.defensive.stats.discarded_results) +
             " call sites discard non-void results",
         6});
  }

  // Row 5: established design principles (Observation 7).
  {
    std::int64_t mutable_globals = 0;
    for (const auto& ud : inputs_.unit_design) {
      mutable_globals += ud.stats.mutable_globals;
    }
    Verdict v = mutable_globals == 0 ? Verdict::kCompliant
                : mutable_globals <= 20 ? Verdict::kPartial
                                        : Verdict::kNonCompliant;
    out.assessments.push_back(
        {"5", v, Num(mutable_globals) + " mutable file-scope variables", 7});
  }

  // Row 6: unambiguous graphical representation — N/A for C/C++ source.
  out.assessments.push_back(
      {"6", Verdict::kNotApplicable,
       "not applicable: the framework is written in C/C++, not in a "
       "graphical modeling language",
       0});

  // Row 7: style guides (Observation 8).
  {
    const double ratio = inputs_.style_total.ComplianceRatio();
    Verdict v = ratio >= thresholds_.style_compliant_ratio
                    ? Verdict::kCompliant
                    : Verdict::kPartial;
    out.assessments.push_back(
        {"7", v,
         "style compliance " + FormatDouble(100.0 * ratio, 1) + "% (" +
             Num(inputs_.style_total.violations) + " findings over " +
             Num(inputs_.style_total.lines_checked) + " checked entities)",
         8});
  }

  // Row 8: naming conventions (Observation 9).
  {
    const double ratio =
        inputs_.naming_total.lines_checked > 0
            ? 1.0 - static_cast<double>(inputs_.naming_total.violations) /
                        static_cast<double>(inputs_.naming_total.lines_checked)
            : 1.0;
    Verdict v = ratio >= thresholds_.style_compliant_ratio
                    ? Verdict::kCompliant
                    : Verdict::kPartial;
    out.assessments.push_back(
        {"8", v,
         "naming compliance " + FormatDouble(100.0 * ratio, 1) + "% (" +
             Num(inputs_.naming_total.violations) + " of " +
             Num(inputs_.naming_total.lines_checked) + " named declarations)",
         9});
  }
  return out;
}

TableAssessment Assessor::AssessArchitecture() {
  TableAssessment out;
  out.table_id = ArchitecturalDesignTable().id;

  // Row 1: hierarchical structure.
  {
    std::int64_t cross_edges = 0;
    for (const auto& c : architecture_.coupling) {
      cross_edges += c.external_calls;
    }
    out.assessments.push_back(
        {"1", inputs_.modules->size() > 1 ? Verdict::kPartial : Verdict::kNonCompliant,
         Num(static_cast<std::int64_t>(inputs_.modules->size())) +
             " top-level components, " + Num(cross_edges) +
             " cross-component call edges; hierarchy derivable by tooling",
         13});
  }

  // Row 2: restricted size of components (Observation 13).
  {
    std::int64_t oversize = 0;
    std::int64_t max_nloc = 0;
    for (const auto& m : architecture_.sizes) {
      if (m.nloc > thresholds_.max_component_nloc) ++oversize;
      if (m.nloc > max_nloc) max_nloc = m.nloc;
    }
    Verdict v = oversize == 0 ? Verdict::kCompliant : Verdict::kNonCompliant;
    out.assessments.push_back(
        {"2", v,
         Num(oversize) + " of " +
             Num(static_cast<std::int64_t>(architecture_.sizes.size())) +
             " components exceed " + Num(thresholds_.max_component_nloc) +
             " NLOC (largest: " + Num(max_nloc) + ")",
         13});
  }

  // Row 3: restricted size of interfaces.
  {
    std::int64_t wide = 0;
    std::int32_t max_params = 0;
    for (const auto& i : architecture_.interfaces) {
      wide += i.functions_over_param_limit;
      if (i.max_params > max_params) max_params = i.max_params;
    }
    Verdict v = wide == 0 ? Verdict::kCompliant
                : wide <= inputs_.total_functions / 50 ? Verdict::kPartial
                                                : Verdict::kNonCompliant;
    out.assessments.push_back(
        {"3", v,
         Num(wide) + " functions exceed " + Num(thresholds_.max_params) +
             " parameters (max " + Num(max_params) + ")",
         13});
  }

  // Rows 4–5: cohesion / coupling.
  {
    double min_cohesion = 1.0;
    std::int32_t max_efferent = 0;
    for (const auto& c : architecture_.coupling) {
      if (c.cohesion < min_cohesion) min_cohesion = c.cohesion;
      if (c.efferent_modules > max_efferent) {
        max_efferent = c.efferent_modules;
      }
    }
    Verdict v4 = min_cohesion >= thresholds_.cohesion_compliant
                     ? Verdict::kCompliant
                 : min_cohesion >= thresholds_.cohesion_partial
                     ? Verdict::kPartial
                     : Verdict::kNonCompliant;
    out.assessments.push_back(
        {"4", v4,
         "minimum component cohesion " + FormatDouble(min_cohesion, 2) +
             " (intra-component call fraction)",
         13});
    Verdict v5 = max_efferent <= thresholds_.max_efferent_modules
                     ? Verdict::kCompliant
                     : Verdict::kPartial;
    out.assessments.push_back(
        {"5", v5,
         "maximum efferent coupling " + Num(max_efferent) +
             " components (limit " + Num(thresholds_.max_efferent_modules) +
             ")",
         13});
  }

  // Row 6: scheduling properties — not statically assessable from source.
  out.assessments.push_back(
      {"6", Verdict::kNotApplicable,
       "not statically assessable: requires the deployed task/executor "
       "configuration, not source text",
       0});

  // Row 7: restricted use of interrupts.
  {
    std::int64_t interrupt_constructs = 0;
    for (const auto& mod : *inputs_.modules) {
      for (const auto& file : mod.files) {
        for (const auto& fn : file.functions) {
          if (support::Contains(fn.name, "signal_handler") ||
              support::Contains(fn.name, "interrupt") ||
              support::Contains(fn.name, "isr_")) {
            ++interrupt_constructs;
          }
        }
        for (const auto& t : file.lexed.tokens) {
          if (t.IsIdentifier() &&
              (t.text == "signal" || t.text == "sigaction")) {
            ++interrupt_constructs;
          }
        }
      }
    }
    out.assessments.push_back(
        {"7",
         interrupt_constructs == 0 ? Verdict::kCompliant : Verdict::kPartial,
         Num(interrupt_constructs) + " interrupt/signal-handling constructs",
         0});
  }
  return out;
}

TableAssessment Assessor::AssessUnitDesign() {
  TableAssessment out;
  out.table_id = UnitDesignTable().id;

  UnitDesignStats total;
  for (const auto& ud : inputs_.unit_design) {
    const UnitDesignStats& s = ud.stats;
    total.functions_total += s.functions_total;
    total.functions_multi_exit += s.functions_multi_exit;
    total.dynamic_alloc_sites += s.dynamic_alloc_sites;
    total.uninitialized_locals += s.uninitialized_locals;
    total.shadowing_decls += s.shadowing_decls;
    total.mutable_globals += s.mutable_globals;
    total.const_globals += s.const_globals;
    total.pointer_params += s.pointer_params;
    total.pointer_derefs += s.pointer_derefs;
    total.explicit_casts += s.explicit_casts;
    total.global_write_sites += s.global_write_sites;
    total.goto_statements += s.goto_statements;
    total.recursive_functions_direct += s.recursive_functions_direct;
    total.recursion_cycles_indirect += s.recursion_cycles_indirect;
  }

  const double knloc =
      inputs_.total_nloc > 0 ? static_cast<double>(inputs_.total_nloc) / 1000.0 : 1.0;
  auto rate_verdict = [&](std::int64_t count) {
    if (count == 0) return Verdict::kCompliant;
    return (static_cast<double>(count) / knloc) <=
                   thresholds_.unit_partial_rate_per_knloc
               ? Verdict::kPartial
               : Verdict::kNonCompliant;
  };

  out.assessments.push_back(
      {"1",
       total.functions_multi_exit == 0 ? Verdict::kCompliant
       : total.MultiExitFraction() <= 0.05 ? Verdict::kPartial
                                           : Verdict::kNonCompliant,
       FormatDouble(100.0 * total.MultiExitFraction(), 1) +
           "% of functions have multiple exit points (" +
           Num(total.functions_multi_exit) + " of " +
           Num(total.functions_total) + ")",
       14});
  out.assessments.push_back(
      {"2", rate_verdict(total.dynamic_alloc_sites),
       Num(total.dynamic_alloc_sites) + " dynamic allocation sites "
       "(new/malloc/cudaMalloc)",
       14});
  out.assessments.push_back(
      {"3", rate_verdict(total.uninitialized_locals),
       Num(total.uninitialized_locals) + " uninitialized scalar locals", 14});
  out.assessments.push_back(
      {"4", rate_verdict(total.shadowing_decls),
       Num(total.shadowing_decls) + " locals reuse an existing name", 14});
  out.assessments.push_back(
      {"5", rate_verdict(total.mutable_globals),
       Num(total.mutable_globals) + " mutable globals (" +
           Num(total.const_globals) + " const)",
       14});
  out.assessments.push_back(
      {"6", rate_verdict(total.pointer_params),
       Num(total.pointer_params) + " pointer parameters, " +
           Num(total.pointer_derefs) + " -> dereferences",
       14});
  out.assessments.push_back(
      {"7", rate_verdict(total.explicit_casts),
       Num(total.explicit_casts) + " explicit conversions (implicit "
       "conversions not lexically decidable)",
       14});
  out.assessments.push_back(
      {"8", rate_verdict(total.global_write_sites),
       Num(total.global_write_sites) + " writes to file-scope state from "
       "function bodies",
       14});
  out.assessments.push_back(
      {"9",
       total.goto_statements == 0 ? Verdict::kCompliant
                                  : Verdict::kNonCompliant,
       Num(total.goto_statements) + " unconditional jumps (goto)", 14});
  out.assessments.push_back(
      {"10",
       (total.recursive_functions_direct + total.recursion_cycles_indirect) ==
               0
           ? Verdict::kCompliant
           : Verdict::kPartial,
       Num(total.recursive_functions_direct) + " directly recursive "
           "functions, " +
           Num(total.recursion_cycles_indirect) + " indirect cycles",
       14});
  return out;
}

}  // namespace certkit::rules
