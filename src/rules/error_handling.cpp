#include "rules/error_handling.h"

#include <unordered_set>

#include "support/strings.h"

namespace certkit::rules {

namespace {

using lex::Token;
using lex::TokenKind;

constexpr Recommendation kOO = Recommendation::kNone;
constexpr Recommendation kR = Recommendation::kRecommended;
constexpr Recommendation kHR = Recommendation::kHighlyRecommended;

bool IsAssertName(std::string_view name) {
  static const std::unordered_set<std::string_view> kSet = {
      "assert", "static_assert", "CHECK", "DCHECK", "ACHECK",
      "CERTKIT_CHECK", "CERTKIT_CHECK_MSG", "CHECK_NOTNULL", "ASSERT"};
  return kSet.contains(name);
}

bool ContainsInsensitive(std::string_view haystack, const char* needle) {
  return support::Contains(support::ToLower(haystack), needle);
}

bool IsStatusReturnType(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t lparen, const std::string& fn_name) {
  // Scan declarator tokens before the function name for a status-like type.
  for (std::size_t i = begin; i < lparen; ++i) {
    if (!toks[i].IsIdentifier()) continue;
    if (toks[i].text == fn_name) break;  // reached the name
    const std::string lower = support::ToLower(toks[i].text);
    if (lower == "status" || lower == "result" || lower == "error" ||
        lower == "errc" || lower == "expected" || lower == "outcome") {
      return true;
    }
  }
  return false;
}

}  // namespace

ErrorHandlingStats AnalyzeErrorHandling(const ast::SourceFileModel& file) {
  ErrorHandlingStats s;
  const auto& toks = file.lexed.tokens;
  s.functions_total = static_cast<std::int64_t>(file.functions.size());

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.IsKeyword("try")) ++s.try_blocks;
    if (t.IsKeyword("throw")) ++s.throw_sites;
    if (t.IsKeyword("catch")) {
      ++s.catch_handlers;
      // catch ( ... )
      if (i + 2 < toks.size() && toks[i + 1].IsPunct("(") &&
          toks[i + 2].IsPunct("...")) {
        ++s.catch_all_handlers;
      }
    }
    if (t.IsIdentifier() && i + 1 < toks.size() &&
        toks[i + 1].IsPunct("(")) {
      if (IsAssertName(t.text)) ++s.assertion_sites;
      if (ContainsInsensitive(t.text, "checksum") ||
          ContainsInsensitive(t.text, "crc")) {
        ++s.checksum_sites;
      }
    }
    if (t.IsIdentifier() &&
        (ContainsInsensitive(t.text, "fallback") ||
         ContainsInsensitive(t.text, "degraded") ||
         ContainsInsensitive(t.text, "emergency") ||
         ContainsInsensitive(t.text, "failsafe"))) {
      ++s.degradation_sites;
    }
  }

  for (const auto& fn : file.functions) {
    if (IsStatusReturnType(toks, fn.sig_begin, fn.lparen, fn.name)) {
      ++s.status_returning_functions;
    }
  }
  return s;
}

ErrorHandlingStats MergeErrorHandling(
    const std::vector<ErrorHandlingStats>& parts) {
  ErrorHandlingStats total;
  for (const auto& p : parts) {
    total.functions_total += p.functions_total;
    total.try_blocks += p.try_blocks;
    total.catch_handlers += p.catch_handlers;
    total.catch_all_handlers += p.catch_all_handlers;
    total.throw_sites += p.throw_sites;
    total.assertion_sites += p.assertion_sites;
    total.status_returning_functions += p.status_returning_functions;
    total.checksum_sites += p.checksum_sites;
    total.degradation_sites += p.degradation_sites;
  }
  return total;
}

const TechniqueTable& ErrorDetectionTable() {
  static const TechniqueTable kTable = {
      "ISO26262-6:Table4",
      "Mechanisms for error detection at the SW architectural level "
      "(ISO26262_6 Table 4)",
      {
          {"1", "Range checks of input and output data", {kHR, kHR, kHR, kHR}},
          {"2", "Plausibility check", {kR, kR, kR, kHR}},
          {"3", "Detection of data errors", {kR, kR, kR, kR}},
          {"4", "External monitoring facility", {kOO, kR, kR, kHR}},
          {"5", "Control flow monitoring", {kOO, kR, kHR, kHR}},
          {"6", "Diverse software design", {kOO, kOO, kR, kHR}},
      },
  };
  return kTable;
}

const TechniqueTable& ErrorHandlingTable() {
  static const TechniqueTable kTable = {
      "ISO26262-6:Table5",
      "Mechanisms for error handling at the SW architectural level "
      "(ISO26262_6 Table 5)",
      {
          {"1", "Static recovery mechanism", {kR, kR, kR, kR}},
          {"2", "Graceful degradation", {kR, kR, kHR, kHR}},
          {"3", "Independent parallel redundancy", {kOO, kOO, kR, kHR}},
          {"4", "Correcting codes for data", {kR, kR, kR, kR}},
      },
  };
  return kTable;
}

TableAssessment AssessErrorDetection(const ErrorHandlingStats& s) {
  TableAssessment out;
  out.table_id = ErrorDetectionTable().id;
  const std::string density =
      support::FormatDouble(s.AssertionDensityPerFunction(), 2);

  // Row 1: range checks — proxied by assertion-family density.
  out.assessments.push_back(
      {"1",
       s.assertion_sites == 0                        ? Verdict::kNonCompliant
       : s.AssertionDensityPerFunction() >= 0.25 ? Verdict::kCompliant
                                                 : Verdict::kPartial,
       std::to_string(s.assertion_sites) + " assertion sites (" + density +
           " per function)",
       6});
  // Row 2: plausibility checks — same family of evidence.
  out.assessments.push_back(
      {"2",
       s.assertion_sites > 0 ? Verdict::kPartial : Verdict::kNonCompliant,
       "plausibility checking proxied by the assertion census", 6});
  // Row 3: data-error detection.
  out.assessments.push_back(
      {"3",
       s.checksum_sites > 0 ? Verdict::kPartial : Verdict::kNonCompliant,
       std::to_string(s.checksum_sites) + " checksum/CRC call sites", 0});
  // Rows 4–5: not decidable from source text.
  out.assessments.push_back(
      {"4", Verdict::kNotApplicable,
       "external monitoring requires the deployed E/E architecture", 0});
  out.assessments.push_back(
      {"5", Verdict::kNotApplicable,
       "control flow monitoring requires runtime/hardware support evidence",
       0});
  // Row 6: diverse design — not decidable lexically.
  out.assessments.push_back(
      {"6", Verdict::kNotApplicable,
       "design diversity is a process property, not a source-text one", 0});
  return out;
}

TableAssessment AssessErrorHandling(const ErrorHandlingStats& s) {
  TableAssessment out;
  out.table_id = ErrorHandlingTable().id;
  // Row 1: static recovery — exception handling with catch handlers.
  out.assessments.push_back(
      {"1",
       s.catch_handlers > 0 ? Verdict::kPartial : Verdict::kNonCompliant,
       std::to_string(s.try_blocks) + " try blocks, " +
           std::to_string(s.catch_handlers) + " catch handlers (" +
           std::to_string(s.catch_all_handlers) + " catch-all)",
       7});
  // Row 2: graceful degradation.
  out.assessments.push_back(
      {"2",
       s.degradation_sites > 0 ? Verdict::kPartial : Verdict::kNonCompliant,
       std::to_string(s.degradation_sites) +
           " fallback/degraded/emergency code sites",
       0});
  // Row 3: redundancy — not decidable from one source tree.
  out.assessments.push_back(
      {"3", Verdict::kNotApplicable,
       "parallel redundancy is a system-level deployment property", 0});
  // Row 4: correcting codes.
  out.assessments.push_back(
      {"4",
       s.checksum_sites > 0 ? Verdict::kPartial : Verdict::kNonCompliant,
       std::to_string(s.checksum_sites) +
           " data-integrity (checksum/CRC) call sites",
       0});
  return out;
}

}  // namespace certkit::rules
