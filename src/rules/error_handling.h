// certkit rules: error-detection and error-handling mechanism census
// (ISO 26262-6 Table 4 "mechanisms for error detection" and Table 5
// "mechanisms for error handling" at the software architectural level).
//
// The paper touches these through §3.1.4 (defensive implementation) and
// §3.1.5 ("the code properly uses C++ exception handling in most of the
// cases"). This analyzer counts the structural evidence:
//   * range/plausibility checking — assertion-family call sites and
//     parameter-referencing guards (shared with the defensive analyzer);
//   * exception handling — try blocks, catch handlers, throw sites, and
//     catch-all handlers;
//   * status-code discipline — functions whose declared return type is a
//     Status/Result/error-code type;
//   * data-integrity mechanisms — checksum/CRC call sites;
//   * graceful degradation — named fallback/degraded/emergency paths.
#ifndef CERTKIT_RULES_ERROR_HANDLING_H_
#define CERTKIT_RULES_ERROR_HANDLING_H_

#include <vector>

#include "ast/source_model.h"
#include "rules/iso26262.h"

namespace certkit::rules {

struct ErrorHandlingStats {
  std::int64_t functions_total = 0;
  std::int64_t try_blocks = 0;
  std::int64_t catch_handlers = 0;
  std::int64_t catch_all_handlers = 0;  // catch (...)
  std::int64_t throw_sites = 0;
  std::int64_t assertion_sites = 0;     // assert/CHECK family
  std::int64_t status_returning_functions = 0;
  std::int64_t checksum_sites = 0;      // checksum/crc identifiers
  std::int64_t degradation_sites = 0;   // fallback/degraded/emergency names

  double AssertionDensityPerFunction() const {
    return functions_total > 0
               ? static_cast<double>(assertion_sites) /
                     static_cast<double>(functions_total)
               : 0.0;
  }
};

// Counts the mechanisms in one parsed file.
ErrorHandlingStats AnalyzeErrorHandling(const ast::SourceFileModel& file);
// Element-wise sum.
ErrorHandlingStats MergeErrorHandling(
    const std::vector<ErrorHandlingStats>& parts);

// ISO 26262-6 Table 4 (error detection) and Table 5 (error handling).
const TechniqueTable& ErrorDetectionTable();
const TechniqueTable& ErrorHandlingTable();

// Assesses the two tables against measured mechanism counts. Techniques
// that cannot be decided from source text (external monitoring, control
// flow monitoring hardware) are marked not-applicable with an explanation.
TableAssessment AssessErrorDetection(const ErrorHandlingStats& stats);
TableAssessment AssessErrorHandling(const ErrorHandlingStats& stats);

}  // namespace certkit::rules

#endif  // CERTKIT_RULES_ERROR_HANDLING_H_
