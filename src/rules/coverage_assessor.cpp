#include "rules/coverage_assessor.h"

#include "support/check.h"
#include "support/strings.h"

namespace certkit::rules {

namespace {

Verdict VerdictFor(double coverage, const CoverageThresholds& t) {
  if (coverage >= t.compliant) return Verdict::kCompliant;
  if (coverage >= t.partial) return Verdict::kPartial;
  return Verdict::kNonCompliant;
}

std::string Evidence(const char* metric, double value) {
  return std::string(metric) + " coverage " +
         support::FormatDouble(100.0 * value, 1) + "%";
}

}  // namespace

TableAssessment AssessUnitCoverage(const std::vector<cov::CoverageRow>& rows,
                                   const CoverageThresholds& thresholds) {
  const cov::CoverageRow avg = cov::Average(rows);
  TableAssessment out;
  out.table_id = UnitCoverageTable().id;
  out.assessments.push_back({"1", VerdictFor(avg.statement, thresholds),
                             Evidence("statement", avg.statement), 10});
  out.assessments.push_back({"2", VerdictFor(avg.branch, thresholds),
                             Evidence("branch", avg.branch), 10});
  out.assessments.push_back({"3", VerdictFor(avg.mcdc, thresholds),
                             Evidence("MC/DC", avg.mcdc), 10});
  return out;
}

TableAssessment AssessIntegrationCoverage(
    double function_coverage, double call_coverage,
    const CoverageThresholds& thresholds) {
  CERTKIT_CHECK(function_coverage >= 0.0 && function_coverage <= 1.0);
  CERTKIT_CHECK(call_coverage >= 0.0 && call_coverage <= 1.0);
  TableAssessment out;
  out.table_id = IntegrationCoverageTable().id;
  out.assessments.push_back({"1", VerdictFor(function_coverage, thresholds),
                             Evidence("function", function_coverage), 0});
  out.assessments.push_back({"2", VerdictFor(call_coverage, thresholds),
                             Evidence("call", call_coverage), 0});
  return out;
}

bool MeetsAsil(const TechniqueTable& table, const TableAssessment& assessment,
               Asil asil) {
  CERTKIT_CHECK(table.techniques.size() == assessment.assessments.size());
  for (std::size_t i = 0; i < table.techniques.size(); ++i) {
    if (!Satisfies(assessment.assessments[i].verdict,
                   table.techniques[i].At(asil))) {
      return false;
    }
  }
  return true;
}

}  // namespace certkit::rules
