// certkit rules: assessing measured structural coverage against the
// ISO 26262-6 coverage tables (the normative backdrop of the paper's §3.2:
// "ISO 26262 does not specify a particular coverage figure; its parent
// standard IEC 61508 recommends 100% coverage for all metrics. In ISO 26262,
// either branch or code statement are highly recommended for all ASIL").
#ifndef CERTKIT_RULES_COVERAGE_ASSESSOR_H_
#define CERTKIT_RULES_COVERAGE_ASSESSOR_H_

#include <vector>

#include "coverage/coverage.h"
#include "rules/iso26262.h"

namespace certkit::rules {

struct CoverageThresholds {
  // IEC 61508 recommends 100%; an agreed rationale can justify less. The
  // partial band reflects "high but incomplete with documented gaps".
  double compliant = 0.999;
  double partial = 0.80;
};

// Assesses ISO 26262-6 Table 10 (statement/branch/MC/DC) against the
// uniform average of the measured per-unit rows.
TableAssessment AssessUnitCoverage(const std::vector<cov::CoverageRow>& rows,
                                   const CoverageThresholds& thresholds = {});

// Assesses ISO 26262-6 Table 12 (function/call coverage) against measured
// architectural-level figures.
TableAssessment AssessIntegrationCoverage(
    double function_coverage, double call_coverage,
    const CoverageThresholds& thresholds = {});

// True when every technique of `table` that is highly recommended at `asil`
// is satisfied by the corresponding assessment verdict.
bool MeetsAsil(const TechniqueTable& table, const TableAssessment& assessment,
               Asil asil);

}  // namespace certkit::rules

#endif  // CERTKIT_RULES_COVERAGE_ASSESSOR_H_
