// certkit rules: defensive-implementation analysis (ISO 26262-6 Table 1
// row 4; the paper's §3.1.4 and Observation 6).
//
// The standard asks that software behave predictably on unexpected inputs:
// functions should validate their parameters, and callers should handle all
// possible return values. Both properties are approximated structurally:
//  * a function "validates its inputs" when its body contains an assertion
//    or an `if` whose condition references a parameter before any other use
//    of that parameter in a computation — detected as an assert/CHECK-family
//    call or `if (...)` whose parenthesized condition names a parameter;
//  * a call "discards the result" when a known non-void function is invoked
//    as a whole expression statement.
#ifndef CERTKIT_RULES_DEFENSIVE_H_
#define CERTKIT_RULES_DEFENSIVE_H_

#include <vector>

#include "ast/source_model.h"
#include "rules/finding.h"

namespace certkit::rules {

struct DefensiveStats {
  std::int64_t functions_with_params = 0;
  std::int64_t functions_validating_inputs = 0;
  std::int64_t call_sites_checked = 0;    // statement-level calls seen
  std::int64_t discarded_results = 0;     // non-void results ignored
  std::int64_t assertion_sites = 0;       // assert/CHECK-family calls

  double InputValidationRatio() const {
    return functions_with_params > 0
               ? static_cast<double>(functions_validating_inputs) /
                     static_cast<double>(functions_with_params)
               : 1.0;
  }
  double ResultUseRatio() const {
    return call_sites_checked > 0
               ? 1.0 - static_cast<double>(discarded_results) /
                           static_cast<double>(call_sites_checked)
               : 1.0;
  }
};

struct DefensiveResult {
  DefensiveStats stats;
  CheckReport report;  // rule ids "DEF-INPUT", "DEF-RESULT"
};

// Analyzes files as a group so that non-void functions defined in one file
// are known at call sites in another.
DefensiveResult AnalyzeDefensive(
    const std::vector<ast::SourceFileModel>& files);

}  // namespace certkit::rules

#endif  // CERTKIT_RULES_DEFENSIVE_H_
