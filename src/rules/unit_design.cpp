#include "rules/unit_design.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/check.h"
#include "support/strings.h"

namespace certkit::rules {

namespace {

using lex::Token;
using lex::TokenKind;

bool IsScalarTypeKeyword(const Token& t) {
  if (t.kind != TokenKind::kKeyword) return false;
  static const std::unordered_set<std::string_view> kSet = {
      "int",  "float", "double", "char", "long",
      "short", "bool",  "unsigned", "signed", "wchar_t"};
  return kSet.contains(t.text);
}

bool IsAllocName(std::string_view name) {
  static const std::unordered_set<std::string_view> kSet = {
      "malloc", "calloc", "realloc", "aligned_alloc",
      "cudaMalloc", "cudaMallocManaged", "cudaMallocHost"};
  return kSet.contains(name);
}

// Tarjan's strongly-connected-components algorithm, iterative to be safe on
// large call graphs.
class TarjanScc {
 public:
  explicit TarjanScc(const std::vector<std::vector<int>>& adj)
      : adj_(adj), n_(static_cast<int>(adj.size())) {
    index_.assign(n_, -1);
    lowlink_.assign(n_, 0);
    on_stack_.assign(n_, false);
  }

  std::vector<std::vector<int>> Run() {
    for (int v = 0; v < n_; ++v) {
      if (index_[v] == -1) Strongconnect(v);
    }
    return sccs_;
  }

 private:
  struct Frame {
    int v;
    std::size_t edge = 0;
  };

  void Strongconnect(int root) {
    std::vector<Frame> frames;
    frames.push_back({root});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const int v = f.v;
      if (f.edge == 0) {
        index_[v] = lowlink_[v] = counter_++;
        stack_.push_back(v);
        on_stack_[v] = true;
      }
      bool descended = false;
      while (f.edge < adj_[v].size()) {
        const int w = adj_[v][f.edge++];
        if (index_[w] == -1) {
          frames.push_back({w});
          descended = true;
          break;
        }
        if (on_stack_[w]) {
          lowlink_[v] = std::min(lowlink_[v], index_[w]);
        }
      }
      if (descended) continue;
      if (lowlink_[v] == index_[v]) {
        std::vector<int> scc;
        while (true) {
          const int w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          scc.push_back(w);
          if (w == v) break;
        }
        sccs_.push_back(std::move(scc));
      }
      frames.pop_back();
      if (!frames.empty()) {
        const int parent = frames.back().v;
        lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
      }
    }
  }

  const std::vector<std::vector<int>>& adj_;
  int n_;
  int counter_ = 0;
  std::vector<int> index_, lowlink_;
  std::vector<bool> on_stack_;
  std::vector<int> stack_;
  std::vector<std::vector<int>> sccs_;
};

// Scans a function body for local declarations, collecting uninitialized
// scalar locals and names that shadow file-scope variables or parameters.
void ScanLocals(const ast::SourceFileModel& file,
                const ast::FunctionModel& fn,
                const std::unordered_set<std::string_view>& global_names,
                UnitDesignStats* stats, CheckReport* report) {
  const auto& toks = file.lexed.tokens;
  std::unordered_set<std::string_view> param_names;
  for (const auto& p : fn.params) param_names.insert(p.name);
  std::unordered_set<std::string_view> seen_locals;

  // Statement starts are tokens following ';', '{', or '}'.
  bool at_stmt_start = true;
  for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (t.IsPunct(";") || t.IsPunct("{") || t.IsPunct("}")) {
      at_stmt_start = true;
      continue;
    }
    if (!at_stmt_start) continue;
    at_stmt_start = false;

    // Match: [static|const|unsigned|...]* scalar-type+ declarator-list.
    std::size_t j = i;
    bool is_const = false;
    while (j < fn.body_end &&
           (toks[j].IsKeyword("static") || toks[j].IsKeyword("const") ||
            toks[j].IsKeyword("constexpr") || toks[j].IsKeyword("volatile") ||
            toks[j].IsKeyword("register"))) {
      if (toks[j].IsKeyword("const") || toks[j].IsKeyword("constexpr")) {
        is_const = true;
      }
      ++j;
    }
    if (j >= fn.body_end || !IsScalarTypeKeyword(toks[j])) continue;
    while (j < fn.body_end && IsScalarTypeKeyword(toks[j])) ++j;

    // Declarator list: [*&]* name [array] [= init | {init} | (init)] , ...
    while (j < fn.body_end) {
      while (j < fn.body_end &&
             (toks[j].IsPunct("*") || toks[j].IsPunct("&"))) {
        ++j;
      }
      if (j >= fn.body_end || !toks[j].IsIdentifier()) break;
      const std::string_view name = toks[j].text;
      const std::int32_t line = toks[j].line;
      ++j;
      // Array extents.
      bool is_array = false;
      while (j < fn.body_end && toks[j].IsPunct("[")) {
        is_array = true;
        int depth = 0;
        while (j < fn.body_end) {
          if (toks[j].IsPunct("[")) ++depth;
          if (toks[j].IsPunct("]")) {
            --depth;
            if (depth == 0) {
              ++j;
              break;
            }
          }
          ++j;
        }
      }
      const bool initialized =
          j < fn.body_end &&
          (toks[j].IsPunct("=") || toks[j].IsPunct("{") ||
           toks[j].IsPunct("("));
      const bool ends_decl =
          j < fn.body_end && (toks[j].IsPunct(";") || toks[j].IsPunct(","));
      if (!initialized && !ends_decl) break;  // not a declaration after all

      if (!initialized && !is_const) {
        ++stats->uninitialized_locals;
        report->Add("UNIT-3", Severity::kRequired, file.path, line,
                    "local '" + std::string(name) + "' in '" + fn.name +
                        (is_array ? "' (array) is not initialized"
                                  : "' is not initialized"));
      }
      if (global_names.contains(name) || param_names.contains(name) ||
          seen_locals.contains(name)) {
        ++stats->shadowing_decls;
        report->Add("UNIT-4", Severity::kWarning, file.path, line,
                    "local '" + std::string(name) + "' in '" + fn.name +
                        "' reuses an existing variable name");
      }
      seen_locals.insert(name);

      // Advance past the initializer to the ',' or ';'.
      int paren = 0, brace = 0, bracket = 0;
      while (j < fn.body_end) {
        const Token& u = toks[j];
        if (u.IsPunct("(")) ++paren;
        if (u.IsPunct(")")) --paren;
        if (u.IsPunct("{")) ++brace;
        if (u.IsPunct("}")) --brace;
        if (u.IsPunct("[")) ++bracket;
        if (u.IsPunct("]")) --bracket;
        if (paren == 0 && brace == 0 && bracket == 0) {
          if (u.IsPunct(",")) {
            ++j;
            break;
          }
          if (u.IsPunct(";")) break;
        }
        if (paren < 0 || brace < 0) break;  // malformed
        ++j;
      }
      if (j < fn.body_end && toks[j].IsPunct(";")) break;
      if (j >= fn.body_end) break;
    }
  }
}

}  // namespace

std::vector<std::vector<std::string>> FindRecursionCycles(
    const metrics::ModuleAnalysis& module) {
  // Index function names.
  std::unordered_map<std::string, int> id_of;
  std::vector<std::string> names;
  for (const auto& fm : module.functions) {
    if (id_of.emplace(fm.name, static_cast<int>(names.size())).second) {
      names.push_back(fm.name);
    }
  }
  std::vector<std::vector<int>> adj(names.size());
  for (const auto& fm : module.functions) {
    const int u = id_of.at(fm.name);
    for (const auto& callee : fm.callees) {
      auto it = id_of.find(callee);
      if (it != id_of.end() && it->second != u) {
        adj[u].push_back(it->second);
      }
    }
  }
  TarjanScc tarjan(adj);
  std::vector<std::vector<std::string>> cycles;
  for (const auto& scc : tarjan.Run()) {
    if (scc.size() < 2) continue;
    std::vector<std::string> cycle;
    cycle.reserve(scc.size());
    for (int v : scc) cycle.push_back(names[static_cast<std::size_t>(v)]);
    std::sort(cycle.begin(), cycle.end());
    cycles.push_back(std::move(cycle));
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

UnitDesignResult AnalyzeUnitDesign(const metrics::ModuleAnalysis& module) {
  UnitDesignResult result;
  result.stats.module = module.name;
  result.report.checker = "unit-design";
  UnitDesignStats& s = result.stats;
  CheckReport& rep = result.report;

  // Global-name set for shadowing and global-write detection.
  std::unordered_set<std::string_view> global_names;
  for (const auto& file : module.files) {
    for (const auto& g : file.globals) {
      if (g.is_const) {
        ++s.const_globals;
      } else if (!g.is_extern_decl) {
        ++s.mutable_globals;
        rep.Add("UNIT-5", Severity::kWarning, file.path, g.line,
                "mutable file-scope variable '" + g.qualified_name + "'");
      }
      if (!g.is_const) global_names.insert(g.name);
    }
  }

  for (const auto& file : module.files) {
    for (const auto& c : file.casts) {
      ++s.explicit_casts;
      (void)c;
    }
    rep.entities_checked +=
        static_cast<std::int64_t>(file.functions.size());

    for (const auto& fn : file.functions) {
      ++s.functions_total;
      const auto& toks = file.lexed.tokens;

      // Row 1: exits.
      std::int64_t returns = 0;
      for (std::size_t i = fn.body_begin; i <= fn.body_end; ++i) {
        if (toks[i].IsKeyword("return")) ++returns;
        if (toks[i].IsKeyword("goto")) {
          ++s.goto_statements;
          rep.Add("UNIT-9", Severity::kRequired, file.path, toks[i].line,
                  "unconditional jump (goto) in '" + fn.name + "'");
        }
        if (toks[i].IsPunct("->")) ++s.pointer_derefs;
        // Row 2: allocation sites.
        if (toks[i].IsKeyword("new") &&
            !(i > fn.body_begin && toks[i - 1].IsKeyword("operator"))) {
          ++s.dynamic_alloc_sites;
          rep.Add("UNIT-2", Severity::kWarning, file.path, toks[i].line,
                  "dynamic object creation (new) in '" + fn.name + "'");
        }
        if (toks[i].IsIdentifier() && IsAllocName(toks[i].text) &&
            i + 1 <= fn.body_end && toks[i + 1].IsPunct("(")) {
          ++s.dynamic_alloc_sites;
          rep.Add("UNIT-2", Severity::kWarning, file.path, toks[i].line,
                  "dynamic allocation via '" + toks[i].str() + "' in '" +
                      fn.name + "'");
        }
        // Row 8: global writes (global name followed by an assignment op).
        if (toks[i].IsIdentifier() && global_names.contains(toks[i].text) &&
            i + 1 <= fn.body_end) {
          const Token& nx = toks[i + 1];
          if (nx.IsPunct("=") || nx.IsPunct("+=") || nx.IsPunct("-=") ||
              nx.IsPunct("*=") || nx.IsPunct("/=") || nx.IsPunct("++") ||
              nx.IsPunct("--")) {
            ++s.global_write_sites;
            rep.Add("UNIT-8", Severity::kWarning, file.path, toks[i].line,
                    "write to file-scope variable '" + toks[i].str() +
                        "' in '" + fn.name + "'");
          }
        }
      }
      if (returns > 1) {
        ++s.functions_multi_exit;
        rep.Add("UNIT-1", Severity::kWarning, file.path, fn.start_line,
                "function '" + fn.name + "' has " + std::to_string(returns) +
                    " exit points");
      }

      // Row 6: pointer parameters.
      for (const auto& p : fn.params) {
        if (support::Contains(p.type_text, "*")) {
          ++s.pointer_params;
        }
      }

      ScanLocals(file, fn, global_names, &s, &rep);
    }
  }

  // Row 10: recursion.
  for (const auto& fm : module.functions) {
    if (fm.is_recursive_direct) {
      ++s.recursive_functions_direct;
      rep.Add("UNIT-10", Severity::kWarning, "", fm.start_line,
              "function '" + fm.name + "' is directly recursive");
    }
  }
  const auto cycles = FindRecursionCycles(module);
  s.recursion_cycles_indirect = static_cast<std::int64_t>(cycles.size());
  for (const auto& cycle : cycles) {
    rep.Add("UNIT-10", Severity::kWarning, "", 0,
            "indirect recursion cycle: " +
                support::Join(cycle, " -> "));
  }

  return result;
}

}  // namespace certkit::rules
