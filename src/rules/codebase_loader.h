// certkit rules: loads a C/C++/CUDA source tree from disk into analyzable
// form — the shared front door for the CLI tool and the examples.
#ifndef CERTKIT_RULES_CODEBASE_LOADER_H_
#define CERTKIT_RULES_CODEBASE_LOADER_H_

#include <string>
#include <vector>

#include "metrics/module_metrics.h"
#include "rules/assessor.h"
#include "rules/traceability.h"
#include "support/status.h"

namespace certkit::rules {

struct Codebase {
  // One module per first-level subdirectory of the root (files directly at
  // the root form a module named after the root itself).
  std::vector<metrics::ModuleAnalysis> modules;
  std::vector<RawSource> raw_sources;
  std::vector<TraceReport> traces;  // per file, comments retained
  std::vector<std::string> skipped;  // unreadable/unparseable paths
};

struct LoadOptions {
  std::vector<std::string> extensions = {".cc", ".cpp", ".cxx", ".h",
                                         ".hpp",  ".cu",  ".cuh"};
};

// Recursively loads and parses every matching file under `root`.
// NotFound if the directory does not exist; files that fail to read or
// parse are recorded in `skipped`, not fatal.
support::Result<Codebase> LoadCodebase(const std::string& root,
                                       const LoadOptions& options = {});

}  // namespace certkit::rules

#endif  // CERTKIT_RULES_CODEBASE_LOADER_H_
