// certkit rules: software unit design & implementation checks
// (ISO 26262-6 Table 8; the paper's Table 3 and Observation 14).
//
// Produces, per analyzed module, the quantitative evidence the paper reports:
// fraction of multi-exit functions (41% in Apollo's object detection),
// dynamic-allocation sites, uninitialized locals, shadowed names, mutable
// globals (~900 in perception), pointer usage, explicit conversions,
// unconditional jumps, and recursion (direct and indirect via call-graph
// strongly connected components).
#ifndef CERTKIT_RULES_UNIT_DESIGN_H_
#define CERTKIT_RULES_UNIT_DESIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/module_metrics.h"
#include "rules/finding.h"

namespace certkit::rules {

struct UnitDesignStats {
  std::string module;
  std::int64_t functions_total = 0;

  // Row 1: one entry / one exit.
  std::int64_t functions_multi_exit = 0;
  double MultiExitFraction() const {
    return functions_total > 0
               ? static_cast<double>(functions_multi_exit) /
                     static_cast<double>(functions_total)
               : 0.0;
  }

  // Row 2: dynamic objects (new/delete, malloc family, cudaMalloc family).
  std::int64_t dynamic_alloc_sites = 0;

  // Row 3: initialization of variables (uninitialized scalar locals).
  std::int64_t uninitialized_locals = 0;

  // Row 4: multiple use of variable names (locals shadowing globals/params).
  std::int64_t shadowing_decls = 0;

  // Row 5: global variables (mutable, i.e. non-const non-extern-decl).
  std::int64_t mutable_globals = 0;
  std::int64_t const_globals = 0;

  // Row 6: pointers.
  std::int64_t pointer_params = 0;
  std::int64_t pointer_derefs = 0;  // `->` uses

  // Row 7: type conversions (explicit casts of all kinds; implicit
  // conversions are not decidable lexically and are approximated by the
  // cast census, as in the paper's §3.1.3).
  std::int64_t explicit_casts = 0;

  // Row 8: hidden data flow (writes to file-scope variables from functions).
  std::int64_t global_write_sites = 0;

  // Row 9: unconditional jumps.
  std::int64_t goto_statements = 0;

  // Row 10: recursion.
  std::int64_t recursive_functions_direct = 0;
  std::int64_t recursion_cycles_indirect = 0;  // SCCs of size >= 2
};

struct UnitDesignResult {
  UnitDesignStats stats;
  CheckReport report;  // per-site findings, rule ids "UNIT-1".."UNIT-10"
};

// Analyzes one module (as produced by metrics::AnalyzeModule).
UnitDesignResult AnalyzeUnitDesign(const metrics::ModuleAnalysis& module);

// Call-graph utilities (exposed for tests and for the architecture report).
// Nodes are function names; edges resolve callee names defined in the same
// module set. Returns the strongly connected components with size >= 2
// (indirect recursion cycles); self-loops are reported separately by the
// direct-recursion metric.
std::vector<std::vector<std::string>> FindRecursionCycles(
    const metrics::ModuleAnalysis& module);

}  // namespace certkit::rules

#endif  // CERTKIT_RULES_UNIT_DESIGN_H_
