#include "rules/misra.h"

#include <string>
#include <unordered_set>
#include <vector>

#include "metrics/function_metrics.h"
#include "support/strings.h"

namespace certkit::rules {

namespace {

using lex::Token;
using lex::TokenKind;

const std::unordered_set<std::string_view>& StdlibAllocNames() {
  static const std::unordered_set<std::string_view> kSet = {
      "malloc", "calloc", "realloc", "free", "aligned_alloc"};
  return kSet;
}

const std::unordered_set<std::string_view>& CudaAllocNames() {
  static const std::unordered_set<std::string_view> kSet = {
      "cudaMalloc", "cudaMallocManaged", "cudaMallocHost", "cudaFree",
      "cudaFreeHost"};
  return kSet;
}

const std::unordered_set<std::string_view>& StdioNames() {
  static const std::unordered_set<std::string_view> kSet = {
      "printf", "fprintf", "sprintf", "snprintf", "scanf",  "fscanf",
      "sscanf", "gets",    "puts",    "fopen",    "fclose", "getchar",
      "putchar"};
  return kSet;
}

// Octal iff it starts with 0, has more digits, and is not hex/binary/float.
bool IsOctalConstant(std::string_view text) {
  if (text.size() < 2 || text[0] != '0') return false;
  const char second = text[1];
  if (second == 'x' || second == 'X' || second == 'b' || second == 'B') {
    return false;
  }
  for (char c : text) {
    if (c == '.' || c == 'e' || c == 'E' || c == 'f' || c == 'F') {
      return false;  // floating literal like 0.5
    }
  }
  return second >= '0' && second <= '7';
}

// A number token that is clearly floating (has '.', exponent, or f suffix).
bool IsFloatLiteral(const Token& t) {
  if (t.kind != TokenKind::kNumber) return false;
  const std::string_view s = t.text;
  if (s.size() > 1 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    return s.find('p') != std::string_view::npos ||
           s.find('P') != std::string_view::npos;
  }
  return s.find('.') != std::string_view::npos ||
         s.find('e') != std::string_view::npos ||
         s.find('E') != std::string_view::npos ||
         s.find('f') != std::string_view::npos ||
         s.find('F') != std::string_view::npos;
}

// Finds the index of the token matching `open` at `start` (which must be the
// opener), scanning within [start, end]. Returns `end` on imbalance.
std::size_t MatchForward(const std::vector<Token>& toks, std::size_t start,
                         std::size_t end, std::string_view open,
                         std::string_view close) {
  int depth = 0;
  for (std::size_t i = start; i <= end && i < toks.size(); ++i) {
    if (toks[i].IsPunct(open)) ++depth;
    if (toks[i].IsPunct(close)) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return end;
}

// Skips forward from `i` to the first token that is not part of `( ... )`
// attached to a control keyword. Returns index of the token after ')'.
std::size_t AfterConditionParens(const std::vector<Token>& toks,
                                 std::size_t i, std::size_t end) {
  std::size_t j = i + 1;
  if (j <= end && toks[j].IsPunct("(")) {
    j = MatchForward(toks, j, end, "(", ")") + 1;
  }
  return j;
}

class MisraChecker {
 public:
  MisraChecker(const ast::SourceFileModel& file, const MisraOptions& options,
               CheckReport* report)
      : file_(file), options_(options), report_(report),
        toks_(file.lexed.tokens) {}

  void Run() {
    CheckDirectives();
    CheckFileLevelTokens();
    for (const auto& fn : file_.functions) {
      ++report_->entities_checked;
      CheckFunction(fn);
    }
  }

 private:
  void CheckDirectives() {
    for (const auto& d : file_.lexed.directives) {
      if (d.name == "undef") {
        report_->Add("MISRA-20.5", Severity::kWarning, file_.path, d.line,
                     "#undef shall not be used");
      }
    }
    for (const auto& m : file_.macros) {
      if (m.function_like) {
        report_->Add("MISRA-D4.9", Severity::kInfo, file_.path, m.line,
                     "function-like macro '" + m.name + "' should be a "
                     "function");
      }
    }
  }

  void CheckFileLevelTokens() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.IsKeyword("union")) {
        report_->Add("MISRA-19.2", Severity::kWarning, file_.path, t.line,
                     "the union keyword should not be used");
      }
      if (t.kind == TokenKind::kNumber && IsOctalConstant(t.text)) {
        report_->Add("MISRA-7.1", Severity::kWarning, file_.path, t.line,
                     "octal constant '" + t.str() + "'");
      }
      if ((t.IsPunct("==") || t.IsPunct("!=")) && i > 0 &&
          i + 1 < toks_.size() &&
          (IsFloatLiteral(toks_[i - 1]) || IsFloatLiteral(toks_[i + 1]))) {
        report_->Add("MISRA-13.3", Severity::kWarning, file_.path, t.line,
                     "floating-point equality comparison");
      }
    }
    for (const auto& c : file_.casts) {
      if (c.kind == ast::CastKind::kCStyle) {
        report_->Add("MISRA-11.4", Severity::kWarning, file_.path, c.line,
                     "C-style cast to '" + c.target_text +
                         "' — use a named cast");
      }
    }
  }

  void CheckFunction(const ast::FunctionModel& fn) {
    const metrics::FunctionMetrics fm =
        metrics::ComputeFunctionMetrics(file_, fn);

    for (const auto& param : fn.params) {
      if (param.name == "...") {
        report_->Add("MISRA-17.1", Severity::kRequired, file_.path,
                     fn.start_line,
                     "function '" + fn.name + "' takes variadic arguments");
      }
    }

    if (fm.goto_count > 0) {
      report_->Add("MISRA-15.1", Severity::kRequired, file_.path,
                   fn.start_line,
                   "function '" + fn.name + "' uses goto (" +
                       std::to_string(fm.goto_count) + " occurrence(s))");
    }
    if (fm.return_count > 1) {
      report_->Add("MISRA-15.5", Severity::kWarning, file_.path,
                   fn.start_line,
                   "function '" + fn.name + "' has " +
                       std::to_string(fm.return_count) + " return points");
    }
    if (fm.is_recursive_direct) {
      report_->Add("MISRA-17.2", Severity::kRequired, file_.path,
                   fn.start_line,
                   "function '" + fn.name + "' calls itself recursively");
    }

    CheckDynamicMemory(fn);
    CheckStdio(fn);
    CheckCompoundBodies(fn);
    CheckSwitches(fn);
    if (options_.check_unused_params) CheckUnusedParams(fn, fm);
  }

  void CheckDynamicMemory(const ast::FunctionModel& fn) {
    for (std::size_t i = fn.body_begin; i <= fn.body_end; ++i) {
      const Token& t = toks_[i];
      if (t.IsIdentifier() && i + 1 <= fn.body_end &&
          toks_[i + 1].IsPunct("(")) {
        if (StdlibAllocNames().contains(t.text)) {
          report_->Add("MISRA-21.3", Severity::kRequired, file_.path, t.line,
                       "dynamic memory via '" + t.str() + "'");
        } else if (options_.include_dialect_analogues &&
                   CudaAllocNames().contains(t.text)) {
          report_->Add("MISRA-21.3", Severity::kRequired, file_.path, t.line,
                       "CUDA dynamic device memory via '" + t.str() + "'");
        }
      }
      if (options_.include_dialect_analogues &&
          (t.IsKeyword("new") || t.IsKeyword("delete"))) {
        // `operator new` definitions excluded by requiring expression
        // position (previous token not `operator`).
        if (i > fn.body_begin && toks_[i - 1].IsKeyword("operator")) continue;
        report_->Add("MISRA-21.3", Severity::kRequired, file_.path, t.line,
                     std::string("dynamic memory via '") + t.str() + "'");
      }
    }
  }

  void CheckStdio(const ast::FunctionModel& fn) {
    for (std::size_t i = fn.body_begin; i <= fn.body_end; ++i) {
      const Token& t = toks_[i];
      if (t.IsIdentifier() && StdioNames().contains(t.text) &&
          i + 1 <= fn.body_end && toks_[i + 1].IsPunct("(")) {
        // Qualified std::printf also matches — the rule targets the call.
        report_->Add("MISRA-21.6", Severity::kWarning, file_.path, t.line,
                     "standard I/O function '" + t.str() + "' used");
      }
    }
  }

  void CheckCompoundBodies(const ast::FunctionModel& fn) {
    for (std::size_t i = fn.body_begin; i <= fn.body_end; ++i) {
      const Token& t = toks_[i];
      const bool has_condition =
          t.IsKeyword("if") || t.IsKeyword("for") || t.IsKeyword("while");
      if (!has_condition && !t.IsKeyword("else") && !t.IsKeyword("do")) {
        continue;
      }
      // `while` of do-while ends with ';' — not a body.
      std::size_t body_at;
      if (has_condition) {
        body_at = AfterConditionParens(toks_, i, fn.body_end);
      } else {
        body_at = i + 1;
      }
      if (body_at > fn.body_end) continue;
      const Token& b = toks_[body_at];
      if (t.IsKeyword("while") && b.IsPunct(";")) continue;  // do-while tail
      if (t.IsKeyword("else") && b.IsKeyword("if")) continue;  // else-if
      if (!b.IsPunct("{")) {
        report_->Add("MISRA-15.6", Severity::kWarning, file_.path, t.line,
                     "body of '" + t.str() + "' is not a compound statement");
      }
    }
  }

  void CheckSwitches(const ast::FunctionModel& fn) {
    for (std::size_t i = fn.body_begin; i <= fn.body_end; ++i) {
      if (!toks_[i].IsKeyword("switch")) continue;
      std::size_t j = AfterConditionParens(toks_, i, fn.body_end);
      if (j > fn.body_end || !toks_[j].IsPunct("{")) continue;
      const std::size_t close = MatchForward(toks_, j, fn.body_end, "{", "}");
      CheckOneSwitch(i, j, close);
      // Nested switches inside are found by the outer loop as it advances.
    }
  }

  void CheckOneSwitch(std::size_t switch_idx, std::size_t open,
                      std::size_t close) {
    bool has_default = false;
    // Track case labels at switch depth (depth 1 relative to `open`).
    int depth = 0;
    std::size_t last_label = 0;      // token index of the last case/default
    bool label_open = false;         // inside a case body
    bool body_nonempty = false;
    bool terminated = true;          // break/return/continue/goto/[[fallthrough]]
    for (std::size_t i = open; i <= close; ++i) {
      const Token& t = toks_[i];
      if (t.IsPunct("{")) {
        ++depth;
        continue;
      }
      if (t.IsPunct("}")) {
        --depth;
        continue;
      }
      const bool is_label = (t.IsKeyword("case") || t.IsKeyword("default")) &&
                            depth == 1;
      if (is_label) {
        if (t.IsKeyword("default")) has_default = true;
        if (label_open && body_nonempty && !terminated) {
          report_->Add("MISRA-16.1", Severity::kWarning, file_.path,
                       toks_[last_label].line,
                       "implicit fallthrough between switch cases");
        }
        last_label = i;
        label_open = true;
        body_nonempty = false;
        terminated = false;
        // Skip the label expression up to ':'.
        while (i <= close && !toks_[i].IsPunct(":")) ++i;
        continue;
      }
      if (!label_open) continue;
      if (t.IsKeyword("break") || t.IsKeyword("return") ||
          t.IsKeyword("continue") || t.IsKeyword("goto") ||
          t.IsKeyword("throw")) {
        terminated = true;
        continue;
      }
      if (t.IsIdentifier() && t.text == "fallthrough") {
        terminated = true;  // [[fallthrough]]
        continue;
      }
      if (!t.IsPunct(";")) body_nonempty = true;
    }
    if (!has_default) {
      report_->Add("MISRA-16.4", Severity::kWarning, file_.path,
                   toks_[switch_idx].line, "switch without default label");
    }
  }

  void CheckUnusedParams(const ast::FunctionModel& fn,
                         const metrics::FunctionMetrics& fm) {
    (void)fm;
    for (const auto& p : fn.params) {
      if (p.name.empty() || p.name == "...") continue;
      bool used = false;
      for (std::size_t i = fn.body_begin; i <= fn.body_end; ++i) {
        if (toks_[i].IsIdentifier() && toks_[i].text == p.name) {
          used = true;
          break;
        }
      }
      if (!used) {
        report_->Add("MISRA-2.7", Severity::kInfo, file_.path, fn.start_line,
                     "parameter '" + p.name + "' of '" + fn.name +
                         "' is unused");
      }
    }
  }

  const ast::SourceFileModel& file_;
  const MisraOptions& options_;
  CheckReport* report_;
  const std::vector<Token>& toks_;
};

}  // namespace

CheckReport CheckMisra(const ast::SourceFileModel& file,
                       const MisraOptions& options) {
  CheckReport report;
  report.checker = "misra";
  MisraChecker checker(file, options, &report);
  checker.Run();
  return report;
}

CudaDialectStats AnalyzeCudaDialect(const ast::SourceFileModel& file) {
  CudaDialectStats stats;
  const auto& toks = file.lexed.tokens;
  for (const auto& fn : file.functions) {
    if (fn.is_cuda_kernel) {
      ++stats.kernel_count;
      std::int32_t ptr_params = 0;
      for (const auto& p : fn.params) {
        if (support::Contains(p.type_text, "*")) ++ptr_params;
      }
      stats.kernel_pointer_params += ptr_params;
      if (ptr_params > 0) ++stats.kernels_with_pointer_params;
    }
    if (fn.is_cuda_device) ++stats.device_fn_count;
  }
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].IsIdentifier() || !toks[i + 1].IsPunct("(")) continue;
    const std::string_view name = toks[i].text;
    if (name == "cudaMalloc" || name == "cudaMallocManaged" ||
        name == "cudaMallocHost") {
      ++stats.cuda_malloc_calls;
    } else if (name == "cudaMemcpy" || name == "cudaMemcpyAsync") {
      ++stats.cuda_memcpy_calls;
    } else if (name == "cudaFree" || name == "cudaFreeHost") {
      ++stats.cuda_free_calls;
    }
  }
  return stats;
}

}  // namespace certkit::rules
