// certkit rules: requirement-to-code traceability.
//
// The paper's introduction identifies traceability as "a fundamental element
// to link high-level requirements, low-level requirements, and analyzes" in
// the ISO 26262 life-cycle. This analyzer extracts requirement tags of the
// form `REQ-<IDENT>` (e.g. REQ-PLAN-001) from source comments and links each
// tag to the function definition it annotates (the next definition at or
// below the comment line).
//
// Outputs: the requirement -> functions map, the set of functions with no
// requirement linkage (untraceable code), and dangling tags that precede no
// function.
#ifndef CERTKIT_RULES_TRACEABILITY_H_
#define CERTKIT_RULES_TRACEABILITY_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ast/source_model.h"

namespace certkit::rules {

struct RequirementLink {
  std::string requirement;       // "REQ-PLAN-001"
  std::string file;
  std::int32_t comment_line = 0;
  std::string function;          // qualified name ("" when dangling)
};

struct TraceReport {
  std::vector<RequirementLink> links;
  // Functions (qualified names) with no requirement annotation.
  std::vector<std::string> untraced_functions;
  std::int64_t functions_total = 0;

  double TraceabilityRatio() const {
    if (functions_total == 0) return 1.0;
    return 1.0 - static_cast<double>(untraced_functions.size()) /
                     static_cast<double>(functions_total);
  }
  // Distinct requirement tags seen.
  std::vector<std::string> Requirements() const;
};

// Extracts all `REQ-...` tags from `text` (uppercase letters, digits,
// dashes; at least one character after "REQ-").
std::vector<std::string> ExtractRequirementTags(std::string_view text);

// Analyzes one parsed file. The file must have been lexed with
// LexOptions::keep_comments = true; otherwise every function is untraced.
TraceReport AnalyzeTraceability(const ast::SourceFileModel& file);

// Merges per-file reports.
TraceReport MergeTraceReports(const std::vector<TraceReport>& reports);

}  // namespace certkit::rules

#endif  // CERTKIT_RULES_TRACEABILITY_H_
