// certkit rules: the ISO 26262 Part 6 technique tables assessed in the paper.
//
// Three tables are modeled, with the exact technique lists and per-ASIL
// recommendation levels the paper reproduces:
//  * Table 1 of the paper  = ISO 26262-6 Table 1 (modeling/coding guidelines)
//  * Table 2 of the paper  = ISO 26262-6 Table 3 (architectural design)
//  * Table 3 of the paper  = ISO 26262-6 Table 8 (unit design & implement.)
//
// Recommendation notation: ++ highly recommended, + recommended, o no
// recommendation for/against at that ASIL.
#ifndef CERTKIT_RULES_ISO26262_H_
#define CERTKIT_RULES_ISO26262_H_

#include <array>
#include <string>
#include <vector>

namespace certkit::rules {

enum class Asil { kA = 0, kB = 1, kC = 2, kD = 3 };
const char* AsilName(Asil asil);

enum class Recommendation {
  kNone,                // 'o'
  kRecommended,         // '+'
  kHighlyRecommended,   // '++'
};
const char* RecommendationMark(Recommendation r);  // "o", "+", "++"

// One technique row of an ISO 26262-6 table.
struct Technique {
  std::string id;    // e.g. "1a" — stable identifier within its table
  std::string name;  // the technique text as printed in the paper
  std::array<Recommendation, 4> by_asil;  // indexed by Asil

  Recommendation At(Asil asil) const {
    return by_asil[static_cast<std::size_t>(asil)];
  }
};

struct TechniqueTable {
  std::string id;       // "ISO26262-6:Table1", ...
  std::string caption;  // as printed in the paper
  std::vector<Technique> techniques;
};

// The three tables, verbatim from the paper.
const TechniqueTable& CodingGuidelinesTable();    // paper Table 1
const TechniqueTable& ArchitecturalDesignTable(); // paper Table 2
const TechniqueTable& UnitDesignTable();          // paper Table 3

// Further ISO 26262-6 tables behind the paper's §3.2–3.3 (unit testing and
// structural coverage): methods for software unit verification (Table 9),
// structural coverage metrics at the unit level (Table 10: statement ++/++,
// branch +/++, MC/DC +/++ by ASIL), and structural coverage at the
// architectural level (Table 12: function and call coverage).
const TechniqueTable& UnitVerificationTable();      // ISO 26262-6 Table 9
const TechniqueTable& UnitCoverageTable();          // ISO 26262-6 Table 10
const TechniqueTable& IntegrationCoverageTable();   // ISO 26262-6 Table 12

// Assessment verdict for one technique against a measured codebase.
enum class Verdict {
  kCompliant,     // evidence of systematic adherence
  kPartial,       // adhered to in part, gaps identified
  kNonCompliant,  // no evidence of adherence / widespread violations
  kNotApplicable, // e.g. "unambiguous graphical representation" for C/C++
};
const char* VerdictName(Verdict verdict);

struct TechniqueAssessment {
  std::string technique_id;
  Verdict verdict = Verdict::kNonCompliant;
  std::string evidence;  // quantitative evidence string for the report
  // The paper's observation number this maps to, 0 if none.
  int observation = 0;
};

struct TableAssessment {
  std::string table_id;
  std::vector<TechniqueAssessment> assessments;
};

// True when the verdict satisfies the recommendation level at `asil`:
// a '++' technique needs kCompliant; a '+' technique accepts kPartial;
// 'o' and kNotApplicable always pass.
bool Satisfies(Verdict verdict, Recommendation recommendation);

}  // namespace certkit::rules

#endif  // CERTKIT_RULES_ISO26262_H_
