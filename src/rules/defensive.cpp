#include "rules/defensive.h"

#include <string>
#include <unordered_map>
#include <unordered_set>

namespace certkit::rules {

namespace {

using lex::Token;
using lex::TokenKind;

bool IsAssertLikeName(std::string_view name) {
  static const std::unordered_set<std::string_view> kSet = {
      "assert",        "static_assert", "CHECK",         "DCHECK",
      "CHECK_NOTNULL", "CHECK_GE",      "CHECK_GT",      "CHECK_LE",
      "CHECK_LT",      "CHECK_EQ",      "CHECK_NE",      "ASSERT",
      "CERTKIT_CHECK", "CERTKIT_CHECK_MSG", "ACHECK",    "AERROR_IF",
      "EXPECT_TRUE",   "ASSERT_TRUE"};
  return kSet.contains(name);
}

// True if any token in (open, close) is an identifier naming a parameter.
bool SpanMentionsParam(const std::vector<Token>& toks, std::size_t open,
                       std::size_t close,
                       const std::unordered_set<std::string_view>& params) {
  for (std::size_t i = open + 1; i < close; ++i) {
    if (toks[i].IsIdentifier() && params.contains(toks[i].text)) return true;
  }
  return false;
}

std::size_t MatchParen(const std::vector<Token>& toks, std::size_t open,
                       std::size_t end) {
  int depth = 0;
  for (std::size_t i = open; i <= end && i < toks.size(); ++i) {
    if (toks[i].IsPunct("(")) ++depth;
    if (toks[i].IsPunct(")")) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return end;
}

}  // namespace

DefensiveResult AnalyzeDefensive(
    const std::vector<ast::SourceFileModel>& files) {
  DefensiveResult result;
  result.report.checker = "defensive";
  DefensiveStats& s = result.stats;
  CheckReport& rep = result.report;

  // Known non-void functions (by name) across the file set. Views into the
  // FunctionModel names, which outlive this analysis.
  std::unordered_set<std::string_view> nonvoid;
  std::unordered_set<std::string_view> known;
  for (const auto& file : files) {
    for (const auto& fn : file.functions) {
      known.insert(fn.name);
      if (!fn.returns_void) nonvoid.insert(fn.name);
    }
  }

  for (const auto& file : files) {
    const auto& toks = file.lexed.tokens;
    for (const auto& fn : file.functions) {
      ++rep.entities_checked;
      std::unordered_set<std::string_view> params;
      for (const auto& p : fn.params) {
        if (!p.name.empty() && p.name != "...") params.insert(p.name);
      }

      // --- input validation ---
      if (!params.empty()) {
        ++s.functions_with_params;
        bool validates = false;
        for (std::size_t i = fn.body_begin; i <= fn.body_end && !validates;
             ++i) {
          const Token& t = toks[i];
          const bool is_if = t.IsKeyword("if");
          const bool is_assert = t.IsIdentifier() &&
                                 IsAssertLikeName(t.text) &&
                                 i + 1 <= fn.body_end &&
                                 toks[i + 1].IsPunct("(");
          if (is_assert) ++s.assertion_sites;
          if (!is_if && !is_assert) continue;
          const std::size_t open = i + 1;
          if (open > fn.body_end || !toks[open].IsPunct("(")) continue;
          const std::size_t close = MatchParen(toks, open, fn.body_end);
          if (SpanMentionsParam(toks, open, close, params)) {
            validates = true;
          }
        }
        if (validates) {
          ++s.functions_validating_inputs;
        } else {
          rep.Add("DEF-INPUT", Severity::kWarning, file.path, fn.start_line,
                  "function '" + fn.name + "' (" +
                      std::to_string(params.size()) +
                      " parameter(s)) never validates its inputs");
        }
      }

      // --- discarded results ---
      // Expression statements of the form `name ( ... ) ;` at statement
      // start, where `name` is a known non-void function.
      bool at_stmt_start = true;
      for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
        const Token& t = toks[i];
        if (t.IsPunct(";") || t.IsPunct("{") || t.IsPunct("}")) {
          at_stmt_start = true;
          continue;
        }
        if (!at_stmt_start) continue;
        at_stmt_start = false;
        if (!t.IsIdentifier() || !known.contains(t.text)) continue;
        if (i + 1 >= fn.body_end || !toks[i + 1].IsPunct("(")) continue;
        const std::size_t close = MatchParen(toks, i + 1, fn.body_end);
        if (close + 1 > fn.body_end || !toks[close + 1].IsPunct(";")) {
          continue;  // part of a larger expression: result is consumed
        }
        ++s.call_sites_checked;
        if (nonvoid.contains(t.text)) {
          ++s.discarded_results;
          rep.Add("DEF-RESULT", Severity::kWarning, file.path, t.line,
                  "result of non-void '" + t.str() + "' is discarded in '" +
                      fn.name + "'");
        }
      }
    }
  }
  return result;
}

}  // namespace certkit::rules
