// certkit rules: the top-level ISO 26262-6 assessor.
//
// Ties every checker together and produces the three technique-table
// assessments the paper reports (its Tables 1–3 with Observations 1–14),
// with quantitative evidence strings computed from the analyzed codebase.
#ifndef CERTKIT_RULES_ASSESSOR_H_
#define CERTKIT_RULES_ASSESSOR_H_

#include <string>
#include <vector>

#include "metrics/architecture.h"
#include "metrics/module_metrics.h"
#include "rules/defensive.h"
#include "rules/iso26262.h"
#include "rules/misra.h"
#include "rules/style.h"
#include "rules/unit_design.h"

namespace certkit::rules {

// Verdict thresholds. Defaults are the values used for the paper
// reproduction; a downstream safety team would tighten them per project.
struct AssessorThresholds {
  // Table 1 row 1: fraction of functions with CC > 10 for partial verdict.
  double cc_over10_partial_fraction = 0.02;
  // Table 1 row 3: explicit casts per kNLOC for partial verdict.
  double casts_per_knloc_partial = 1.0;
  // Table 1 row 4: input-validation ratios.
  double defensive_compliant_ratio = 0.90;
  double defensive_partial_ratio = 0.50;
  // Table 1 rows 7–8: style/naming compliance ratios for compliant verdict.
  double style_compliant_ratio = 0.97;
  // Table 2 row 2: component size limit (NLOC).
  std::int64_t max_component_nloc = 10000;
  // Table 2 row 3: interface width.
  std::int32_t max_params = 5;
  // Table 2 rows 4–5: cohesion / coupling.
  double cohesion_compliant = 0.75;
  double cohesion_partial = 0.50;
  std::int32_t max_efferent_modules = 2;
  // Table 3: per-kNLOC rates for partial verdicts.
  double unit_partial_rate_per_knloc = 0.5;
};

// Raw-source access for style checking: path -> file text, matching
// SourceFileModel::path entries. (The parser does not retain raw text.)
struct RawSource {
  std::string path;
  std::string text;
};

// Full assessment of a codebase organized into modules.
class Assessor {
 public:
  Assessor(const std::vector<metrics::ModuleAnalysis>* modules,
           const std::vector<RawSource>* raw_sources = nullptr,
           const AssessorThresholds& thresholds = {});

  // Paper Table 1 (ISO 26262-6 Table 1) with Observations 1–9.
  TableAssessment AssessCodingGuidelines();
  // Paper Table 2 (ISO 26262-6 Table 3) with Observation 13.
  TableAssessment AssessArchitecture();
  // Paper Table 3 (ISO 26262-6 Table 8) with Observation 14.
  TableAssessment AssessUnitDesign();

  // Aggregated evidence, exposed for reports and benchmarks.
  const std::vector<UnitDesignResult>& unit_design() const {
    return unit_design_;
  }
  const std::vector<CheckReport>& misra_reports() const {
    return misra_reports_;
  }
  const DefensiveStats& defensive() const { return defensive_.stats; }
  const metrics::ArchitectureReport& architecture() const {
    return architecture_;
  }
  const StyleStats& style() const { return style_total_; }
  std::int64_t total_functions() const { return total_functions_; }
  std::int64_t total_nloc() const { return total_nloc_; }
  std::int64_t total_explicit_casts() const { return total_casts_; }
  std::int64_t functions_cc_over(int threshold) const;

 private:
  const std::vector<metrics::ModuleAnalysis>& modules_;
  AssessorThresholds thresholds_;

  std::vector<UnitDesignResult> unit_design_;
  std::vector<CheckReport> misra_reports_;
  DefensiveResult defensive_;
  metrics::ArchitectureReport architecture_;
  StyleStats style_total_;
  StyleStats naming_total_;

  std::int64_t total_functions_ = 0;
  std::int64_t total_nloc_ = 0;
  std::int64_t total_casts_ = 0;
};

}  // namespace certkit::rules

#endif  // CERTKIT_RULES_ASSESSOR_H_
