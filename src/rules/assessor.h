// certkit rules: the top-level ISO 26262-6 assessor.
//
// Ties every checker together and produces the three technique-table
// assessments the paper reports (its Tables 1–3 with Observations 1–14),
// with quantitative evidence strings computed from the analyzed codebase.
#ifndef CERTKIT_RULES_ASSESSOR_H_
#define CERTKIT_RULES_ASSESSOR_H_

#include <string>
#include <vector>

#include "metrics/architecture.h"
#include "metrics/module_metrics.h"
#include "rules/defensive.h"
#include "rules/iso26262.h"
#include "rules/misra.h"
#include "rules/style.h"
#include "rules/unit_design.h"

namespace certkit::rules {

// Verdict thresholds. Defaults are the values used for the paper
// reproduction; a downstream safety team would tighten them per project.
struct AssessorThresholds {
  // Table 1 row 1: fraction of functions with CC > 10 for partial verdict.
  double cc_over10_partial_fraction = 0.02;
  // Table 1 row 3: explicit casts per kNLOC for partial verdict.
  double casts_per_knloc_partial = 1.0;
  // Table 1 row 4: input-validation ratios.
  double defensive_compliant_ratio = 0.90;
  double defensive_partial_ratio = 0.50;
  // Table 1 rows 7–8: style/naming compliance ratios for compliant verdict.
  double style_compliant_ratio = 0.97;
  // Table 2 row 2: component size limit (NLOC).
  std::int64_t max_component_nloc = 10000;
  // Table 2 row 3: interface width.
  std::int32_t max_params = 5;
  // Table 2 rows 4–5: cohesion / coupling.
  double cohesion_compliant = 0.75;
  double cohesion_partial = 0.50;
  std::int32_t max_efferent_modules = 2;
  // Table 3: per-kNLOC rates for partial verdicts.
  double unit_partial_rate_per_knloc = 0.5;
};

// Raw-source access for style checking: path -> file text, matching
// SourceFileModel::path entries. (The parser does not retain raw text.)
struct RawSource {
  std::string path;
  std::string text;
};

// Everything the assessor consumes, precomputed. The driver fills this in
// parallel (one FileAnalysis per worker, merged in stable order); the legacy
// serial path is ComputeAssessorInputs below. `modules` must outlive the
// Assessor — the assessor only aggregates, it never re-walks file models
// except for the architecture/interrupt scans that depend on thresholds.
struct AssessorInputs {
  const std::vector<metrics::ModuleAnalysis>* modules = nullptr;
  std::vector<UnitDesignResult> unit_design;  // one per module, module order
  std::vector<CheckReport> misra_reports;     // one per file, stable order
  DefensiveResult defensive;                  // merged across modules
  StyleStats style_total;
  StyleStats naming_total;
  std::int64_t total_functions = 0;
  std::int64_t total_nloc = 0;
  std::int64_t total_casts = 0;
};

// Adds one file's style result into the running totals. The naming subtotal
// (Table 1 row 8) counts STYLE-*NAME* findings over the file's named
// declarations (types, functions, globals, macros).
void AccumulateStyle(const StyleResult& result,
                     const ast::SourceFileModel& file, StyleStats* style_total,
                     StyleStats* naming_total);

// Merges one module's defensive result into `total`: stats are summed,
// findings appended in call order (keep the call order stable for
// deterministic reports).
void MergeDefensive(DefensiveResult part, DefensiveResult* total);

// Serial reference computation of AssessorInputs — runs the MISRA, style,
// defensive, and unit-design passes over every module on the calling thread.
// AnalysisDriver produces the same inputs from per-file artifacts computed
// in parallel; this function is the single-threaded oracle the determinism
// tests compare against.
AssessorInputs ComputeAssessorInputs(
    const std::vector<metrics::ModuleAnalysis>& modules,
    const std::vector<RawSource>* raw_sources = nullptr);

// Full assessment of a codebase organized into modules.
class Assessor {
 public:
  // Preferred: assess from precomputed inputs (see AnalysisDriver).
  explicit Assessor(AssessorInputs inputs,
                    const AssessorThresholds& thresholds = {});

  // Legacy convenience: computes the inputs serially, then assesses.
  Assessor(const std::vector<metrics::ModuleAnalysis>* modules,
           const std::vector<RawSource>* raw_sources = nullptr,
           const AssessorThresholds& thresholds = {});

  // Paper Table 1 (ISO 26262-6 Table 1) with Observations 1–9.
  TableAssessment AssessCodingGuidelines();
  // Paper Table 2 (ISO 26262-6 Table 3) with Observation 13.
  TableAssessment AssessArchitecture();
  // Paper Table 3 (ISO 26262-6 Table 8) with Observation 14.
  TableAssessment AssessUnitDesign();

  // Aggregated evidence, exposed for reports and benchmarks.
  const std::vector<UnitDesignResult>& unit_design() const {
    return inputs_.unit_design;
  }
  const std::vector<CheckReport>& misra_reports() const {
    return inputs_.misra_reports;
  }
  const DefensiveStats& defensive() const {
    return inputs_.defensive.stats;
  }
  const metrics::ArchitectureReport& architecture() const {
    return architecture_;
  }
  const StyleStats& style() const { return inputs_.style_total; }
  std::int64_t total_functions() const { return inputs_.total_functions; }
  std::int64_t total_nloc() const { return inputs_.total_nloc; }
  std::int64_t total_explicit_casts() const { return inputs_.total_casts; }
  std::int64_t functions_cc_over(int threshold) const;

 private:
  AssessorInputs inputs_;
  AssessorThresholds thresholds_;
  metrics::ArchitectureReport architecture_;
};

}  // namespace certkit::rules

#endif  // CERTKIT_RULES_ASSESSOR_H_
