// certkit rules: style-guide checker (Google C++ style subset).
//
// The paper's Observations 8–9 note that Apollo adopts the Google C++ style
// guide and validates contributions with style checkers. This module
// implements the lexically checkable core of that guide:
//   STYLE-LINELEN   lines at most N columns (default 80)
//   STYLE-TAB       no tab characters in indentation
//   STYLE-TRAILWS   no trailing whitespace
//   STYLE-EOFNL     file ends with exactly one newline
//   STYLE-TYPENAME  type names are UpperCamelCase
//   STYLE-FUNCNAME  function names are UpperCamelCase (or snake_case
//                   accessors, which the guide also permits)
//   STYLE-VARNAME   file-scope variable names are snake_case (constants may
//                   be kUpperCamelCase)
//   STYLE-CONSTNAME const/constexpr globals are kUpperCamelCase
//   STYLE-MACRONAME macros are MACRO_CASE
//   STYLE-GUARD     headers use include guards or #pragma once
#ifndef CERTKIT_RULES_STYLE_H_
#define CERTKIT_RULES_STYLE_H_

#include <string_view>

#include "ast/source_model.h"
#include "rules/finding.h"

namespace certkit::rules {

struct StyleOptions {
  int max_line_length = 80;
  bool check_naming = true;
  bool is_header = false;  // enables STYLE-GUARD
};

struct StyleStats {
  std::int64_t lines_checked = 0;
  std::int64_t violations = 0;
  // Compliance ratio in [0,1]: 1 - violations per checked entity, floored
  // at 0. "Entities" are lines plus named declarations.
  double ComplianceRatio() const {
    if (lines_checked <= 0) return 1.0;
    const double v = 1.0 - static_cast<double>(violations) /
                               static_cast<double>(lines_checked);
    return v < 0.0 ? 0.0 : v;
  }
};

struct StyleResult {
  StyleStats stats;
  CheckReport report;
};

// Checks `file` (parsed model) against the style guide. `raw_source` must be
// the exact text that was parsed (for line-level checks).
StyleResult CheckStyle(const ast::SourceFileModel& file,
                       std::string_view raw_source,
                       const StyleOptions& options = {});

}  // namespace certkit::rules

#endif  // CERTKIT_RULES_STYLE_H_
