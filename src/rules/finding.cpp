#include "rules/finding.h"

namespace certkit::rules {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kRequired:
      return "required";
  }
  return "?";
}

}  // namespace certkit::rules
