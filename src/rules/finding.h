// certkit rules: findings emitted by all guideline checkers.
#ifndef CERTKIT_RULES_FINDING_H_
#define CERTKIT_RULES_FINDING_H_

#include <cstdint>
#include <string>
#include <vector>

namespace certkit::rules {

enum class Severity {
  kInfo,      // stylistic / informational
  kWarning,   // recommended ('+') technique violated
  kRequired,  // highly recommended ('++') technique violated
};

const char* SeverityName(Severity severity);

struct Finding {
  std::string rule_id;   // e.g. "MISRA-15.1", "STYLE-LINELEN", "UNIT-5"
  Severity severity = Severity::kWarning;
  std::string file;
  std::int32_t line = 0;
  std::string message;
};

// Aggregated result of one checker run.
struct CheckReport {
  std::string checker;  // "misra", "style", "unit-design", "defensive"
  std::vector<Finding> findings;
  // Number of entities inspected (files, functions — checker-specific), so
  // that violation *rates* can be reported, as the paper does (e.g. "41% of
  // functions have multiple exit points").
  std::int64_t entities_checked = 0;

  void Add(std::string rule_id, Severity severity, std::string file,
           std::int32_t line, std::string message) {
    findings.push_back(Finding{std::move(rule_id), severity, std::move(file),
                               line, std::move(message)});
  }

  std::int64_t CountRule(std::string_view rule_id) const {
    std::int64_t n = 0;
    for (const auto& f : findings) {
      if (f.rule_id == rule_id) ++n;
    }
    return n;
  }
};

}  // namespace certkit::rules

#endif  // CERTKIT_RULES_FINDING_H_
