#include "report/renderers.h"

#include "report/table.h"
#include "support/check.h"
#include "support/strings.h"

namespace certkit::report {

namespace {
std::string Num(std::int64_t v) { return std::to_string(v); }
}  // namespace

std::string RenderTechniqueAssessment(
    const rules::TechniqueTable& table,
    const rules::TableAssessment& assessment) {
  CERTKIT_CHECK(table.techniques.size() == assessment.assessments.size());
  Table out({"#", "Technique", "A", "B", "C", "D", "Verdict", "Evidence"});
  for (std::size_t i = 0; i < table.techniques.size(); ++i) {
    const auto& tech = table.techniques[i];
    const auto& assess = assessment.assessments[i];
    out.AddRow({tech.id, tech.name,
                rules::RecommendationMark(tech.At(rules::Asil::kA)),
                rules::RecommendationMark(tech.At(rules::Asil::kB)),
                rules::RecommendationMark(tech.At(rules::Asil::kC)),
                rules::RecommendationMark(tech.At(rules::Asil::kD)),
                rules::VerdictName(assess.verdict), assess.evidence});
  }
  return table.caption + "\n" + out.ToAscii();
}

std::string RenderModuleComplexity(
    const std::vector<metrics::ModuleMetrics>& modules) {
  Table out({"Module", "LOC", "NLOC", "Files", "Functions", "CC>10", "CC>20",
             "CC>50", "MaxCC", "MeanCC"});
  std::int64_t loc = 0, funcs = 0, over10 = 0, over20 = 0, over50 = 0;
  for (const auto& m : modules) {
    out.AddRow({m.name, Num(m.loc), Num(m.nloc), Num(m.file_count),
                Num(m.function_count), Num(m.FunctionsOverCc(10)),
                Num(m.FunctionsOverCc(20)), Num(m.FunctionsOverCc(50)),
                Num(m.max_cc), support::FormatDouble(m.mean_cc, 2)});
    loc += m.loc;
    funcs += m.function_count;
    over10 += m.FunctionsOverCc(10);
    over20 += m.FunctionsOverCc(20);
    over50 += m.FunctionsOverCc(50);
  }
  out.AddRow({"TOTAL", Num(loc), "", "", Num(funcs), Num(over10), Num(over20),
              Num(over50), "", ""});
  return out.ToAscii();
}

std::string RenderCoverage(const std::vector<cov::CoverageRow>& rows,
                           bool include_mcdc) {
  std::vector<std::string> headers = {"Unit", "Statement", "Branch"};
  if (include_mcdc) headers.push_back("MC/DC");
  Table out(headers);
  for (const auto& r : rows) {
    std::vector<std::string> cells = {r.unit, Percent(r.statement),
                                      Percent(r.branch)};
    if (include_mcdc) cells.push_back(Percent(r.mcdc));
    out.AddRow(std::move(cells));
  }
  const cov::CoverageRow avg = cov::Average(rows);
  std::vector<std::string> cells = {"AVERAGE", Percent(avg.statement),
                                    Percent(avg.branch)};
  if (include_mcdc) cells.push_back(Percent(avg.mcdc));
  out.AddRow(std::move(cells));
  return out.ToAscii();
}

std::string RenderArchitecture(const metrics::ArchitectureReport& report) {
  Table out({"Module", "NLOC", "Classes", "MaxPubMethods", "MeanParams",
             "MaxParams", "EfferentModules", "Cohesion"});
  for (std::size_t i = 0; i < report.sizes.size(); ++i) {
    const auto& size = report.sizes[i];
    const auto& iface = report.interfaces[i];
    const auto& coup = report.coupling[i];
    out.AddRow({size.name, Num(size.nloc), Num(iface.class_count),
                Num(iface.max_public_methods),
                support::FormatDouble(iface.mean_params, 2),
                Num(iface.max_params), Num(coup.efferent_modules),
                support::FormatDouble(coup.cohesion, 2)});
  }
  return out.ToAscii();
}

std::string RenderUnitDesignStats(
    const std::vector<rules::UnitDesignStats>& stats) {
  Table out({"Module", "Funcs", "MultiExit", "DynAlloc", "Uninit", "Shadow",
             "MutGlobals", "PtrParams", "Casts", "Goto", "Recursion"});
  for (const auto& s : stats) {
    out.AddRow({s.module, Num(s.functions_total),
                Num(s.functions_multi_exit) + " (" +
                    Percent(s.MultiExitFraction()) + ")",
                Num(s.dynamic_alloc_sites), Num(s.uninitialized_locals),
                Num(s.shadowing_decls), Num(s.mutable_globals),
                Num(s.pointer_params), Num(s.explicit_casts),
                Num(s.goto_statements),
                Num(s.recursive_functions_direct) + "+" +
                    Num(s.recursion_cycles_indirect) + "cyc"});
  }
  return out.ToAscii();
}

}  // namespace certkit::report
