// certkit report: renderers that turn analysis results into the tables the
// paper prints.
#ifndef CERTKIT_REPORT_RENDERERS_H_
#define CERTKIT_REPORT_RENDERERS_H_

#include <string>
#include <vector>

#include "coverage/coverage.h"
#include "metrics/architecture.h"
#include "metrics/module_metrics.h"
#include "rules/iso26262.h"
#include "rules/unit_design.h"

namespace certkit::report {

// ISO technique table with per-ASIL marks, assessed verdicts and evidence —
// the layout of the paper's Tables 1–3 extended with the measured columns.
std::string RenderTechniqueAssessment(const rules::TechniqueTable& table,
                                      const rules::TableAssessment& assessment);

// Figure 3 data: per-module LOC, functions, and CC-threshold counts.
std::string RenderModuleComplexity(
    const std::vector<metrics::ModuleMetrics>& modules);

// Figure 5 / Figure 6 data: per-unit coverage rows plus the average.
std::string RenderCoverage(const std::vector<cov::CoverageRow>& rows,
                           bool include_mcdc);

// Table 2 support: per-module architectural metrics.
std::string RenderArchitecture(const metrics::ArchitectureReport& report);

// Table 3 support: per-module unit-design statistics.
std::string RenderUnitDesignStats(
    const std::vector<rules::UnitDesignStats>& stats);

}  // namespace certkit::report

#endif  // CERTKIT_REPORT_RENDERERS_H_
