// certkit report: text-table rendering for benches, examples, and reports.
#ifndef CERTKIT_REPORT_TABLE_H_
#define CERTKIT_REPORT_TABLE_H_

#include <string>
#include <vector>

namespace certkit::report {

// A simple column-aligned text table with ASCII, CSV, and Markdown renderers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; it must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);
  std::size_t row_count() const { return rows_.size(); }

  std::string ToAscii() const;
  std::string ToCsv() const;
  std::string ToMarkdown() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a [0,1] ratio as a percentage with one decimal ("83.2%").
std::string Percent(double ratio);

}  // namespace certkit::report

#endif  // CERTKIT_REPORT_TABLE_H_
