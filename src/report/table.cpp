#include "report/table.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"
#include "support/strings.h"

namespace certkit::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CERTKIT_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  CERTKIT_CHECK_MSG(cells.size() == headers_.size(),
                    "row has " << cells.size() << " cells, table has "
                               << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

std::string Table::ToAscii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ' + row[c] + std::string(widths[c] - row[c].size(), ' ') +
              " |";
    }
    return line + '\n';
  };
  std::string sep = "+";
  for (std::size_t w : widths) sep += std::string(w + 2, '-') + '+';
  sep += '\n';

  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string Table::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    return '"' + support::ReplaceAll(cell, "\"", "\"\"") + '"';
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::ToMarkdown() const {
  auto render_row = [](const std::vector<std::string>& row) {
    std::string line = "|";
    for (const auto& cell : row) line += ' ' + cell + " |";
    return line + '\n';
  };
  std::string out = render_row(headers_) + "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out += " --- |";
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string Percent(double ratio) {
  return support::FormatDouble(100.0 * ratio, 1) + "%";
}

}  // namespace certkit::report
