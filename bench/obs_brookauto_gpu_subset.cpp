// Extension experiment — the paper's proposed remedy for Observations 3-4:
// "alternative initiatives like the Brook Auto GPU programming language help
// in simplifying certification: in the same way that MISRA C constraints C,
// Brook Auto defines a subset ... that [is] certification friendly, without
// limiting the expressiveness of the language. For instance, Brook Auto does
// not expose pointers to the programmer ... Furthermore, Brook Auto achieves
// competitive performance."
//
// Three measurements:
//  1. Static: the scale_bias kernel written CUDA-style (Figure 4) vs
//     Brook-Auto-style — MISRA/CUDA-dialect findings per variant.
//  2. Dynamic: both implementations compute identical results.
//  3. Performance: stream-API overhead vs the raw-pointer kernel.
#include <benchmark/benchmark.h>

#include <vector>

#include "ast/parser.h"
#include "bench/bench_util.h"
#include "coverage/coverage.h"
#include "gpusim/brookauto.h"
#include "rules/misra.h"

namespace {

// ---------------------------------------------------------------- static --
constexpr const char* kCudaVariant = R"cpp(
__global__ void scale_bias_gpu(float* output, const float* biases,
                               float scale, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    output[i] = output[i] * scale + biases[i];
  }
}

void scale_bias(float* host_values, const float* host_biases, float scale,
                int n) {
  float* dev_values;
  float* dev_biases;
  cudaMalloc(&dev_values, n * sizeof(float));
  cudaMalloc(&dev_biases, n * sizeof(float));
  cudaMemcpy(dev_values, host_values, n * sizeof(float),
             cudaMemcpyHostToDevice);
  cudaMemcpy(dev_biases, host_biases, n * sizeof(float),
             cudaMemcpyHostToDevice);
  scale_bias_gpu<<<(n + 255) / 256, 256>>>(dev_values, dev_biases, scale, n);
  cudaMemcpy(host_values, dev_values, n * sizeof(float),
             cudaMemcpyDeviceToHost);
  cudaFree(dev_values);
  cudaFree(dev_biases);
}
)cpp";

constexpr const char* kBrookVariant = R"cpp(
void scale_bias(brookauto::Stream<float>& values,
                const brookauto::Stream<float>& biases, float scale) {
  brookauto::Transform2(values, biases, &values,
                        [scale](float v, float b) { return v * scale + b; });
}
)cpp";

// --------------------------------------------------------------- dynamic --
std::vector<float> RunBrookScaleBias(const std::vector<float>& values,
                                     const std::vector<float>& biases,
                                     float scale, gpusim::Device& device) {
  brookauto::Stream<float> v(values.size(), device);
  brookauto::Stream<float> b(biases.size(), device);
  brookauto::Stream<float> out(values.size(), device);
  v.Write(values);
  b.Write(biases);
  brookauto::Transform2(
      v, b, &out, [scale](float x, float y) { return x * scale + y; });
  return out.Read();
}

std::vector<float> RunCudaStyleScaleBias(const std::vector<float>& values,
                                         const std::vector<float>& biases,
                                         float scale,
                                         gpusim::Device& device) {
  // Raw-pointer device code, exactly as in Figure 4 (on gpusim).
  const std::size_t n = values.size();
  float* dev_values = static_cast<float*>(device.Malloc(n * sizeof(float)));
  float* dev_biases = static_cast<float*>(device.Malloc(n * sizeof(float)));
  device.MemcpyHostToDevice(dev_values, values.data(), n * sizeof(float));
  device.MemcpyHostToDevice(dev_biases, biases.data(), n * sizeof(float));
  gpusim::Dim3 grid{static_cast<unsigned>((n + 255) / 256), 1, 1};
  device.Launch(grid, gpusim::Dim3{256, 1, 1},
                [=](const gpusim::KernelContext& ctx) {
                  const std::size_t i = ctx.GlobalX();
                  if (i < n) {
                    dev_values[i] = dev_values[i] * scale + dev_biases[i];
                  }
                });
  std::vector<float> out(n);
  device.MemcpyDeviceToHost(out.data(), dev_values, n * sizeof(float));
  device.Free(dev_values);
  device.Free(dev_biases);
  return out;
}

void BM_ScaleBiasCudaStyle(benchmark::State& state) {
  certkit::cov::SetProbesEnabled(false);
  auto& device = gpusim::Device::Instance();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> values(n, 1.5f), biases(n, 0.25f);
  for (auto _ : state) {
    auto out = RunCudaStyleScaleBias(values, biases, 2.0f, device);
    benchmark::DoNotOptimize(out[0]);
  }
}
BENCHMARK(BM_ScaleBiasCudaStyle)->Arg(1 << 14)->Arg(1 << 18)->Unit(
    benchmark::kMicrosecond);

void BM_ScaleBiasBrookAuto(benchmark::State& state) {
  certkit::cov::SetProbesEnabled(false);
  auto& device = gpusim::Device::Instance();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> values(n, 1.5f), biases(n, 0.25f);
  for (auto _ : state) {
    auto out = RunBrookScaleBias(values, biases, 2.0f, device);
    benchmark::DoNotOptimize(out[0]);
  }
}
BENCHMARK(BM_ScaleBiasBrookAuto)->Arg(1 << 14)->Arg(1 << 18)->Unit(
    benchmark::kMicrosecond);

void PrintStaticComparison() {
  benchutil::PrintHeader(
      "Brook Auto extension — static findings: CUDA style vs stream style");
  struct Variant {
    const char* name;
    const char* source;
  };
  for (const Variant v : {Variant{"CUDA style (Figure 4)", kCudaVariant},
                          Variant{"Brook Auto style", kBrookVariant}}) {
    auto parsed = certkit::ast::ParseSource("variant.cu", v.source);
    CERTKIT_CHECK(parsed.ok());
    const auto misra = certkit::rules::CheckMisra(parsed.value());
    const auto cuda = certkit::rules::AnalyzeCudaDialect(parsed.value());
    std::int64_t pointer_params = 0;
    for (const auto& fn : parsed.value().functions) {
      for (const auto& p : fn.params) {
        if (p.type_text.find('*') != std::string::npos) ++pointer_params;
      }
    }
    std::printf("  %-24s MISRA findings: %2zu   pointer params: %2lld   "
                "cudaMalloc/Free sites: %d\n",
                v.name, misra.findings.size(),
                static_cast<long long>(pointer_params),
                cuda.cuda_malloc_calls + cuda.cuda_free_calls);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  PrintStaticComparison();

  benchutil::PrintHeader("Dynamic equivalence and performance");
  certkit::cov::SetProbesEnabled(false);
  auto& device = gpusim::Device::Instance();
  std::vector<float> values(1 << 16), biases(1 << 16);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<float>(i % 97) * 0.25f;
    biases[i] = static_cast<float>(i % 31) * 0.5f;
  }
  const auto cuda_out = RunCudaStyleScaleBias(values, biases, 2.0f, device);
  const auto brook_out = RunBrookScaleBias(values, biases, 2.0f, device);
  bool identical = cuda_out == brook_out;
  std::printf("  identical results      : %s\n", identical ? "yes" : "NO");

  const double t_cuda = benchutil::TimeSeconds(
      [&] { RunCudaStyleScaleBias(values, biases, 2.0f, device); }, 5);
  const double t_brook = benchutil::TimeSeconds(
      [&] { RunBrookScaleBias(values, biases, 2.0f, device); }, 5);
  std::printf("  CUDA-style wall time   : %8.3f ms\n", 1e3 * t_cuda);
  std::printf("  Brook-Auto wall time   : %8.3f ms (%.2fx of CUDA style)\n",
              1e3 * t_brook, t_brook / t_cuda);
  std::printf(
      "\nPaper reference: Brook Auto does not expose pointers and achieves\n"
      "competitive performance with low-level GPU languages — the stream\n"
      "variant eliminates every pointer/dynamic-memory finding while\n"
      "computing identical results.\n");
  return identical ? 0 : 1;
}
