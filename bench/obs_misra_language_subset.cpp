// Experiment E10 — §3.1.2 of the paper ("Use of language subsets",
// Observations 2-4): MISRA-subset violation census over the CPU code, and
// the CUDA-dialect analysis behind Figure 4 (device code is built on
// pointers and dynamic device memory).
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "bench/bench_util.h"
#include "rules/misra.h"

namespace {

void BM_MisraCheckCorpus(benchmark::State& state) {
  const auto& corpus = benchutil::Corpus();
  for (auto _ : state) {
    std::int64_t findings = 0;
    for (const auto& mod : corpus.modules) {
      for (const auto& file : mod.files) {
        findings += static_cast<std::int64_t>(
            certkit::rules::CheckMisra(file).findings.size());
      }
    }
    benchmark::DoNotOptimize(findings);
  }
}
BENCHMARK(BM_MisraCheckCorpus)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto& corpus = benchutil::Corpus();

  benchutil::PrintHeader(
      "Observation 2 — MISRA-subset violations in the CPU code");
  std::map<std::string, std::int64_t> by_rule;
  std::int64_t total = 0, functions = 0;
  for (const auto& mod : corpus.modules) {
    for (const auto& file : mod.files) {
      auto report = certkit::rules::CheckMisra(file);
      functions += report.entities_checked;
      for (const auto& f : report.findings) {
        ++by_rule[f.rule_id];
        ++total;
      }
    }
  }
  std::printf("  %-14s %10s\n", "rule", "violations");
  for (const auto& [rule, count] : by_rule) {
    std::printf("  %-14s %10lld\n", rule.c_str(),
                static_cast<long long>(count));
  }
  std::printf("  %-14s %10lld  (over %lld functions)\n", "TOTAL",
              static_cast<long long>(total),
              static_cast<long long>(functions));
  std::printf(
      "\nObservation 2: the CPU part of AD frameworks is not programmed\n"
      "according to any safety-related guideline; adherence to a subset\n"
      "like MISRA C is possible with moderate effort.\n");

  benchutil::PrintHeader(
      "Observations 3-4 — CUDA dialect census (Figure 4 discussion)");
  certkit::rules::CudaDialectStats cuda;
  for (const auto& mod : corpus.modules) {
    for (const auto& file : mod.files) {
      const auto s = certkit::rules::AnalyzeCudaDialect(file);
      cuda.kernel_count += s.kernel_count;
      cuda.device_fn_count += s.device_fn_count;
      cuda.kernel_pointer_params += s.kernel_pointer_params;
      cuda.kernels_with_pointer_params += s.kernels_with_pointer_params;
      cuda.cuda_malloc_calls += s.cuda_malloc_calls;
      cuda.cuda_memcpy_calls += s.cuda_memcpy_calls;
      cuda.cuda_free_calls += s.cuda_free_calls;
    }
  }
  std::printf("  __global__ kernels               : %d\n", cuda.kernel_count);
  std::printf("  kernels with pointer parameters  : %d (%.0f%%)\n",
              cuda.kernels_with_pointer_params,
              cuda.kernel_count > 0
                  ? 100.0 * cuda.kernels_with_pointer_params /
                        cuda.kernel_count
                  : 0.0);
  std::printf("  pointer parameters in kernels    : %d\n",
              cuda.kernel_pointer_params);
  std::printf("  cudaMalloc-family call sites     : %d\n",
              cuda.cuda_malloc_calls);
  std::printf("  cudaMemcpy call sites            : %d\n",
              cuda.cuda_memcpy_calls);
  std::printf("  cudaFree call sites              : %d\n",
              cuda.cuda_free_calls);
  std::printf(
      "\nObservation 3: no guideline or language subset exists for GPU\n"
      "code. Observation 4: CUDA code intrinsically uses features not\n"
      "recommended in ISO 26262 — every kernel above takes raw device\n"
      "pointers to dynamically allocated memory (cf. scale_bias_gpu in\n"
      "Figure 4 of the paper).\n");
  return 0;
}
