// Experiment E9 — Table 3 of the paper (ISO 26262-6 Table 8): software unit
// design & implementation, with the quantitative findings of Observation 14:
// 41% multi-exit functions in object detection (perception), pervasive
// dynamic allocation, uninitialized variables, ~900 globals in perception,
// unconditional jumps, and a few recursions.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "report/renderers.h"
#include "rules/assessor.h"

namespace {

void BM_AssessUnitDesign(benchmark::State& state) {
  // The per-file work is already done by the driver; the benchmark measures
  // the assessment itself over the precomputed inputs.
  const auto inputs = benchutil::Corpus().MakeAssessorInputs();
  for (auto _ : state) {
    certkit::rules::Assessor assessor(inputs);
    auto table = assessor.AssessUnitDesign();
    benchmark::DoNotOptimize(table.assessments.size());
  }
}
BENCHMARK(BM_AssessUnitDesign)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchutil::PrintHeader(
      "Table 3 — SW unit design & implementation (ISO26262_6 Table 8)");
  const auto& corpus = benchutil::Corpus();
  certkit::rules::Assessor assessor(corpus.MakeAssessorInputs());
  const auto assessment = assessor.AssessUnitDesign();
  std::printf("%s\n",
              certkit::report::RenderTechniqueAssessment(
                  certkit::rules::UnitDesignTable(), assessment)
                  .c_str());

  benchutil::PrintHeader("Per-module unit-design statistics");
  std::vector<certkit::rules::UnitDesignStats> stats;
  for (const auto& ud : assessor.unit_design()) stats.push_back(ud.stats);
  std::printf("%s\n",
              certkit::report::RenderUnitDesignStats(stats).c_str());
  for (const auto& s : stats) {
    if (s.module == "perception") {
      std::printf(
          "Perception module: %.0f%% multi-exit functions (paper: 41%% in\n"
          "object detection), %lld mutable globals (paper: ~900).\n",
          100.0 * s.MultiExitFraction(),
          static_cast<long long>(s.mutable_globals));
    }
  }
  return 0;
}
