// Experiment — the normative coverage tables behind the paper's §3.2/§3.3:
// ISO 26262-6 Table 10 (structural coverage at the unit level: statement,
// branch, MC/DC) and Table 12 (architectural level: function and call
// coverage), assessed against live measurements:
//   * Table 10 over the instrumented YOLO-style detector under the
//     real-scenario tests (the Figure 5 workload);
//   * Table 12 over the AD pipeline — first after a perception-only unit
//     test (partial), then after a closed-loop drive (complete).
#include <benchmark/benchmark.h>

#include "ad/pipeline.h"
#include "bench/bench_util.h"
#include "coverage/coverage.h"
#include "report/renderers.h"
#include "rules/coverage_assessor.h"

namespace {

void RunDetectorWorkload() {
  using namespace adpilot;
  ScenarioConfig cfg;
  cfg.num_vehicles = 3;
  cfg.seed = 606;
  Scenario scenario(cfg);
  Perception perception;
  Pose ego{{0.0, -2.0}, 0.0};
  for (int tick = 0; tick < 20; ++tick) {
    scenario.Step(0.1);
    ego.position.x += 0.5;
    nn::Tensor frame = scenario.RenderCameraFrame(ego);
    perception.Process(frame, ego, 0.1);
  }
}

void BM_PipelineTick(benchmark::State& state) {
  adpilot::PilotConfig cfg;
  cfg.scenario.seed = 8;
  adpilot::ApolloPilot pilot(cfg);
  for (auto _ : state) {
    auto report = pilot.Tick();
    benchmark::DoNotOptimize(report.time);
  }
}
BENCHMARK(BM_PipelineTick)->Unit(benchmark::kMillisecond);

void PrintAssessment(const certkit::rules::TechniqueTable& table,
                     const certkit::rules::TableAssessment& assessment) {
  std::printf("%s\n", certkit::report::RenderTechniqueAssessment(
                          table, assessment)
                          .c_str());
  using certkit::rules::Asil;
  for (Asil asil : {Asil::kA, Asil::kB, Asil::kC, Asil::kD}) {
    std::printf("  meets ASIL-%s: %s\n", certkit::rules::AsilName(asil),
                certkit::rules::MeetsAsil(table, assessment, asil) ? "yes"
                                                                   : "no");
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // --- Table 10: unit-level coverage of the detector ---
  certkit::cov::Registry::Instance().ResetAll();
  RunDetectorWorkload();
  std::vector<certkit::cov::CoverageRow> rows;
  for (const auto& row : certkit::cov::Snapshot()) {
    if (row.unit.rfind("yolo/", 0) == 0) rows.push_back(row);
  }
  benchutil::PrintHeader(
      "ISO 26262-6 Table 10 — unit-level structural coverage of the "
      "YOLO-style detector under real-scenario tests");
  PrintAssessment(certkit::rules::UnitCoverageTable(),
                  certkit::rules::AssessUnitCoverage(rows));
  std::printf(
      "\nObservation 10 (paper): coverage is low with available tests; the\n"
      "highly-recommended criteria are not met at any ASIL without\n"
      "additional test cases.\n");

  // --- Table 12: architectural coverage of the AD pipeline ---
  auto& pipeline_unit =
      certkit::cov::Registry::Instance().GetOrCreate("adpilot/pipeline.cc");

  benchutil::PrintHeader(
      "ISO 26262-6 Table 12 — architectural coverage after unit tests only");
  pipeline_unit.Reset();
  {
    // Unit tests drive the modules directly (as tests/ does), never through
    // the integrated pipeline — so no Tick->stage edge executes and
    // architectural coverage stays at zero: unit testing alone cannot
    // provide the integration-level evidence.
    RunDetectorWorkload();
  }
  PrintAssessment(certkit::rules::IntegrationCoverageTable(),
                  certkit::rules::AssessIntegrationCoverage(
                      pipeline_unit.FunctionCoverage(),
                      pipeline_unit.CallCoverage()));
  std::printf("  uncovered stages:");
  for (const auto& name : pipeline_unit.UncoveredFunctions()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  benchutil::PrintHeader(
      "ISO 26262-6 Table 12 — architectural coverage after the closed-loop "
      "integration drive");
  pipeline_unit.Reset();
  {
    adpilot::PilotConfig cfg;
    cfg.scenario.seed = 9;
    adpilot::ApolloPilot pilot(cfg);
    pilot.Run(3.0);
  }
  PrintAssessment(certkit::rules::IntegrationCoverageTable(),
                  certkit::rules::AssessIntegrationCoverage(
                      pipeline_unit.FunctionCoverage(),
                      pipeline_unit.CallCoverage()));
  std::printf(
      "\nThe integration drive exercises every pipeline stage and every\n"
      "Tick->stage call edge — the architectural-coverage evidence ISO\n"
      "26262-6 asks for at the software-integration level.\n");
  return 0;
}
