// Tick-path performance driver — the headline claim of the register-tiled,
// allocation-free tick work, runnable as one self-checking binary.
//
// Four contracts, each checked at runtime (nonzero exit on any breach, so
// CI treats this binary like a test):
//
//  1. SPEEDUP — the optimized tick (int8 detector: PMADDWD dot-product
//     GEMM over a transposed int16 patch matrix, snapshotted weights,
//     release-flavor probes-off layer loops) is at least --speedup_floor
//     times faster (default 10x) than the fig7 CPU-BLAS baseline (fp32
//     kCpuNaive, same pipeline, same scenario). Both arms run with
//     coverage probes off: the comparison is kernel against kernel, not
//     instrumentation against its absence. Arms alternate block-wise so
//     frequency/thermal drift cancels instead of biasing one arm.
//  2. ALLOCATIONS — after warm-up, ApolloPilot::Tick performs ZERO heap
//     allocations in either arm (counting operator new/delete replacements
//     from support/alloc_hooks.cpp; skipped in sanitizer trees where the
//     sanitizer runtime owns the allocator).
//  3. ACCURACY — on the detector's real layer-0 shape, the int8 conv
//     output tracks the bit-exact fp32 reference within the theoretical
//     quantization-grid error bound (the same gate the containment test
//     enforces: K/2 * (in_step*|w|max + w_step*|x|max + in_step*w_step)).
//  4. GEMM — micro::Sgemm stays bit-identical to cpublas::Sgemm on the
//     representative shape while being faster; both GFLOP/s are reported,
//     plus the int8 dot-kernel's GOPS.
//
// Output is one JSON document. Wall-clock fields vary run to run, so the
// file is *not* byte-stable; a reference run is committed as
// bench/BENCH_pipeline.json.
//
// Usage:
//   pipeline_tick [--ticks N] [--warmup N] [--blocks N] [--speedup_floor X]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ad/pipeline.h"
#include "coverage/coverage.h"
#include "kernels/gemm.h"
#include "nn/layers.h"
#include "support/alloc_counter.h"
#include "support/flags.h"
#include "support/rng.h"
#include "timing/timing.h"

namespace {

using Clock = std::chrono::steady_clock;

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "pipeline_tick: CONTRACT FAILURE: %s\n",
                 what.c_str());
    ++g_failures;
  }
}

double Percentile(std::vector<double>* samples, double p) {
  std::sort(samples->begin(), samples->end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(samples->size() - 1) + 0.5);
  return (*samples)[idx];
}

// Same rationale as the tickperf harness: ExecutionTimer::Record runs
// inside the tick, so its sample buffers must be at capacity before the
// zero-allocation window opens.
void ReserveTickTimers(int ticks) {
  static const char* kTimers[] = {
      "adpilot/tick",     "adpilot/perception",  "adpilot/prediction",
      "adpilot/planning", "adpilot/control",     "adpilot/canbus",
      "adpilot/localization", "adpilot/safety",  "adpilot/tick_effective",
  };
  auto& registry = certkit::timing::TimerRegistry::Instance();
  for (const char* name : kTimers) {
    registry.GetOrCreate(name).Reserve(static_cast<std::size_t>(ticks) + 8);
  }
}

adpilot::PilotConfig MakeConfig(bool quantized) {
  adpilot::PilotConfig cfg;
  // Both arms run the fig7 CPU reference backend; the only difference is
  // the quantized-weights switch that routes convs onto the int8 path.
  cfg.perception.backend = nn::Backend::kCpuNaive;
  cfg.perception.quantized_weights = quantized;
  // The watchdog compares against wall-clock time; on a loaded machine a
  // slow-but-correct baseline tick must not become a logged violation
  // (violations allocate their message strings).
  cfg.safety.tick_deadline = 1e9;
  return cfg;
}

// One block of per-tick latency samples. A fresh pilot per block keeps the
// workload identical across blocks and arms (same scenario schedule from
// tick 0); the untimed warm-up grows every buffer to its peak size first.
void MeasureBlock(bool quantized, int warmup, int ticks,
                  std::vector<double>* out) {
  adpilot::ApolloPilot pilot(MakeConfig(quantized));
  for (int t = 0; t < warmup; ++t) pilot.Tick();
  for (int t = 0; t < ticks; ++t) {
    const auto t0 = Clock::now();
    pilot.Tick();
    const auto t1 = Clock::now();
    out->push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
}

// Steady-state allocation count for one arm: allocations per measured tick
// after warm-up (must be exactly zero when the counting hooks are linked).
std::uint64_t SteadyAllocs(bool quantized, int warmup, int ticks) {
  adpilot::ApolloPilot pilot(MakeConfig(quantized));
  for (int t = 0; t < warmup; ++t) pilot.Tick();
  ReserveTickTimers(ticks);
  certkit::support::AllocScope scope;
  for (int t = 0; t < ticks; ++t) pilot.Tick();
  return scope.allocations();
}

// Accuracy gate on the detector's real layer-0 shape (3->8 channels, 3x3,
// 64x64): int8 output vs the bit-exact fp32 reference, bounded by the
// quantization-grid error sum — the containment test's formula.
double AccuracyGate(float* bound_out) {
  const int in_c = 3, out_c = 8, k = 3, hw = 64;
  std::vector<float> weights(static_cast<std::size_t>(out_c) * in_c * k * k);
  std::vector<float> bias(out_c);
  certkit::support::Xoshiro256 rng(0xBEEFu);
  for (float& w : weights) w = static_cast<float>(rng.UniformDouble(-1, 1));
  for (float& b : bias) b = static_cast<float>(rng.UniformDouble(-1, 1));

  nn::ConvLayer fp32(in_c, out_c, k, 1, 1, weights, bias,
                     nn::Backend::kCpuNaive);
  nn::ConvLayer quant(in_c, out_c, k, 1, 1, weights, bias,
                      nn::Backend::kCpuNaive);
  quant.SetInputQuantization(true);

  nn::Tensor input(1, in_c, hw, hw);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input.data()[i] = static_cast<float>(rng.UniformDouble(-4, 4));
  }

  float in_amax = 0.0f, w_amax = 0.0f;
  for (std::size_t i = 0; i < input.size(); ++i) {
    in_amax = std::max(in_amax, std::fabs(input.data()[i]));
  }
  for (const float w : weights) w_amax = std::max(w_amax, std::fabs(w));
  const float in_step = in_amax / 127.0f;
  const float w_step = w_amax / 127.0f;
  const float patch = static_cast<float>(in_c) * k * k;
  *bound_out =
      patch * 0.5f *
          (in_step * w_amax + w_step * in_amax + in_step * w_step) +
      1e-4f;

  nn::Tensor want, got;
  fp32.ForwardInto(input, &want);
  quant.ForwardInto(input, &got);
  Check(got.size() == want.size(), "accuracy gate: output shape mismatch");
  Check(std::memcmp(got.data(), want.data(),
                    got.size() * sizeof(float)) != 0,
        "accuracy gate: int8 path did not run (outputs bit-identical)");

  double max_abs_err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    max_abs_err = std::max(
        max_abs_err,
        static_cast<double>(std::fabs(got.data()[i] - want.data()[i])));
  }
  return max_abs_err;
}

// GEMM comparison on a representative square shape: wall time per call for
// the microkernel vs the naive CPU-BLAS reference, with a bit-identity
// check (the blocking must not change a single ulp).
struct GemmResult {
  double micro_gflops = 0.0;
  double cpublas_gflops = 0.0;
  double int8_gops = 0.0;
};

GemmResult GemmCompare() {
  const kernels::GemmShape shape{256, 256, 256};
  const std::size_t mk = 256 * 256;
  std::vector<float> a(mk), b(mk), c_micro(mk), c_ref(mk);
  certkit::support::Xoshiro256 rng(0xC0FFEEu);
  for (float& v : a) v = static_cast<float>(rng.UniformDouble(-1, 1));
  for (float& v : b) v = static_cast<float>(rng.UniformDouble(-1, 1));

  const double flops = 2.0 * 256 * 256 * 256;
  GemmResult r;

  {  // reference: one warm call, then timed reps
    kernels::cpublas::Sgemm(a.data(), b.data(), c_ref.data(), shape);
    const int reps = 3;
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
      kernels::cpublas::Sgemm(a.data(), b.data(), c_ref.data(), shape);
    }
    const auto t1 = Clock::now();
    r.cpublas_gflops =
        flops * reps /
        std::chrono::duration<double>(t1 - t0).count() / 1e9;
  }
  {
    kernels::micro::Sgemm(a.data(), b.data(), c_micro.data(), shape);
    const int reps = 10;
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
      kernels::micro::Sgemm(a.data(), b.data(), c_micro.data(), shape);
    }
    const auto t1 = Clock::now();
    r.micro_gflops =
        flops * reps /
        std::chrono::duration<double>(t1 - t0).count() / 1e9;
  }
  Check(std::memcmp(c_micro.data(), c_ref.data(), mk * sizeof(float)) == 0,
        "micro::Sgemm not bit-identical to cpublas::Sgemm");

  {  // the int8 inner kernel the quantized conv path actually runs
    std::vector<std::int16_t> qa(mk), qbt(mk);
    std::vector<std::int32_t> qc(mk);
    for (std::size_t i = 0; i < mk; ++i) {
      qa[i] = static_cast<std::int16_t>((i * 7) % 255) - 127;
      qbt[i] = static_cast<std::int16_t>((i * 13) % 255) - 127;
    }
    kernels::micro::GemmS16S32DotT(qa.data(), qbt.data(), qc.data(), shape);
    const int reps = 20;
    const auto t0 = Clock::now();
    for (int i = 0; i < reps; ++i) {
      kernels::micro::GemmS16S32DotT(qa.data(), qbt.data(), qc.data(),
                                     shape);
    }
    const auto t1 = Clock::now();
    r.int8_gops = flops * reps /
                  std::chrono::duration<double>(t1 - t0).count() / 1e9;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  certkit::support::FlagParser flags(argc, argv);
  const int ticks = static_cast<int>(*flags.GetInt("ticks", 40));
  const int warmup = static_cast<int>(*flags.GetInt("warmup", 20));
  const int blocks = static_cast<int>(*flags.GetInt("blocks", 3));
  const double speedup_floor =
      static_cast<double>(*flags.GetInt("speedup_floor", 10));

  // Release flavor: probes off for both arms (see the header comment).
  certkit::cov::SetProbesEnabled(false);

  // --- 1. accuracy gate ----------------------------------------------------
  float bound = 0.0f;
  const double max_abs_err = AccuracyGate(&bound);
  Check(max_abs_err <= bound,
        "int8 conv drifted past the quantization-grid error bound (" +
            std::to_string(max_abs_err) + " > " + std::to_string(bound) +
            ")");

  // --- 2. GEMM micro vs cpublas -------------------------------------------
  const GemmResult gemm = GemmCompare();
  Check(gemm.micro_gflops > gemm.cpublas_gflops,
        "microkernel not faster than the naive reference");

  // --- 3. steady-state allocations ----------------------------------------
  const bool counting = certkit::support::AllocCountingActive();
  const std::uint64_t base_allocs = SteadyAllocs(false, warmup, ticks);
  const std::uint64_t opt_allocs = SteadyAllocs(true, warmup, ticks);
  if (counting) {
    Check(base_allocs == 0,
          "baseline steady-state tick touched the heap " +
              std::to_string(base_allocs) + " times");
    Check(opt_allocs == 0,
          "optimized steady-state tick touched the heap " +
              std::to_string(opt_allocs) + " times");
  }

  // --- 4. tick latency, alternating arms ----------------------------------
  std::vector<double> base_us, opt_us;
  for (int b = 0; b < blocks; ++b) {
    MeasureBlock(false, warmup, ticks, &base_us);
    MeasureBlock(true, warmup, ticks, &opt_us);
  }
  const double base_p50 = Percentile(&base_us, 0.50);
  const double base_p99 = Percentile(&base_us, 0.99);
  const double opt_p50 = Percentile(&opt_us, 0.50);
  const double opt_p99 = Percentile(&opt_us, 0.99);
  const double speedup = opt_p50 > 0.0 ? base_p50 / opt_p50 : 0.0;
  Check(speedup >= speedup_floor,
        "tick speedup " + std::to_string(speedup) + "x below the " +
            std::to_string(speedup_floor) + "x floor");

  certkit::cov::SetProbesEnabled(true);

  std::printf(
      "{\"pipeline_tick\":{\"ticks_per_block\":%d,\"blocks\":%d,"
      "\"warmup\":%d,"
      "\"baseline\":{\"backend\":\"cpu_naive_fp32\",\"p50_us\":%.1f,"
      "\"p99_us\":%.1f,\"steady_allocs_per_%d_ticks\":%llu},"
      "\"optimized\":{\"backend\":\"cpu_int8_dott\",\"p50_us\":%.1f,"
      "\"p99_us\":%.1f,\"steady_allocs_per_%d_ticks\":%llu},"
      "\"speedup_p50\":%.2f,\"speedup_floor\":%.1f,"
      "\"alloc_counting_active\":%s,"
      "\"gemm_256\":{\"micro_gflops\":%.2f,\"cpublas_gflops\":%.2f,"
      "\"int8_dott_gops\":%.2f,\"bit_identical\":true},"
      "\"int8_accuracy\":{\"max_abs_err\":%.6f,\"grid_bound\":%.6f},"
      "\"checks_failed\":%d}}\n",
      ticks, blocks, warmup, base_p50, base_p99, ticks,
      static_cast<unsigned long long>(base_allocs), opt_p50, opt_p99, ticks,
      static_cast<unsigned long long>(opt_allocs), speedup, speedup_floor,
      counting ? "true" : "false", gemm.micro_gflops, gemm.cpublas_gflops,
      gemm.int8_gops, max_abs_err, static_cast<double>(bound), g_failures);
  return g_failures == 0 ? 0 : 1;
}
