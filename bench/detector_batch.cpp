// Experiment E-batch — batched detector inference vs the per-frame path.
//
// A plain JSON-emitting driver (no google-benchmark harness: the default
// output must be byte-stable). For every backend it
//
//   1. runs the serial per-frame reference (TinyYoloDetector::Detect),
//   2. re-runs the same frames through DetectBatch at batch sizes 1, 3 and
//      8 and REQUIRES bit-identical detections (any mismatch exits
//      non-zero — this is the bench's correctness gate),
//   3. reports deterministic accounting: an FNV-1a digest of the detection
//      bytes, device launch/block counts for the per-frame loop vs one
//      8-batch call, and (open-sim) the tuner's modeled costs per conv of
//      the stack at batch 1 vs batch 8 with the resulting modeled speedup.
//
// Without --timing the JSON is byte-identical for a fixed --seed across any
// --jobs value (the verify skill diffs --jobs 1 against --jobs 4). With
// --timing a "timing" object is appended: wall-clock and simulated-device
// throughput for per-frame vs batch-8 — that part is measurement, not
// contract.
//
// Usage:
//   detector_batch [--seed N] [--jobs N] [--frames N] [--timing]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "coverage/coverage.h"
#include "gpusim/gpusim.h"
#include "kernels/conv.h"
#include "nn/detector.h"
#include "support/flags.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace {

// The TinyYolo conv stack (mirrors TinyYoloDetector's assembly in
// src/nn/network.cpp) at the default 64x64 input with num_classes = 2:
// in_channels, out_channels, kernel, pad, and the square input size the
// layer sees after pooling/upsampling.
struct ConvSpec {
  int in_c, out_c, k, pad, hw;
};
constexpr ConvSpec kConvStack[] = {{3, 8, 3, 1, 64},
                                   {8, 16, 3, 1, 32},
                                   {16, 32, 3, 1, 16},
                                   {32, 32, 3, 1, 8},
                                   {32, 7, 1, 0, 16}};

kernels::ConvShape ShapeOf(const ConvSpec& cs, int batch) {
  kernels::ConvShape s;
  s.batch = batch;
  s.in_channels = cs.in_c;
  s.in_h = cs.hw;
  s.in_w = cs.hw;
  s.out_channels = cs.out_c;
  s.kernel_h = cs.k;
  s.kernel_w = cs.k;
  s.stride = 1;
  s.pad = cs.pad;
  return s;
}

std::vector<nn::Tensor> MakeFrames(int count, std::uint64_t seed) {
  // Integer pixel values 0..255: exactly representable in float, so frame
  // content is reproducible bit-for-bit from the seed alone.
  certkit::support::Xoshiro256 rng(seed);
  std::vector<nn::Tensor> frames;
  frames.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    nn::Tensor f(1, 3, 64, 64);
    for (std::size_t j = 0; j < f.size(); ++j) {
      f.data()[j] = static_cast<float>(rng.UniformInt(0, 255));
    }
    frames.push_back(std::move(f));
  }
  return frames;
}

std::unique_ptr<nn::TinyYoloDetector> MakeDetector(nn::Backend backend,
                                                   std::uint64_t seed) {
  nn::DetectorConfig cfg;
  cfg.backend = backend;
  auto det = std::make_unique<nn::TinyYoloDetector>(cfg);
  nn::InitRandomWeights(det.get(), seed);
  return det;
}

bool BitsEqual(float a, float b) {
  std::uint32_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

bool SameDetections(const std::vector<nn::Detection>& a,
                    const std::vector<nn::Detection>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!BitsEqual(a[i].x, b[i].x) || !BitsEqual(a[i].y, b[i].y) ||
        !BitsEqual(a[i].w, b[i].w) || !BitsEqual(a[i].h, b[i].h) ||
        !BitsEqual(a[i].score, b[i].score) || a[i].cls != b[i].cls) {
      return false;
    }
  }
  return true;
}

// FNV-1a over the detection payload of all frames.
std::uint64_t Digest(const std::vector<std::vector<nn::Detection>>& all) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& dets : all) {
    for (const nn::Detection& d : dets) {
      mix(&d.x, sizeof(d.x));
      mix(&d.y, sizeof(d.y));
      mix(&d.w, sizeof(d.w));
      mix(&d.h, sizeof(d.h));
      mix(&d.score, sizeof(d.score));
      mix(&d.cls, sizeof(d.cls));
    }
  }
  return h;
}

double WallSeconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  certkit::support::FlagParser flags(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(*flags.GetInt("seed", 7));
  const int jobs = static_cast<int>(*flags.GetInt("jobs", 1));
  const int frame_count =
      std::max<int>(8, static_cast<int>(*flags.GetInt("frames", 8)));
  const bool timing = flags.GetBool("timing");

  // Performance flavor: uninstrumented, like the Figure 7/8 benches.
  certkit::cov::SetProbesEnabled(false);

  auto& device = gpusim::Device::Instance();
  certkit::support::ThreadPool pool(
      certkit::support::ThreadPool::ResolveJobs(jobs));
  const std::vector<nn::Tensor> frames = MakeFrames(frame_count, seed);
  const std::vector<nn::Tensor> frames8(frames.begin(), frames.begin() + 8);

  constexpr nn::Backend kBackends[] = {
      nn::Backend::kClosedSim, nn::Backend::kOpenSim, nn::Backend::kCpuNaive};

  std::printf("{\"seed\":%llu,\"frames\":%d,\"backends\":[",
              static_cast<unsigned long long>(seed), frame_count);
  std::string timing_json;
  bool first = true;
  for (const nn::Backend backend : kBackends) {
    auto det = MakeDetector(backend, seed);
    kernels::isaac_sim::ResetTuningCache();

    // Serial reference.
    std::vector<std::vector<nn::Detection>> serial;
    serial.reserve(frames.size());
    for (const nn::Tensor& f : frames) serial.push_back(det->Detect(f));

    // Identity gate: every batch size, chunked over the same frames, must
    // reproduce the serial detections bit-for-bit.
    for (const int batch : {1, 3, 8}) {
      std::size_t next = 0;
      while (next < frames.size()) {
        const std::size_t end =
            std::min(frames.size(), next + static_cast<std::size_t>(batch));
        const std::vector<nn::Tensor> chunk(frames.begin() + next,
                                            frames.begin() + end);
        const auto batched = det->DetectBatch(chunk, &pool);
        for (std::size_t i = 0; i < batched.size(); ++i) {
          if (!SameDetections(batched[i], serial[next + i])) {
            std::fprintf(stderr,
                         "FAIL: %s batch=%d frame=%zu diverges from the "
                         "serial path\n",
                         nn::BackendName(backend), batch, next + i);
            return 1;
          }
        }
        next = end;
      }
    }

    // Deterministic launch accounting: 8 per-frame passes vs one 8-batch.
    device.ResetTimers();
    for (const nn::Tensor& f : frames8) det->Detect(f);
    const std::uint64_t launches_serial = device.launch_count();
    const std::uint64_t blocks_serial = device.blocks_launched();
    device.ResetTimers();
    auto batched8 = det->DetectBatch(frames8, &pool);
    const std::uint64_t launches_batch = device.launch_count();
    const std::uint64_t blocks_batch = device.blocks_launched();

    std::printf("%s{\"backend\":\"%s\",\"batch_identity\":true,"
                "\"digest\":\"%016llx\",\"launches_serial8\":%llu,"
                "\"launches_batch8\":%llu,\"blocks_serial8\":%llu,"
                "\"blocks_batch8\":%llu",
                first ? "" : ",", nn::BackendName(backend),
                static_cast<unsigned long long>(Digest(serial)),
                static_cast<unsigned long long>(launches_serial),
                static_cast<unsigned long long>(launches_batch),
                static_cast<unsigned long long>(blocks_serial),
                static_cast<unsigned long long>(blocks_batch));
    first = false;

    if (backend == nn::Backend::kOpenSim) {
      // The tuner's own ranking signal, conv by conv: modeled cost of one
      // frame (x8) vs one 8-batch, each under the config the tuner picks
      // for that shape. Pure integer accounting — identical on every run.
      const unsigned sms = device.sm_count();
      std::uint64_t total1 = 0, total8 = 0;
      std::printf(",\"modeled_convs\":[");
      for (std::size_t i = 0; i < std::size(kConvStack); ++i) {
        const kernels::ConvShape s1 = ShapeOf(kConvStack[i], 1);
        const kernels::ConvShape s8 = ShapeOf(kConvStack[i], 8);
        const int c1 = kernels::isaac_sim::PickConfig(s1, sms);
        const int c8 = kernels::isaac_sim::PickConfig(s8, sms);
        const std::uint64_t cost1 =
            kernels::isaac_sim::ModeledConfigCost(s1, c1, sms);
        const std::uint64_t cost8 =
            kernels::isaac_sim::ModeledConfigCost(s8, c8, sms);
        total1 += cost1;
        total8 += cost8;
        std::printf("%s{\"conv\":%zu,\"config1\":%d,\"cost1\":%llu,"
                    "\"config8\":%d,\"cost8\":%llu}",
                    i == 0 ? "" : ",", i, c1,
                    static_cast<unsigned long long>(cost1), c8,
                    static_cast<unsigned long long>(cost8));
      }
      // Throughput ratio of 8 tuned single-frame stacks vs one tuned
      // 8-batch stack under the cost model (>= 2 is the acceptance bar).
      std::printf("],\"modeled_cost_per_frame\":%llu,"
                  "\"modeled_cost_batch8\":%llu,\"modeled_speedup\":%.3f",
                  static_cast<unsigned long long>(total1),
                  static_cast<unsigned long long>(total8),
                  8.0 * static_cast<double>(total1) /
                      static_cast<double>(total8));
    }
    std::printf("}");

    if (timing) {
      // Measured throughput (frames/sec): wall clock plus, for the device
      // backends, the simulated device clock. Best of 3 repetitions.
      double wall_serial = 1e99, wall_batch = 1e99;
      double dev_serial = 1e99, dev_batch = 1e99;
      for (int rep = 0; rep < 3; ++rep) {
        device.ResetTimers();
        wall_serial = std::min(wall_serial, WallSeconds([&] {
                                 for (const nn::Tensor& f : frames8) {
                                   auto dets = det->Detect(f);
                                   (void)dets;
                                 }
                               }));
        dev_serial = std::min(dev_serial, device.simulated_seconds());
        device.ResetTimers();
        wall_batch = std::min(wall_batch, WallSeconds([&] {
                                auto dets = det->DetectBatch(frames8, &pool);
                                (void)dets;
                              }));
        dev_batch = std::min(dev_batch, device.simulated_seconds());
      }
      char buf[512];
      const bool on_device = backend != nn::Backend::kCpuNaive;
      if (on_device) {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"backend\":\"%s\",\"wall_fps_serial\":%.1f,"
                      "\"wall_fps_batch8\":%.1f,\"device_fps_serial\":%.1f,"
                      "\"device_fps_batch8\":%.1f,\"device_speedup\":%.2f}",
                      timing_json.empty() ? "" : ",",
                      nn::BackendName(backend), 8.0 / wall_serial,
                      8.0 / wall_batch, 8.0 / dev_serial, 8.0 / dev_batch,
                      dev_serial / dev_batch);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"backend\":\"%s\",\"wall_fps_serial\":%.1f,"
                      "\"wall_fps_batch8\":%.1f}",
                      timing_json.empty() ? "" : ",",
                      nn::BackendName(backend), 8.0 / wall_serial,
                      8.0 / wall_batch);
      }
      timing_json += buf;
    }
  }
  std::printf("]");
  if (timing) {
    std::printf(",\"timing\":{\"jobs\":%d,\"backends\":[%s]}", jobs,
                timing_json.c_str());
  }
  std::printf("}\n");
  return 0;
}
