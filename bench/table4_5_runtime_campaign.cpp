// Experiment — ISO 26262-6 Tables 4 & 5, measured at runtime.
//
// bench/table4_5_error_mechanisms answers "which error detection/handling
// mechanisms exist in the code" by static census. This bench answers the
// question the paper's §3.1.4/§3.1.5 assessment actually poses: do the
// mechanisms *work*? It drives the closed-loop adpilot stack through a
// deterministic fault-injection matrix (one campaign run per fault kind,
// plus a fault-free baseline) and reports, per kind, how many faults were
// injected, how many the Table 4 monitors detected, how many were handled
// by a Table 5 mechanism, and the vehicle-level outcome.
//
//   $ ./table4_5_runtime_campaign [--seed N] [--ticks T]
//                                 [--onset K] [--duration D]
//                                 [--trace-out F] [--metrics-out F]
//                                 [--timing]
//
// --trace-out captures each fault run as one track of a Chrome trace-event
// file (chrome://tracing / Perfetto); --metrics-out snapshots the obs
// metrics registry after the matrix. Both exports are deterministic for a
// fixed --seed unless --timing adds the wall-clock fields.
//
// Output is a single JSON document (schema documented in README.md). The
// run is deterministic for a fixed --seed: all randomness — the scenario,
// the injector, the sensor noise — derives from explicit seeds, and the
// deadline watchdog's budget leaves two orders of magnitude of headroom
// over the real tick cost so wall-clock jitter cannot change the counts.
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "ad/pipeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/flags.h"
#include "support/io.h"
#include "timing/timing.h"

namespace {

struct CampaignRun {
  std::string fault;          // fault kind name, or "none" for the baseline
  long long injected = 0;
  long long detected = 0;     // monitor violations logged
  long long handled = 0;      // violations with a same-cycle mitigation
  long long by_monitor[adpilot::kNumMonitors] = {};
  std::string final_state;
  bool safe_stop_entered = false;
  long long nonfinite_commands = 0;
  long long overridden_commands = 0;
  bool reached_goal = false;
  bool collision = false;
  bool has_clearance = false;
  double min_clearance = 0.0;
  double distance = 0.0;
};

adpilot::PilotConfig MakePilotConfig(std::uint64_t scenario_seed) {
  adpilot::PilotConfig cfg;
  cfg.scenario.num_vehicles = 3;
  cfg.scenario.seed = scenario_seed;
  cfg.goal_x = 200.0;
  cfg.safety.tick_deadline = 0.25;  // ~100x the real tick cost
  cfg.safety.limp_home_after = 3;
  cfg.safety.safe_stop_after = 10;
  cfg.safety.recover_after = 20;
  return cfg;
}

CampaignRun RunOne(const adpilot::FaultKind* kind, std::uint64_t seed,
                   long long ticks, long long onset, long long duration) {
  CampaignRun run;
  run.fault = kind != nullptr ? adpilot::FaultKindName(*kind) : "none";

  adpilot::ApolloPilot pilot(MakePilotConfig(seed));
  adpilot::FaultCampaignConfig campaign;
  campaign.seed = seed;
  adpilot::FaultInjector injector(campaign);
  if (kind != nullptr) {
    campaign.faults.push_back(
        {*kind, onset, duration, /*magnitude=*/1.0});
    injector = adpilot::FaultInjector(campaign);
    pilot.SetFaultInjector(&injector);
  }

  for (long long t = 0; t < ticks; ++t) {
    const adpilot::TickReport report = pilot.Tick();
    if (!std::isfinite(report.command.throttle) ||
        !std::isfinite(report.command.brake) ||
        !std::isfinite(report.command.steering)) {
      ++run.nonfinite_commands;
    }
    if (report.command_overridden) ++run.overridden_commands;
    if (report.safety_state == adpilot::SafetyState::kSafeStop) {
      run.safe_stop_entered = true;
    }
  }

  run.injected = injector.total_injected();
  run.detected = pilot.safety_log().size();
  run.handled = pilot.safety_log().CountHandled();
  for (int m = 0; m < adpilot::kNumMonitors; ++m) {
    run.by_monitor[m] =
        pilot.safety_log().CountByMonitor(static_cast<adpilot::MonitorId>(m));
  }
  run.final_state = adpilot::SafetyStateName(pilot.safety_state());
  run.reached_goal = pilot.ReachedGoal();
  run.has_clearance = pilot.HasClearanceSample();
  run.min_clearance = run.has_clearance ? pilot.MinClearanceSoFar() : 0.0;
  run.collision = run.has_clearance && pilot.MinClearanceSoFar() <= 0.0;
  run.distance =
      pilot.canbus().vehicle().state().pose.position.x;
  return run;
}

void PrintRun(const CampaignRun& run, bool last) {
  std::printf("    {\n");
  std::printf("      \"fault\": \"%s\",\n", run.fault.c_str());
  std::printf("      \"injected\": %lld,\n", run.injected);
  std::printf("      \"detected\": %lld,\n", run.detected);
  std::printf("      \"handled\": %lld,\n", run.handled);
  std::printf("      \"violations_by_monitor\": {");
  for (int m = 0; m < adpilot::kNumMonitors; ++m) {
    std::printf("\"%s\": %lld%s",
                adpilot::MonitorName(static_cast<adpilot::MonitorId>(m)),
                run.by_monitor[m], m + 1 < adpilot::kNumMonitors ? ", " : "");
  }
  std::printf("},\n");
  std::printf("      \"final_state\": \"%s\",\n", run.final_state.c_str());
  std::printf("      \"safe_stop_entered\": %s,\n",
              run.safe_stop_entered ? "true" : "false");
  std::printf("      \"nonfinite_commands\": %lld,\n", run.nonfinite_commands);
  std::printf("      \"overridden_commands\": %lld,\n",
              run.overridden_commands);
  std::printf("      \"reached_goal\": %s,\n",
              run.reached_goal ? "true" : "false");
  std::printf("      \"collision\": %s,\n", run.collision ? "true" : "false");
  if (run.has_clearance) {
    std::printf("      \"min_clearance\": %.3f,\n", run.min_clearance);
  } else {
    std::printf("      \"min_clearance\": null,\n");
  }
  std::printf("      \"distance\": %.2f\n", run.distance);
  std::printf("    }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const certkit::support::FlagParser flags(argc, argv);
  const long long seed = flags.GetInt("seed", 7).value_or(7);
  const long long ticks = flags.GetInt("ticks", 300).value_or(300);
  const long long onset = flags.GetInt("onset", 40).value_or(40);
  const long long duration = flags.GetInt("duration", 25).value_or(25);
  const std::string trace_out = flags.GetOr("trace-out", "");
  const std::string metrics_out = flags.GetOr("metrics-out", "");
  const bool timing = flags.GetBool("timing");
  if (!trace_out.empty() || !metrics_out.empty()) {
    certkit::obs::SetTracingEnabled(true);
  }

  // Each fault run becomes one trace track labeled by its kind; the matrix
  // is serial, so the track order is fixed.
  const auto traced_run = [&](const adpilot::FaultKind* kind) {
    std::optional<certkit::obs::SpanCapture> capture;
    if (certkit::obs::TracingEnabled()) capture.emplace();
    CampaignRun run = RunOne(kind, static_cast<std::uint64_t>(seed), ticks,
                             onset, duration);
    if (capture.has_value()) {
      certkit::obs::TraceRecorder::Instance().AddTrack(
          std::string("fault ") + run.fault, capture->Take());
    }
    return run;
  };

  std::vector<CampaignRun> runs;
  runs.push_back(traced_run(nullptr));
  for (int k = 0; k < adpilot::kNumFaultKinds; ++k) {
    certkit::timing::TimerRegistry::Instance().ResetAll();
    const auto kind = static_cast<adpilot::FaultKind>(k);
    runs.push_back(traced_run(&kind));
  }

  long long total_injected = 0, total_detected = 0, total_handled = 0;
  long long total_nonfinite = 0;
  for (const CampaignRun& run : runs) {
    total_injected += run.injected;
    total_detected += run.detected;
    total_handled += run.handled;
    total_nonfinite += run.nonfinite_commands;
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"table4_5_runtime_campaign\",\n");
  std::printf("  \"seed\": %lld,\n", seed);
  std::printf("  \"ticks\": %lld,\n", ticks);
  std::printf("  \"onset_tick\": %lld,\n", onset);
  std::printf("  \"duration_ticks\": %lld,\n", duration);
  std::printf("  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    PrintRun(runs[i], i + 1 == runs.size());
  }
  std::printf("  ],\n");
  std::printf("  \"summary\": {\n");
  std::printf("    \"fault_kinds\": %d,\n", adpilot::kNumFaultKinds);
  std::printf("    \"total_injected\": %lld,\n", total_injected);
  std::printf("    \"total_detected\": %lld,\n", total_detected);
  std::printf("    \"total_handled\": %lld,\n", total_handled);
  std::printf("    \"total_nonfinite_commands\": %lld\n", total_nonfinite);
  std::printf("  }\n");
  std::printf("}\n");

  // Export errors go to stderr: stdout carries the JSON document above.
  if (!trace_out.empty()) {
    const auto status = certkit::support::WriteFile(
        trace_out,
        certkit::obs::ChromeTraceJson(
            certkit::obs::TraceRecorder::Instance().Snapshot(), timing));
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!metrics_out.empty()) {
    const auto status = certkit::support::WriteFile(
        metrics_out,
        certkit::obs::MetricsJson(
            certkit::obs::MetricsRegistry::Instance().Snapshot(), timing));
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return total_nonfinite == 0 ? 0 : 1;
}
