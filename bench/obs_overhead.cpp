// Flight-recorder overhead driver — the "cheap enough to leave on" claim,
// runnable as one self-checking binary.
//
// It (1) runs the same small campaign with the recorder on and off and
// asserts the campaign JSON is byte-identical — recording must be
// invisible to every deterministic output — and (2) measures per-tick
// pilot latency in alternating recorder-on/off blocks (alternation cancels
// slow frequency/thermal drift), takes the median of each population, and
// self-checks that the median overhead stays within --threshold percent
// (default 5, the DESIGN.md budget). Any broken contract prints a
// diagnosis to stderr and exits nonzero — CI treats this binary like a
// test. Output is one JSON document; the wall-clock fields vary run to
// run, so unlike campaign_coverage this file is *not* byte-stable (a
// reference run is committed as bench/BENCH_obs_overhead.json).
//
// Usage:
//   obs_overhead [--seed N] [--ticks N] [--threshold PCT]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "ad/pipeline.h"
#include "campaign/runner.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "support/flags.h"

namespace campaign = certkit::campaign;
namespace obs = certkit::obs;

namespace {

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "obs_overhead: CONTRACT FAILURE: %s\n", what.c_str());
    ++g_failures;
  }
}

double MedianMicros(std::vector<double>* samples) {
  std::sort(samples->begin(), samples->end());
  return (*samples)[samples->size() / 2];
}

// One block of per-tick latency samples with the recorder in the given
// state. A fresh pilot per block keeps the workload identical across
// blocks (same scenario schedule from tick 0).
void MeasureBlock(bool recorder_on, int ticks, std::vector<double>* out) {
  obs::SetFlightRecorderEnabled(recorder_on);
  adpilot::PilotConfig cfg;
  cfg.safety.tick_deadline = 5.0;
  adpilot::ApolloPilot pilot(cfg);
  for (int t = 0; t < ticks; ++t) {
    const auto t0 = std::chrono::steady_clock::now();
    pilot.Tick();
    const auto t1 = std::chrono::steady_clock::now();
    out->push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
}

std::string CampaignJsonWithRecorder(bool recorder_on, std::uint64_t seed) {
  obs::SetFlightRecorderEnabled(recorder_on);
  obs::ResetFlightRecorderForTesting();
  obs::MetricsRegistry::Instance().ResetAll();
  campaign::CampaignConfig config;
  config.seed = seed;
  config.jobs = 1;
  config.population = 3;
  config.generations = 1;
  config.ticks = 6;
  return campaign::CampaignJson(campaign::CampaignRunner(config).Run());
}

}  // namespace

int main(int argc, char** argv) {
  certkit::support::FlagParser flags(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(*flags.GetInt("seed", 3));
  const int ticks = static_cast<int>(*flags.GetInt("ticks", 60));
  const double threshold =
      static_cast<double>(*flags.GetInt("threshold", 5));

  // --- 1. recording is invisible to deterministic outputs ----------------
  const std::string json_on = CampaignJsonWithRecorder(true, seed);
  const std::string json_off = CampaignJsonWithRecorder(false, seed);
  const std::string json_on_again = CampaignJsonWithRecorder(true, seed);
  Check(json_on == json_off,
        "campaign JSON differs with the recorder on vs off");
  Check(json_on == json_on_again, "campaign JSON not reproducible");
  obs::SetFlightRecorderEnabled(true);
  obs::ResetFlightRecorderForTesting();  // events_per_tick counts part 2 only

  // --- 2. per-tick overhead ----------------------------------------------
  {  // warmup: touch every stage/cache before timing anything
    std::vector<double> sink;
    MeasureBlock(true, 20, &sink);
  }
  std::vector<double> on_us, off_us;
  constexpr int kBlocks = 5;
  for (int b = 0; b < kBlocks; ++b) {
    MeasureBlock(true, ticks, &on_us);
    MeasureBlock(false, ticks, &off_us);
  }
  obs::SetFlightRecorderEnabled(true);
  const double median_on = MedianMicros(&on_us);
  const double median_off = MedianMicros(&off_us);
  const double overhead_pct =
      median_off > 0.0
          ? std::max(0.0, (median_on - median_off) / median_off * 100.0)
          : 0.0;
  Check(overhead_pct <= threshold,
        "recorder overhead " + std::to_string(overhead_pct) +
            "% exceeds the " + std::to_string(threshold) + "% budget");

  const auto stats = obs::GetFlightRecorderStats();
  std::printf(
      "{\"obs_overhead\":{\"seed\":%llu,\"ticks_per_block\":%d,"
      "\"blocks\":%d,\"median_tick_on_us\":%.3f,"
      "\"median_tick_off_us\":%.3f,\"overhead_pct\":%.3f,"
      "\"threshold_pct\":%.1f,\"campaign_json_identical\":%s,"
      "\"events_per_tick\":%.1f,\"checks_failed\":%d}}\n",
      static_cast<unsigned long long>(seed), ticks, kBlocks, median_on,
      median_off, overhead_pct, threshold,
      json_on == json_off ? "true" : "false",
      static_cast<double>(stats.events) /
          static_cast<double>(kBlocks * ticks + 20),
      g_failures);
  return g_failures == 0 ? 0 : 1;
}
