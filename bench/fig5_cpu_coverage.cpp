// Experiment E3 — Figure 5 of the paper: "Coverage achieved for object
// detection (YOLO)".
//
// Runs the instrumented YOLO-style detector on a set of real-scenario test
// frames (the same kind of tests the paper drives RapiCover with) and
// reports per-file statement, branch, and MC/DC coverage. As in the paper,
// coverage is well below 100%: scenario frames never exercise letterboxing,
// the open-backend and relu paths, generic upsampling factors, or the weight
// loader's corruption handling.
#include <benchmark/benchmark.h>

#include <string>

#include "ad/perception.h"
#include "ad/scenario.h"
#include "bench/bench_util.h"
#include "campaign/baseline.h"
#include "coverage/coverage.h"
#include "report/renderers.h"

namespace {

// The scenario set itself lives in campaign::RunFigure5ScenarioSet so the
// campaign engine measures its gains against the identical baseline.

void BM_DetectorScenarioPass(benchmark::State& state) {
  using namespace adpilot;
  ScenarioConfig cfg;
  cfg.num_vehicles = 3;
  cfg.seed = 7;
  Scenario scenario(cfg);
  Perception perception;
  Pose ego{{0.0, -2.0}, 0.0};
  nn::Tensor frame = scenario.RenderCameraFrame(ego);
  for (auto _ : state) {
    auto tracked = perception.Process(frame, ego, 0.1);
    benchmark::DoNotOptimize(tracked.size());
  }
}
BENCHMARK(BM_DetectorScenarioPass)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  certkit::cov::Registry::Instance().ResetAll();
  certkit::campaign::RunFigure5ScenarioSet();

  benchutil::PrintHeader(
      "Figure 5 — Statement / branch / MC/DC coverage of the YOLO-style "
      "object-detection code under real-scenario tests");
  std::vector<certkit::cov::CoverageRow> rows;
  for (const auto& row : certkit::cov::Snapshot()) {
    if (row.unit.rfind("yolo/", 0) == 0) rows.push_back(row);
  }
  std::printf("%s\n",
              certkit::report::RenderCoverage(rows, /*include_mcdc=*/true)
                  .c_str());
  std::printf(
      "Paper reference: average coverage 83%% / 75%% / 61%% (statement /\n"
      "branch / MC/DC), with individual files as low as 19%% / 37%% / 10%%\n"
      "(Observation 10: code coverage for AD software is low with available\n"
      "tests; additional test cases are required).\n");
  return 0;
}
