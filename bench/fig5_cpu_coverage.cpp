// Experiment E3 — Figure 5 of the paper: "Coverage achieved for object
// detection (YOLO)".
//
// Runs the instrumented YOLO-style detector on a set of real-scenario test
// frames (the same kind of tests the paper drives RapiCover with) and
// reports per-file statement, branch, and MC/DC coverage. As in the paper,
// coverage is well below 100%: scenario frames never exercise letterboxing,
// the open-backend and relu paths, generic upsampling factors, or the weight
// loader's corruption handling.
#include <benchmark/benchmark.h>

#include <string>

#include "ad/perception.h"
#include "ad/scenario.h"
#include "bench/bench_util.h"
#include "coverage/coverage.h"
#include "report/renderers.h"

namespace {

void RunScenarioTests() {
  using namespace adpilot;
  // Three scenario variants = the available "real-scenario tests".
  for (std::uint64_t seed : {101ULL, 202ULL, 303ULL}) {
    ScenarioConfig cfg;
    cfg.num_vehicles = 3;
    cfg.num_pedestrians = 1;
    cfg.seed = seed;
    Scenario scenario(cfg);
    Perception perception;
    Pose ego{{0.0, -2.0}, 0.0};
    for (int tick = 0; tick < 15; ++tick) {
      scenario.Step(0.1);
      ego.position.x += 0.6;  // ego advances through traffic
      nn::Tensor frame = scenario.RenderCameraFrame(ego);
      perception.Process(frame, ego, 0.1);
    }
  }
  // One pass on the open-library build variant (the paper's Figure 7 setup
  // is exercised by the same tests).
  {
    ScenarioConfig cfg;
    cfg.num_vehicles = 2;
    cfg.seed = 404;
    Scenario scenario(cfg);
    PerceptionConfig pcfg;
    pcfg.backend = nn::Backend::kOpenSim;
    Perception perception(pcfg);
    Pose ego{{0.0, -2.0}, 0.0};
    for (int tick = 0; tick < 5; ++tick) {
      scenario.Step(0.1);
      nn::Tensor frame = scenario.RenderCameraFrame(ego);
      perception.Process(frame, ego, 0.1);
    }
  }
  // One pass with production (trained-style, non-identity) weights, and a
  // high-resolution camera frame that the preprocessor must downscale.
  // One smoke pass on the CPU-fallback build (no accelerator available).
  {
    ScenarioConfig cfg;
    cfg.num_vehicles = 1;
    cfg.seed = 505;
    Scenario scenario(cfg);
    PerceptionConfig pcfg;
    pcfg.backend = nn::Backend::kCpuNaive;
    Perception perception(pcfg);
    Pose ego{{0.0, -2.0}, 0.0};
    nn::Tensor frame = scenario.RenderCameraFrame(ego);
    perception.Process(frame, ego, 0.1);
  }
  {
    nn::DetectorConfig dcfg;
    dcfg.num_classes = 2;
    dcfg.score_threshold = 0.35f;  // tuned-down deployment variant
    nn::TinyYoloDetector detector(dcfg);
    nn::InitRandomWeights(&detector, 2024);
    nn::Tensor hires(1, 3, 128, 128);
    for (int c = 0; c < 3; ++c) {
      for (int y = 0; y < 128; ++y) {
        for (int x = 0; x < 128; ++x) {
          hires.At(0, c, y, x) =
              (y >= 40 && y < 80 && x >= 40 && x < 80) ? 220.0f : 25.0f;
        }
      }
    }
    auto dets = detector.Detect(hires);
    (void)dets;
  }
  // The deployment flow also serializes/loads weights once (happy path —
  // the loader's error handling stays uncovered, as in a real test bench).
  std::vector<float> values(64, 0.5f);
  std::string buffer;
  nn::SerializeWeights(values, &buffer);
  nn::WeightsBlob blob;
  std::string error;
  nn::DeserializeWeights(buffer, &blob, &error);
}

void BM_DetectorScenarioPass(benchmark::State& state) {
  using namespace adpilot;
  ScenarioConfig cfg;
  cfg.num_vehicles = 3;
  cfg.seed = 7;
  Scenario scenario(cfg);
  Perception perception;
  Pose ego{{0.0, -2.0}, 0.0};
  nn::Tensor frame = scenario.RenderCameraFrame(ego);
  for (auto _ : state) {
    auto tracked = perception.Process(frame, ego, 0.1);
    benchmark::DoNotOptimize(tracked.size());
  }
}
BENCHMARK(BM_DetectorScenarioPass)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  certkit::cov::Registry::Instance().ResetAll();
  RunScenarioTests();

  benchutil::PrintHeader(
      "Figure 5 — Statement / branch / MC/DC coverage of the YOLO-style "
      "object-detection code under real-scenario tests");
  std::vector<certkit::cov::CoverageRow> rows;
  for (const auto& row : certkit::cov::Snapshot()) {
    if (row.unit.rfind("yolo/", 0) == 0) rows.push_back(row);
  }
  std::printf("%s\n",
              certkit::report::RenderCoverage(rows, /*include_mcdc=*/true)
                  .c_str());
  std::printf(
      "Paper reference: average coverage 83%% / 75%% / 61%% (statement /\n"
      "branch / MC/DC), with individual files as low as 19%% / 37%% / 10%%\n"
      "(Observation 10: code coverage for AD software is low with available\n"
      "tests; additional test cases are required).\n");
  return 0;
}
