// Extension experiment — Observation 1's timing dimension: "high code
// complexity challenges ... timing analysis (e.g., worst-case execution time
// and response time) estimation."
//
// Runs the AD pipeline closed-loop at its 10 Hz period and reports, per
// stage and for the whole tick: execution-time distribution, high-water
// mark, envelope WCET, a measurement-based probabilistic WCET (Gumbel/EVT
// over block maxima), and deadline misses against the 100 ms tick budget.
#include <benchmark/benchmark.h>

#include <string>

#include "ad/pipeline.h"
#include "bench/bench_util.h"
#include "coverage/coverage.h"
#include "support/strings.h"
#include "timing/timing.h"

namespace {

void BM_PipelineTickTiming(benchmark::State& state) {
  certkit::cov::SetProbesEnabled(false);
  adpilot::PilotConfig cfg;
  cfg.scenario.seed = 44;
  adpilot::ApolloPilot pilot(cfg);
  for (auto _ : state) {
    auto report = pilot.Tick();
    benchmark::DoNotOptimize(report.time);
  }
}
BENCHMARK(BM_PipelineTickTiming)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  using certkit::timing::TimerRegistry;
  certkit::cov::SetProbesEnabled(false);  // measure release-flavor timing
  TimerRegistry::Instance().ResetAll();

  constexpr double kDeadline = 0.100;  // the 10 Hz tick budget
  {
    adpilot::PilotConfig cfg;
    cfg.scenario.num_vehicles = 3;
    cfg.scenario.seed = 77;
    cfg.goal_x = 400.0;
    adpilot::ApolloPilot pilot(cfg);
    pilot.Run(60.0);  // 600 ticks
  }

  benchutil::PrintHeader(
      "Observation 1 extension — execution-time analysis of the AD "
      "pipeline (600 ticks at 10 Hz)");
  std::printf("%-20s %6s %9s %9s %9s %9s %11s %8s\n", "task", "n",
              "mean[ms]", "p99[ms]", "HWM[ms]", "env[ms]", "pWCET[ms]",
              "misses");
  for (const auto* timer : TimerRegistry::Instance().Timers()) {
    const auto stats = timer->GetStats();
    if (stats.count == 0) continue;
    const double envelope = timer->EstimateWcetEnvelope(1.2);
    const auto pwcet = timer->EstimatePwcet(1e-9, 20);
    const long long misses =
        static_cast<long long>(timer->CountOver(kDeadline));
    std::printf("%-20s %6lld %9.3f %9.3f %9.3f %9.3f %11s %8lld\n",
                timer->name().c_str(), static_cast<long long>(stats.count),
                1e3 * stats.mean, 1e3 * stats.p99, 1e3 * stats.max,
                1e3 * envelope,
                pwcet.ok()
                    ? certkit::support::FormatDouble(1e3 * pwcet.value(), 3)
                          .c_str()
                    : "n/a",
                misses);
  }
  std::printf(
      "\nenv = observed max x 1.2 (envelope bound); pWCET = Gumbel/EVT fit\n"
      "over block maxima at 1e-9 exceedance per invocation (MBPTA-style).\n"
      "With the tick's pWCET below the 100 ms budget and zero observed\n"
      "misses, the 10 Hz response-time requirement holds on this platform;\n"
      "the paper's point stands that rising code complexity (Observation 1)\n"
      "is what makes such bounds progressively harder to establish\n"
      "statically.\n");
  return 0;
}
