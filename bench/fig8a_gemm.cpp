// Experiment E6 — Figure 8(a) of the paper: "CUTLASS vs cuBLAS" relative
// performance on GEMM kernels widely used in YOLO.
//
// cutlass_sim composes device-wide GEMM from template tile primitives;
// cublas_sim is the fixed hand-tuned vendor-style kernel. The paper's claim:
// the template library exhibits performance comparable to the vendor one.
// The naive single-threaded CPU GEMM anchors the "two orders of magnitude"
// CPU comparison of Figure 7's discussion.
#include <benchmark/benchmark.h>

#include <vector>

#include <functional>

#include "bench/bench_util.h"
#include "kernels/gemm.h"
#include "support/rng.h"

namespace {

using kernels::GemmShape;

// Square sizes plus YOLO-layer-like shapes (im2col GEMMs: M=filters,
// N=output pixels, K=patch).
const std::vector<GemmShape> kShapes = {
    {128, 128, 128}, {256, 256, 256}, {384, 384, 384}, {512, 512, 512},
    {16, 4096, 27},  {32, 1024, 144}, {64, 256, 288},  {255, 169, 1024},
};

std::vector<float> RandomVec(std::size_t n, std::uint64_t seed) {
  certkit::support::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  return v;
}

void BM_GemmCublasSim(benchmark::State& state) {
  const GemmShape s = kShapes[static_cast<std::size_t>(state.range(0))];
  auto a = RandomVec(static_cast<std::size_t>(s.m) * s.k, 1);
  auto b = RandomVec(static_cast<std::size_t>(s.k) * s.n, 2);
  std::vector<float> c(static_cast<std::size_t>(s.m) * s.n);
  for (auto _ : state) {
    kernels::cublas_sim::Sgemm(a.data(), b.data(), c.data(), s);
    benchmark::DoNotOptimize(c[0]);
  }
  state.SetLabel(std::to_string(s.m) + "x" + std::to_string(s.n) + "x" +
                 std::to_string(s.k));
  state.SetItemsProcessed(state.iterations() * 2LL * s.m * s.n * s.k);
}
BENCHMARK(BM_GemmCublasSim)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

void BM_GemmCutlassSim(benchmark::State& state) {
  const GemmShape s = kShapes[static_cast<std::size_t>(state.range(0))];
  auto a = RandomVec(static_cast<std::size_t>(s.m) * s.k, 1);
  auto b = RandomVec(static_cast<std::size_t>(s.k) * s.n, 2);
  std::vector<float> c(static_cast<std::size_t>(s.m) * s.n);
  for (auto _ : state) {
    kernels::cutlass_sim::Sgemm<>(a.data(), b.data(), c.data(), s);
    benchmark::DoNotOptimize(c[0]);
  }
  state.SetLabel(std::to_string(s.m) + "x" + std::to_string(s.n) + "x" +
                 std::to_string(s.k));
  state.SetItemsProcessed(state.iterations() * 2LL * s.m * s.n * s.k);
}
BENCHMARK(BM_GemmCutlassSim)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchutil::PrintHeader(
      "Figure 8(a) — CUTLASS-sim performance relative to cuBLAS-sim (1.0 = "
      "parity; simulated device clock)");
  auto& device = gpusim::Device::Instance();
  auto device_time = [&](const std::function<void()>& fn) {
    double best_t = 1e99;
    for (int rep = 0; rep < 3; ++rep) {
      device.ResetTimers();
      fn();
      best_t = std::min(best_t, device.simulated_seconds());
    }
    return best_t;
  };
  std::printf("%-16s %12s %12s %10s\n", "shape(MxNxK)", "cublas-sim",
              "cutlass-sim", "relative");
  double worst = 1e9, best = 0.0;
  for (const GemmShape& s : kShapes) {
    auto a = RandomVec(static_cast<std::size_t>(s.m) * s.k, 1);
    auto b = RandomVec(static_cast<std::size_t>(s.k) * s.n, 2);
    std::vector<float> c(static_cast<std::size_t>(s.m) * s.n);
    const double t_cublas = device_time(
        [&] { kernels::cublas_sim::Sgemm(a.data(), b.data(), c.data(), s); });
    const double t_cutlass = device_time([&] {
      kernels::cutlass_sim::Sgemm<>(a.data(), b.data(), c.data(), s);
    });
    const double rel = t_cublas / t_cutlass;  // >1: cutlass faster
    worst = std::min(worst, rel);
    best = std::max(best, rel);
    std::printf("%4dx%4dx%4d   %9.3f ms %9.3f ms %9.2fx\n", s.m, s.n, s.k,
                1e3 * t_cublas, 1e3 * t_cutlass, rel);
  }
  // Anchor the CPU-BLAS gap on one large shape (device clock vs wall clock).
  {
    const GemmShape s{512, 512, 512};
    auto a = RandomVec(static_cast<std::size_t>(s.m) * s.k, 1);
    auto b = RandomVec(static_cast<std::size_t>(s.k) * s.n, 2);
    std::vector<float> c(static_cast<std::size_t>(s.m) * s.n);
    const double t_dev = device_time(
        [&] { kernels::cublas_sim::Sgemm(a.data(), b.data(), c.data(), s); });
    const double t_cpu = benchutil::TimeSeconds(
        [&] { kernels::cpublas::Sgemm(a.data(), b.data(), c.data(), s); }, 1);
    std::printf("\nnaive CPU BLAS at 512^3: %.1f ms wall vs %.1f ms device "
                "clock (%.0fx slower)\n",
                1e3 * t_cpu, 1e3 * t_dev, t_cpu / t_dev);
  }
  std::printf(
      "\nPaper reference: CUTLASS primitives exhibit performance comparable\n"
      "to cuBLAS for scalar GEMM computations (relative performance near\n"
      "1.0 across kernels); range measured here: %.2fx - %.2fx.\n",
      worst, best);
  return 0;
}
