// Experiment E5 — Figure 7 of the paper: "Performance of Apollo's object
// detection using open-source CUDA libraries in comparison with
// closed-source libraries implementation".
//
// The detector's convolution stack runs on three backends:
//   closed-sim (cuDNN/cuBLAS stand-in)  — the paper's baseline,
//   open-sim   (ISAAC/CUTLASS stand-in) — competitive with the baseline,
//   cpu-naive  (ATLAS/OpenBLAS CPU path) — orders of magnitude slower.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "coverage/coverage.h"
#include "gpusim/gpusim.h"
#include "nn/detector.h"

namespace {

nn::Tensor MakeFrame() {
  nn::Tensor frame(1, 3, 64, 64);
  for (int c = 0; c < 3; ++c) {
    for (int y = 0; y < 64; ++y) {
      for (int x = 0; x < 64; ++x) {
        frame.At(0, c, y, x) = (y >= 24 && y < 40 && x >= 24 && x < 40)
                                   ? 225.0f
                                   : 22.0f;
      }
    }
  }
  return frame;
}

std::unique_ptr<nn::TinyYoloDetector> MakeDetector(nn::Backend backend) {
  nn::DetectorConfig cfg;
  cfg.backend = backend;
  auto det = std::make_unique<nn::TinyYoloDetector>(cfg);
  nn::InitRandomWeights(det.get(), 42);  // values irrelevant for timing
  return det;
}

void BM_ObjectDetection(benchmark::State& state) {
  const auto backend = static_cast<nn::Backend>(state.range(0));
  auto detector = MakeDetector(backend);
  nn::Tensor frame = MakeFrame();
  // Warm the ISAAC-sim tuning cache outside the timed region (as the paper's
  // setup would: auto-tuning happens at deployment, not per frame).
  auto warmup = detector->Detect(frame);
  benchmark::DoNotOptimize(warmup.size());
  for (auto _ : state) {
    auto dets = detector->Detect(frame);
    benchmark::DoNotOptimize(dets.size());
  }
  state.SetLabel(nn::BackendName(backend));
}
BENCHMARK(BM_ObjectDetection)
    ->Arg(static_cast<int>(nn::Backend::kClosedSim))
    ->Arg(static_cast<int>(nn::Backend::kOpenSim))
    ->Arg(static_cast<int>(nn::Backend::kCpuNaive))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Performance flavor: run uninstrumented (coverage is a build flavor).
  certkit::cov::SetProbesEnabled(false);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchutil::PrintHeader(
      "Figure 7 — Object-detection latency by library backend");
  nn::Tensor frame = MakeFrame();
  auto& device = gpusim::Device::Instance();

  // Device kernels report the simulated-device clock (wall time per launch
  // divided by block-level occupancy on a 16-SM model — see gpusim::Device;
  // this host has too few cores to exhibit GPU parallelism in wall time).
  auto device_time = [&](nn::Backend backend) {
    auto det = MakeDetector(backend);
    det->Detect(frame);  // warmup (+ autotune for the open stack)
    double best = 1e99;
    for (int rep = 0; rep < 5; ++rep) {
      device.ResetTimers();
      det->Detect(frame);
      best = std::min(best, device.simulated_seconds());
    }
    return best;
  };
  const double closed = device_time(nn::Backend::kClosedSim);
  const double open = device_time(nn::Backend::kOpenSim);
  double naive = 0.0;
  {
    auto det = MakeDetector(nn::Backend::kCpuNaive);
    naive = benchutil::TimeSeconds([&] { det->Detect(frame); }, 3);
  }
  std::printf("  closed-sim (cuDNN/cuBLAS stand-in) : %8.3f ms  (baseline, "
              "device clock)\n",
              1e3 * closed);
  std::printf("  open-sim   (ISAAC/CUTLASS stand-in): %8.3f ms  (%.2fx of "
              "baseline, device clock)\n",
              1e3 * open, open / closed);
  std::printf("  cpu-naive  (CPU BLAS stand-in)     : %8.3f ms  (%.1fx of "
              "baseline, wall clock)\n",
              1e3 * naive, naive / closed);
  std::printf(
      "\nPaper reference: CUTLASS/ISAAC implementations provide competitive\n"
      "performance vs cuBLAS/cuDNN; the same operations on CPU cores run\n"
      "with about two orders of magnitude higher execution time.\n"
      "(Device kernels use the %u-SM simulated device clock; the CPU\n"
      "baseline is single-threaded wall time.)\n",
      device.sm_count());

  // Addendum: batched inference. One DetectBatch over 8 frames issues one
  // fused forward pass (same launch count as a single frame) vs 8 separate
  // per-frame passes. Reported on the device clock like the table above;
  // the deterministic accounting lives in the detector_batch driver.
  benchutil::PrintHeader(
      "Figure 7 addendum — batched (8-frame) vs per-frame, device clock");
  const std::vector<nn::Tensor> frames8(8, frame);
  for (const nn::Backend backend :
       {nn::Backend::kClosedSim, nn::Backend::kOpenSim}) {
    auto det = MakeDetector(backend);
    auto warm = det->DetectBatch(frames8);  // warmup (+ batch-shape tuning)
    benchmark::DoNotOptimize(warm.size());
    double serial = 1e99, batched = 1e99;
    for (int rep = 0; rep < 5; ++rep) {
      device.ResetTimers();
      for (const nn::Tensor& f : frames8) {
        auto dets = det->Detect(f);
        benchmark::DoNotOptimize(dets.size());
      }
      serial = std::min(serial, device.simulated_seconds());
      device.ResetTimers();
      auto dets = det->DetectBatch(frames8);
      benchmark::DoNotOptimize(dets.size());
      batched = std::min(batched, device.simulated_seconds());
    }
    std::printf("  %-10s: 8x per-frame %8.3f ms | batch-8 %8.3f ms  "
                "(%.2fx)\n",
                nn::BackendName(backend), 1e3 * serial, 1e3 * batched,
                serial / batched);
  }
  return 0;
}
