// Experiment E-campaign — coverage-guided scenario campaign vs the fixed
// Figure-5 scenario set.
//
// Runs the campaign engine (src/campaign/) for a few generations and emits
// one JSON document: per-generation coverage per criterion per yolo/ file,
// oracle tallies, the kept corpus, and (with --timing) candidates/sec at
// --jobs N. Without --timing the output is byte-identical for a fixed
// --seed across any --jobs value; the fleet-determinism test relies on
// exactly that.
//
// Usage:
//   campaign_coverage [--seed N] [--jobs N] [--population N]
//                     [--generations N] [--timing] [--baseline]
//                     [--trace-out F] [--metrics-out F]
//
// --baseline additionally runs the fixed Figure-5 scenario set first and
// prepends its coverage rows, so one invocation yields the comparison table
// EXPERIMENTS.md reports. --trace-out enables span capture: the campaign
// registers one track per candidate plus its control track, exported as a
// Chrome trace-event file; --metrics-out snapshots the obs metrics
// registry. Both exports honor the same determinism contract as the
// campaign JSON (byte-identical across --jobs unless --timing is given).
#include <cstdio>
#include <string>

#include "campaign/baseline.h"
#include "campaign/coverage_map.h"
#include "campaign/runner.h"
#include "coverage/coverage.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/flags.h"
#include "support/io.h"

int main(int argc, char** argv) {
  certkit::support::FlagParser flags(argc, argv);
  certkit::campaign::CampaignConfig config;
  config.seed = static_cast<std::uint64_t>(*flags.GetInt("seed", 1));
  config.jobs = static_cast<int>(*flags.GetInt("jobs", 1));
  config.population = static_cast<int>(*flags.GetInt("population", 12));
  config.generations = static_cast<int>(*flags.GetInt("generations", 4));
  config.ticks = static_cast<int>(*flags.GetInt("ticks", 25));
  config.include_timing = flags.GetBool("timing");
  const std::string trace_out = flags.GetOr("trace-out", "");
  const std::string metrics_out = flags.GetOr("metrics-out", "");
  if (!trace_out.empty() || !metrics_out.empty()) {
    certkit::obs::SetTracingEnabled(true);
  }

  std::string baseline_json;
  if (flags.GetBool("baseline")) {
    const certkit::cov::CoverSet baseline =
        certkit::campaign::CaptureFigure5Baseline();
    certkit::campaign::CoverageMap map;
    map.Merge(baseline);
    baseline_json = certkit::campaign::CoverageRowsJson(
        map.Rows(config.unit_prefix));
    // Comparison mode seeds the campaign with the baseline cover, so the
    // campaign's final rows dominate the baseline rows (the campaign adds
    // tests on top of the existing suite — it never discards them).
    config.seed_with_fig5 = true;
  }

  certkit::campaign::CampaignRunner runner(config);
  const certkit::campaign::CampaignResult result = runner.Run();
  const std::string campaign_json = certkit::campaign::CampaignJson(result);

  if (baseline_json.empty()) {
    std::printf("%s\n", campaign_json.c_str());
  } else {
    std::printf("{\"fig5_baseline\":%s,\"campaign\":%s}\n",
                baseline_json.c_str(), campaign_json.c_str());
  }

  // Export errors go to stderr: stdout carries the JSON document above.
  if (!trace_out.empty()) {
    const auto status = certkit::support::WriteFile(
        trace_out,
        certkit::obs::ChromeTraceJson(
            certkit::obs::TraceRecorder::Instance().Snapshot(),
            config.include_timing));
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!metrics_out.empty()) {
    const auto status = certkit::support::WriteFile(
        metrics_out,
        certkit::obs::MetricsJson(
            certkit::obs::MetricsRegistry::Instance().Snapshot(),
            config.include_timing));
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
