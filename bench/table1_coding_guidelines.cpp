// Experiment E2 — Table 1 of the paper (ISO 26262-6 Table 1): modeling and
// coding guidelines, assessed against the Apollo-like corpus with the
// Observations 1-9 evidence.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "report/renderers.h"
#include "rules/assessor.h"

namespace {

void BM_AssessCodingGuidelines(benchmark::State& state) {
  // The per-file work is already done by the driver; the benchmark measures
  // the assessment itself over the precomputed inputs.
  const auto inputs = benchutil::Corpus().MakeAssessorInputs();
  for (auto _ : state) {
    certkit::rules::Assessor assessor(inputs);
    auto table = assessor.AssessCodingGuidelines();
    benchmark::DoNotOptimize(table.assessments.size());
  }
}
BENCHMARK(BM_AssessCodingGuidelines)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchutil::PrintHeader(
      "Table 1 — Modeling/coding guidelines (ISO26262_6 Table 1)");
  const auto& corpus = benchutil::Corpus();
  certkit::rules::Assessor assessor(corpus.MakeAssessorInputs());
  const auto assessment = assessor.AssessCodingGuidelines();
  std::printf("%s\n",
              certkit::report::RenderTechniqueAssessment(
                  certkit::rules::CodingGuidelinesTable(), assessment)
                  .c_str());
  std::printf(
      "Key measured evidence vs the paper:\n"
      "  functions with CC > 10 : %lld (paper: 554)\n"
      "  explicit casts         : %lld (paper: >1,400)\n"
      "  input-validation ratio : %.1f%% (paper Obs. 6: defensive\n"
      "                           programming not used)\n",
      static_cast<long long>(assessor.functions_cc_over(10)),
      static_cast<long long>(assessor.total_explicit_casts()),
      100.0 * assessor.defensive().InputValidationRatio());
  return 0;
}
