// Ablation study for the design choices DESIGN.md calls out:
//   A1 — input-aware auto-tuning (isaac_sim): tuned vs fixed vs worst tile
//        configuration per convolution shape;
//   A2 — optimal (Hungarian) vs greedy data association in the tracker:
//        identity switches on crossing targets;
//   A3 — coverage-probe overhead: instrumented vs uninstrumented stencil.
#include <benchmark/benchmark.h>

#include <cmath>
#include <set>
#include <vector>

#include "ad/tracking.h"
#include "bench/bench_util.h"
#include "coverage/coverage.h"
#include "kernels/conv.h"
#include "kernels/gemm.h"
#include "kernels/stencil.h"
#include "support/rng.h"

namespace {

std::vector<float> RandomVec(std::size_t n, std::uint64_t seed) {
  certkit::support::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  return v;
}

// --- A1: autotuning --------------------------------------------------------

void AblationAutotuning() {
  benchutil::PrintHeader(
      "A1 — ISAAC-sim input-aware auto-tuning vs fixed tile configuration");
  using kernels::GemmShape;
  auto& device = gpusim::Device::Instance();
  auto device_time = [&](auto&& fn) {
    double best = 1e99;
    for (int rep = 0; rep < 3; ++rep) {
      device.ResetTimers();
      fn();
      best = std::min(best, device.simulated_seconds());
    }
    return best;
  };
  // GEMM shapes with very different aspect ratios: no single tile size wins
  // everywhere, which is precisely the auto-tuner's reason to exist.
  const std::vector<GemmShape> shapes = {
      {16, 4096, 64}, {4096, 16, 64}, {256, 256, 256}};
  std::printf("%-16s %10s %10s %10s %10s | best/fixed64\n", "shape",
              "32x32", "64x64", "16x128", "128x16");
  for (const GemmShape& s : shapes) {
    auto a = RandomVec(static_cast<std::size_t>(s.m) * s.k, 1);
    auto b = RandomVec(static_cast<std::size_t>(s.k) * s.n, 2);
    std::vector<float> c(static_cast<std::size_t>(s.m) * s.n);
    const double t0 = device_time([&] {
      kernels::cutlass_sim::Sgemm<32, 32>(a.data(), b.data(), c.data(), s);
    });
    const double t1 = device_time([&] {
      kernels::cutlass_sim::Sgemm<64, 64>(a.data(), b.data(), c.data(), s);
    });
    const double t2 = device_time([&] {
      kernels::cutlass_sim::Sgemm<16, 128>(a.data(), b.data(), c.data(), s);
    });
    const double t3 = device_time([&] {
      kernels::cutlass_sim::Sgemm<128, 16>(a.data(), b.data(), c.data(), s);
    });
    const double best = std::min(std::min(t0, t1), std::min(t2, t3));
    std::printf("%4dx%4dx%4d %8.3fms %8.3fms %8.3fms %8.3fms | %.2fx\n",
                s.m, s.n, s.k, 1e3 * t0, 1e3 * t1, 1e3 * t2, 1e3 * t3,
                t1 / best);
  }
  std::printf(
      "Different shapes favour different tiles; picking per input (as\n"
      "isaac_sim does) recovers the per-shape best instead of the fixed\n"
      "64x64 default.\n");
}

// --- A2: association -------------------------------------------------------

// Tracks two close parallel targets through noisy detections and counts the
// track churn: ids spawned beyond the ideal two. Greedy association lets the
// first-processed track steal the other target's detection in ambiguous
// frames, pushing the second association past the gate and spawning spurious
// tracks; the optimal assignment resolves the frame jointly.
int CountSpuriousTracks(bool greedy, std::uint64_t seed) {
  using namespace adpilot;
  TrackerConfig cfg;
  cfg.use_greedy_association = greedy;
  cfg.gate_distance = 3.5;
  Tracker tracker(cfg);
  certkit::support::Xoshiro256 rng(seed);
  std::set<int> all_ids;
  for (int step = 0; step < 60; ++step) {
    const double t = 0.1 * step;
    // Two targets 2.5 m apart laterally, same speed; noisy measurements.
    Obstacle a, b;
    a.position = {5.0 * t + rng.Gaussian(0.0, 1.2),
                  0.0 + rng.Gaussian(0.0, 1.2)};
    b.position = {5.0 * t + rng.Gaussian(0.0, 1.2),
                  2.5 + rng.Gaussian(0.0, 1.2)};
    a.cls = b.cls = ObstacleClass::kVehicle;
    a.confidence = b.confidence = 0.9;
    tracker.Update({a, b}, 0.1);
    for (const Track& tr : tracker.tracks()) all_ids.insert(tr.id);
  }
  return static_cast<int>(all_ids.size()) - 2;  // beyond the ideal two
}

void AblationAssociation() {
  benchutil::PrintHeader(
      "A2 — Hungarian vs greedy data association (close noisy targets, 25 "
      "trials)");
  int hungarian_total = 0, greedy_total = 0;
  for (std::uint64_t trial = 0; trial < 25; ++trial) {
    hungarian_total += CountSpuriousTracks(false, 9000 + trial);
    greedy_total += CountSpuriousTracks(true, 9000 + trial);
  }
  std::printf("  spurious tracks, Hungarian: %d\n", hungarian_total);
  std::printf("  spurious tracks, greedy   : %d\n", greedy_total);
  std::printf(
      "Optimal assignment resolves ambiguous frames jointly; row-greedy\n"
      "matching steals detections, pushes the remaining pair past the gate,\n"
      "and spawns spurious tracks.\n");
}

// --- A3: probe overhead ----------------------------------------------------

void AblationProbeOverhead() {
  benchutil::PrintHeader(
      "A3 — coverage-probe overhead on the 2D stencil (128x128)");
  const int n = 128;
  std::vector<float> in(static_cast<std::size_t>(n) * n, 1.0f);
  std::vector<float> out(in.size());
  certkit::cov::SetProbesEnabled(true);
  const double with_probes = benchutil::TimeSeconds(
      [&] { kernels::stencil::Stencil2D5Point(in.data(), out.data(), n, n); },
      3);
  certkit::cov::SetProbesEnabled(false);
  const double without = benchutil::TimeSeconds(
      [&] { kernels::stencil::Stencil2D5Point(in.data(), out.data(), n, n); },
      3);
  certkit::cov::SetProbesEnabled(true);
  std::printf("  instrumented   : %8.3f ms\n", 1e3 * with_probes);
  std::printf("  uninstrumented : %8.3f ms\n", 1e3 * without);
  std::printf("  overhead       : %8.1fx\n", with_probes / without);
  std::printf(
      "Structural-coverage instrumentation is a build flavor for exactly\n"
      "this reason: per-element statement+MC/DC probes dominate kernel\n"
      "cost, so coverage runs and performance runs must be separate\n"
      "(RapiCover makes the same distinction; cf. the paper's remark that\n"
      "coverage must be measured on a representative target).\n");
}

void BM_StencilInstrumented(benchmark::State& state) {
  certkit::cov::SetProbesEnabled(true);
  const int n = 64;
  std::vector<float> in(static_cast<std::size_t>(n) * n, 1.0f);
  std::vector<float> out(in.size());
  for (auto _ : state) {
    kernels::stencil::Stencil2D5Point(in.data(), out.data(), n, n);
    benchmark::DoNotOptimize(out[0]);
  }
}
BENCHMARK(BM_StencilInstrumented)->Unit(benchmark::kMillisecond);

void BM_StencilUninstrumented(benchmark::State& state) {
  certkit::cov::SetProbesEnabled(false);
  const int n = 64;
  std::vector<float> in(static_cast<std::size_t>(n) * n, 1.0f);
  std::vector<float> out(in.size());
  for (auto _ : state) {
    kernels::stencil::Stencil2D5Point(in.data(), out.data(), n, n);
    benchmark::DoNotOptimize(out[0]);
  }
  certkit::cov::SetProbesEnabled(true);
}
BENCHMARK(BM_StencilUninstrumented)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  certkit::cov::SetProbesEnabled(false);
  AblationAutotuning();
  AblationAssociation();
  AblationProbeOverhead();
  return 0;
}
