// Experiment — incremental front-end analysis via the content-hash
// artifact cache (see src/driver/artifact_cache.h).
//
// Runs the AnalysisDriver over the calibrated ~220k-LOC Apollo-like corpus
// in four configurations and reports, as JSON on stdout:
//
//   cold        empty cache: every file lexed, parsed, analyzed, stored;
//   warm        same cache, unchanged corpus: every file must hit — the
//               lexer must not run at all (lexer/bytes_lexed delta == 0);
//   warm_jobs4  warm again at --jobs 4: the merged analysis must digest
//               identical to --jobs 1 (scheduling independence);
//   dirty_one   one file's bytes changed: exactly that file misses.
//
// Not a google-benchmark target: the bit-identity assertions are the point,
// and the JSON must stay byte-stable apart from the wall-clock fields. Any
// violated invariant aborts via CERTKIT_CHECK (nonzero exit, CI-friendly).
//
//   $ ./analysis_incremental        # JSON to stdout
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "corpus/analyze.h"
#include "corpus/generator.h"
#include "driver/artifact_cache.h"
#include "obs/metrics.h"
#include "support/check.h"

namespace {

namespace fs = std::filesystem;

using certkit::corpus::CorpusAnalysis;
using certkit::corpus::GeneratedModule;

std::int64_t CounterValue(const char* name) {
  return certkit::obs::MetricsRegistry::Instance().GetCounter(name).value();
}

struct Run {
  double seconds = 0.0;
  std::int64_t bytes_lexed = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::uint64_t digest = 0;
  std::size_t files = 0;
};

Run Analyze(const std::vector<GeneratedModule>& corpus, int jobs,
            const std::string& cache_dir) {
  Run run;
  const std::int64_t lexed0 = CounterValue("lexer/bytes_lexed");
  const std::int64_t hits0 = CounterValue("driver/cache_hits");
  const std::int64_t misses0 = CounterValue("driver/cache_misses");
  const auto t0 = std::chrono::steady_clock::now();
  auto analyzed =
      certkit::corpus::AnalyzeGeneratedCorpus(corpus, jobs, cache_dir);
  const auto t1 = std::chrono::steady_clock::now();
  CERTKIT_CHECK_MSG(analyzed.ok(), analyzed.status().ToString());
  run.seconds = std::chrono::duration<double>(t1 - t0).count();
  run.bytes_lexed = CounterValue("lexer/bytes_lexed") - lexed0;
  run.cache_hits = CounterValue("driver/cache_hits") - hits0;
  run.cache_misses = CounterValue("driver/cache_misses") - misses0;
  run.digest = certkit::driver::DigestAnalysis(analyzed.value());
  run.files = analyzed.value().files.size();
  return run;
}

}  // namespace

int main() {
  auto corpus = certkit::corpus::GenerateCorpus(
      certkit::corpus::ApolloLikeSpec(), benchutil::kCorpusSeed);
  std::size_t total_files = 0;
  std::int64_t total_bytes = 0;
  for (const auto& mod : corpus) {
    total_files += mod.files.size();
    for (const auto& f : mod.files) {
      total_bytes += static_cast<std::int64_t>(f.content.size());
    }
  }

  const fs::path cache_dir =
      fs::temp_directory_path() / "certkit_analysis_incremental_cache";
  std::error_code ec;
  fs::remove_all(cache_dir, ec);  // start cold

  // Cold: every file is analyzed and stored; the whole corpus is lexed.
  const Run cold = Analyze(corpus, 1, cache_dir.string());
  CERTKIT_CHECK(cold.files == total_files);
  CERTKIT_CHECK(cold.cache_hits == 0);
  CERTKIT_CHECK(cold.cache_misses == static_cast<std::int64_t>(total_files));
  CERTKIT_CHECK(cold.bytes_lexed >= total_bytes);

  // Warm: nothing changed, so nothing is re-lexed — zero bytes through the
  // lexer — and the merged result is bit-identical to the cold run.
  const Run warm = Analyze(corpus, 1, cache_dir.string());
  CERTKIT_CHECK(warm.cache_hits == static_cast<std::int64_t>(total_files));
  CERTKIT_CHECK(warm.cache_misses == 0);
  CERTKIT_CHECK_MSG(warm.bytes_lexed == 0,
                    "warm run re-lexed " + std::to_string(warm.bytes_lexed) +
                        " bytes");
  CERTKIT_CHECK(warm.digest == cold.digest);

  // Warm at --jobs 4: scheduling must not leak into the merged artifact.
  const Run warm4 = Analyze(corpus, 4, cache_dir.string());
  CERTKIT_CHECK(warm4.cache_hits == static_cast<std::int64_t>(total_files));
  CERTKIT_CHECK(warm4.digest == cold.digest);

  // Dirty one file: exactly that file misses (and is re-stored); every
  // other artifact is reused untouched.
  CERTKIT_CHECK(!corpus.empty() && !corpus.front().files.empty());
  corpus.front().files.front().content += "\n// touched\n";
  const Run dirty = Analyze(corpus, 1, cache_dir.string());
  CERTKIT_CHECK_MSG(dirty.cache_misses == 1,
                    "expected exactly 1 miss after touching 1 file, got " +
                        std::to_string(dirty.cache_misses));
  CERTKIT_CHECK(dirty.cache_hits ==
                static_cast<std::int64_t>(total_files) - 1);
  CERTKIT_CHECK(dirty.digest != cold.digest);

  const double warm_speedup =
      warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
  std::printf(
      "{\n"
      "  \"benchmark\": \"analysis_incremental\",\n"
      "  \"files\": %zu,\n"
      "  \"corpus_bytes\": %lld,\n"
      "  \"invariants\": [\"warm bytes_lexed == 0\", "
      "\"warm digest == cold digest\", \"jobs-4 digest == jobs-1 digest\", "
      "\"1 dirty file == 1 miss\"],\n"
      "  \"runs\": [\n"
      "    {\"phase\": \"cold\", \"seconds\": %.4f, \"hits\": %lld, "
      "\"misses\": %lld, \"bytes_lexed\": %lld},\n"
      "    {\"phase\": \"warm\", \"seconds\": %.4f, \"hits\": %lld, "
      "\"misses\": %lld, \"bytes_lexed\": %lld},\n"
      "    {\"phase\": \"warm_jobs4\", \"seconds\": %.4f, \"hits\": %lld, "
      "\"misses\": %lld, \"bytes_lexed\": %lld},\n"
      "    {\"phase\": \"dirty_one\", \"seconds\": %.4f, \"hits\": %lld, "
      "\"misses\": %lld, \"bytes_lexed\": %lld}\n"
      "  ],\n"
      "  \"warm_speedup\": %.2f\n"
      "}\n",
      total_files, static_cast<long long>(total_bytes),
      cold.seconds, static_cast<long long>(cold.cache_hits),
      static_cast<long long>(cold.cache_misses),
      static_cast<long long>(cold.bytes_lexed),
      warm.seconds, static_cast<long long>(warm.cache_hits),
      static_cast<long long>(warm.cache_misses),
      static_cast<long long>(warm.bytes_lexed),
      warm4.seconds, static_cast<long long>(warm4.cache_hits),
      static_cast<long long>(warm4.cache_misses),
      static_cast<long long>(warm4.bytes_lexed),
      dirty.seconds, static_cast<long long>(dirty.cache_hits),
      static_cast<long long>(dirty.cache_misses),
      static_cast<long long>(dirty.bytes_lexed),
      warm_speedup);

  fs::remove_all(cache_dir, ec);
  return 0;
}
