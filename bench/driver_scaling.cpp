// Experiment — AnalysisDriver thread scaling over the Apollo-like corpus.
//
// Runs the parallel single-pass front end at --jobs 1/2/4/8 and reports, as
// JSON on stdout: wall time (median of 3), files/sec, and the measured
// speedup over 1 job. Because wall-clock speedup is bounded by the physical
// core count of the host (this repository's reference container has a single
// core — the same reason gpusim keeps a simulated device clock, see
// DESIGN.md), the report also derives `balance_speedup`: each file's serial
// analysis cost is measured once, the costs are greedily partitioned into N
// bins (longest-processing-time first), and sum/max-bin gives the
// critical-path speedup the driver's map phase achieves with N workers given
// perfect cores. On a multi-core host measured_speedup approaches it.
//
//   $ ./driver_scaling            # JSON to stdout
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "corpus/analyze.h"
#include "corpus/generator.h"
#include "driver/analysis_driver.h"
#include "support/check.h"

namespace {

using certkit::driver::AnalysisDriver;
using certkit::driver::DriverOptions;
using certkit::driver::SourceInput;

double Seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double MedianOf3(const std::function<void()>& fn) {
  double t[3];
  for (double& x : t) x = Seconds(fn);
  std::sort(t, t + 3);
  return t[1];
}

// Longest-processing-time-first partition of `costs` into `bins`; returns
// total-work / heaviest-bin — the speedup an ideal N-core schedule of the
// per-file map phase would reach.
double BalanceSpeedup(std::vector<double> costs, int bins) {
  if (costs.empty() || bins <= 1) return 1.0;
  std::sort(costs.begin(), costs.end(), std::greater<double>());
  std::vector<double> load(static_cast<std::size_t>(bins), 0.0);
  double total = 0.0;
  for (const double c : costs) {
    *std::min_element(load.begin(), load.end()) += c;
    total += c;
  }
  const double heaviest = *std::max_element(load.begin(), load.end());
  return heaviest > 0.0 ? total / heaviest : 1.0;
}

}  // namespace

int main() {
  const auto corpus = certkit::corpus::GenerateCorpus(
      certkit::corpus::ApolloLikeSpec(), benchutil::kCorpusSeed);
  const auto inputs = certkit::corpus::CorpusSourceInputs(corpus);

  // Per-file serial cost, measured once (driver with one worker, one file).
  std::vector<double> file_costs;
  file_costs.reserve(inputs.size());
  {
    DriverOptions options;
    options.jobs = 1;
    AnalysisDriver driver(options);
    for (const auto& input : inputs) {
      file_costs.push_back(Seconds([&] {
        auto analyzed = driver.AnalyzeSources({input});
        CERTKIT_CHECK(analyzed.ok());
      }));
    }
  }

  const int kJobs[] = {1, 2, 4, 8};
  double base_seconds = 0.0;
  std::string runs;
  for (const int jobs : kJobs) {
    DriverOptions options;
    options.jobs = jobs;
    AnalysisDriver driver(options);
    const double seconds = MedianOf3([&] {
      auto analyzed = driver.AnalyzeSources(inputs);
      CERTKIT_CHECK(analyzed.ok());
      CERTKIT_CHECK(analyzed.value().files.size() == inputs.size());
    });
    if (jobs == 1) base_seconds = seconds;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"jobs\": %d, \"seconds\": %.4f, "
                  "\"files_per_sec\": %.1f, \"measured_speedup\": %.2f, "
                  "\"balance_speedup\": %.2f}",
                  runs.empty() ? "" : ",", jobs, seconds,
                  seconds > 0.0 ? inputs.size() / seconds : 0.0,
                  seconds > 0.0 ? base_seconds / seconds : 0.0,
                  BalanceSpeedup(file_costs, jobs));
    runs += buf;
  }

  std::printf(
      "{\n"
      "  \"benchmark\": \"driver_scaling\",\n"
      "  \"files\": %zu,\n"
      "  \"hardware_concurrency\": %u,\n"
      "  \"speedup_note\": \"measured_speedup is wall-clock and bounded by "
      "the physical cores of this host; balance_speedup is the "
      "critical-path speedup of the per-file map phase from measured "
      "per-file costs (LPT partition)\",\n"
      "  \"runs\": [%s\n  ]\n"
      "}\n",
      inputs.size(), std::thread::hardware_concurrency(), runs.c_str());
  return 0;
}
