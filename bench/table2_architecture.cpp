// Experiment E8 — Table 2 of the paper (ISO 26262-6 Table 3): architectural
// design techniques, with the per-module size/interface/coupling metrics
// behind Observation 13 ("main modules of Apollo have from 5k to 60k lines").
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "report/renderers.h"
#include "rules/assessor.h"

namespace {

void BM_AssessArchitecture(benchmark::State& state) {
  // The per-file work is already done by the driver; the benchmark measures
  // the assessment itself over the precomputed inputs.
  const auto inputs = benchutil::Corpus().MakeAssessorInputs();
  for (auto _ : state) {
    certkit::rules::Assessor assessor(inputs);
    auto table = assessor.AssessArchitecture();
    benchmark::DoNotOptimize(table.assessments.size());
  }
}
BENCHMARK(BM_AssessArchitecture)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchutil::PrintHeader(
      "Table 2 — Architectural design (ISO26262_6 Table 3)");
  const auto& corpus = benchutil::Corpus();
  certkit::rules::Assessor assessor(corpus.MakeAssessorInputs());
  const auto assessment = assessor.AssessArchitecture();
  std::printf("%s\n",
              certkit::report::RenderTechniqueAssessment(
                  certkit::rules::ArchitecturalDesignTable(), assessment)
                  .c_str());
  benchutil::PrintHeader("Per-module architectural metrics");
  std::printf("%s\n", certkit::report::RenderArchitecture(
                          assessor.architecture())
                          .c_str());
  std::printf(
      "Observation 13: AD frameworks do not comply with many architectural\n"
      "design principles such as restricted size of components/interfaces.\n");
  return 0;
}
