// Replay/differential driver — the end-to-end contract of the replay
// subsystem, runnable as one self-checking binary.
//
// For each seed candidate it (1) evaluates and exports a replay artifact,
// (2) re-executes from the parsed artifact ALONE and asserts bit-identity
// (TickReport digest, per-tick stream digests, verdict signature, and
// emit -> parse -> emit byte-identity of the artifact itself), (3) runs the
// differential oracle across the other two backends plus the quantized arm,
// and (4) delta-debugs every divergence down to a minimized candidate that
// must still reproduce it at strictly lower cost. Any broken contract
// prints a diagnosis to stderr and exits nonzero — CI treats this binary
// like a test. Output is one JSON document, byte-identical for a fixed
// --seed (there is no timing in it by design).
//
// Usage:
//   replay_differential [--seed N] [--candidates N] [--ticks N]
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/minimize.h"
#include "campaign/mutation.h"
#include "campaign/replay.h"
#include "campaign/runner.h"
#include "support/flags.h"

namespace campaign = certkit::campaign;

namespace {

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "replay_differential: CONTRACT FAILURE: %s\n",
                 what.c_str());
    ++g_failures;
  }
}

}  // namespace

int main(int argc, char** argv) {
  certkit::support::FlagParser flags(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(*flags.GetInt("seed", 2026));
  const int candidates = static_cast<int>(*flags.GetInt("candidates", 6));
  const int ticks = static_cast<int>(*flags.GetInt("ticks", 10));

  campaign::MutationScheduler scheduler(seed, ticks);
  std::string rows;
  std::string minimized;
  int divergent = 0;
  int shrunk = 0;

  for (int i = 0; i < candidates; ++i) {
    const campaign::Candidate candidate = scheduler.SeedCandidate(i);
    const std::string tag = "candidate " + std::to_string(i);

    // --- replay bit-identity ---------------------------------------------
    const campaign::EvalResult eval =
        campaign::CampaignRunner::Evaluate(candidate);
    const campaign::ReplayArtifact artifact =
        campaign::MakeArtifact(candidate, eval);
    const std::string json = campaign::ReplayArtifactJson(artifact);
    campaign::ReplayArtifact parsed;
    std::string error;
    Check(campaign::ParseReplayArtifact(json, &parsed, &error),
          tag + ": artifact does not parse: " + error);
    Check(campaign::ReplayArtifactJson(parsed) == json,
          tag + ": emit -> parse -> emit is not byte-identical");
    const campaign::ReplayOutcome replay = campaign::ExecuteReplay(parsed);
    Check(replay.digest_matches,
          tag + ": replay digest " + campaign::HexU64(replay.report_digest) +
              " != recorded " + campaign::HexU64(artifact.report_digest));
    Check(!replay.divergence.diverged,
          tag + ": replay diverged at tick " +
              std::to_string(replay.divergence.tick) + " stream " +
              replay.divergence.stream);
    Check(replay.verdict_matches, tag + ": replay verdict drifted");

    // --- differential oracle ---------------------------------------------
    const campaign::DifferentialReport diff =
        campaign::RunDifferential(candidate);
    Check(campaign::DifferentialReportJson(
              campaign::RunDifferential(candidate)) ==
              campaign::DifferentialReportJson(diff),
          tag + ": differential report is not stable across runs");
    if (diff.divergent) ++divergent;

    if (!rows.empty()) rows += ",";
    rows += "{\"id\":" + std::to_string(candidate.id) +
            ",\"report_digest\":\"" + campaign::HexU64(eval.report_digest) +
            "\",\"divergent\":" + (diff.divergent ? "true" : "false") +
            ",\"arms\":" + campaign::DifferentialReportJson(diff) + "}";

    // --- minimize every divergence ---------------------------------------
    for (const campaign::DifferentialArm& arm : diff.arms) {
      if (!arm.divergence.diverged) continue;
      const campaign::MinimizeResult result = campaign::Minimize(
          candidate, campaign::DivergencePredicate(arm.spec));
      Check(result.final_cost <= result.initial_cost,
            tag + ": minimizer increased cost");
      Check(campaign::VariantDiverges(result.candidate, arm.spec),
            tag + ": minimized candidate no longer reproduces arm " +
                arm.spec.name);
      if (result.accepted_moves > 0) {
        Check(result.final_cost < result.initial_cost,
              tag + ": accepted moves without a cost reduction");
        ++shrunk;
      }
      if (!minimized.empty()) minimized += ",";
      minimized += "{\"candidate\":" + std::to_string(candidate.id) +
                   ",\"arm\":\"" + arm.spec.name +
                   "\",\"tick\":" + std::to_string(arm.divergence.tick) +
                   ",\"stream\":\"" + arm.divergence.stream +
                   "\",\"initial_cost\":" +
                   std::to_string(result.initial_cost) +
                   ",\"final_cost\":" + std::to_string(result.final_cost) +
                   ",\"accepted_moves\":" +
                   std::to_string(result.accepted_moves) +
                   ",\"probes\":" + std::to_string(result.probes) + "}";
    }
  }

  std::printf(
      "{\"bench\":\"replay_differential\",\"seed\":%llu,"
      "\"candidates\":%d,\"ticks\":%d,\"divergent\":%d,\"shrunk\":%d,"
      "\"rows\":[%s],\"minimized\":[%s],\"contract_failures\":%d}\n",
      static_cast<unsigned long long>(seed), candidates, ticks, divergent,
      shrunk, rows.c_str(), minimized.c_str(), g_failures);
  return g_failures == 0 ? 0 : 1;
}
