// Experiment E7 — Figure 8(b) of the paper: "ISAAC vs cuDNN" relative
// performance on convolution kernels from a variety of domains.
//
// isaac_sim is the input-aware auto-tuner (im2col + tuned GEMM tiles, tile
// choice measured per shape and cached); cudnn_sim is the direct, hand-tuned
// vendor-style convolution.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include <functional>

#include "bench/bench_util.h"
#include "gpusim/gpusim.h"
#include "kernels/conv.h"
#include "support/rng.h"

namespace {

using kernels::ConvShape;

struct NamedShape {
  ConvShape shape;
  const char* name;
};

// Vision-stack layer shapes (YOLO-like reductions) plus other domains the
// figure samples (speech-ish wide, dense pointwise).
const std::vector<NamedShape> kLayers = {
    {{1, 3, 64, 64, 16, 3, 3, 1, 1}, "yolo-stem"},
    {{1, 16, 32, 32, 32, 3, 3, 1, 1}, "yolo-mid"},
    {{1, 32, 16, 16, 64, 3, 3, 1, 1}, "yolo-deep"},
    {{1, 64, 8, 8, 128, 3, 3, 1, 1}, "yolo-head"},
    {{1, 32, 32, 32, 32, 1, 1, 1, 0}, "pointwise"},
    {{1, 8, 96, 96, 16, 5, 5, 1, 2}, "wide-5x5"},
    {{4, 16, 24, 24, 32, 3, 3, 1, 1}, "batched"},
    {{1, 16, 48, 48, 32, 3, 3, 2, 1}, "strided"},
};

std::vector<float> RandomVec(std::size_t n, std::uint64_t seed) {
  certkit::support::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  return v;
}

void BM_ConvCudnnSim(benchmark::State& state) {
  const NamedShape& ns = kLayers[static_cast<std::size_t>(state.range(0))];
  auto in = RandomVec(ns.shape.InputSize(), 1);
  auto w = RandomVec(ns.shape.WeightSize(), 2);
  std::vector<float> out(ns.shape.OutputSize());
  for (auto _ : state) {
    kernels::cudnn_sim::Conv2d(in.data(), w.data(), nullptr, out.data(),
                               ns.shape);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetLabel(ns.name);
}
BENCHMARK(BM_ConvCudnnSim)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

void BM_ConvIsaacSim(benchmark::State& state) {
  const NamedShape& ns = kLayers[static_cast<std::size_t>(state.range(0))];
  auto in = RandomVec(ns.shape.InputSize(), 1);
  auto w = RandomVec(ns.shape.WeightSize(), 2);
  std::vector<float> out(ns.shape.OutputSize());
  // Auto-tune outside the timed loop.
  kernels::isaac_sim::Conv2d(in.data(), w.data(), nullptr, out.data(),
                             ns.shape);
  for (auto _ : state) {
    kernels::isaac_sim::Conv2d(in.data(), w.data(), nullptr, out.data(),
                               ns.shape);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetLabel(ns.name);
}
BENCHMARK(BM_ConvIsaacSim)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // --timing re-measures the tile candidates on the live input (the
  // original wall-clock auto-tune) instead of ranking them with the
  // deterministic cost model. Stripped before google-benchmark parses.
  bool timing = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--timing") == 0) {
      timing = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  kernels::isaac_sim::SetTimingTuning(timing);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchutil::PrintHeader(
      "Figure 8(b) — ISAAC-sim performance relative to cuDNN-sim (1.0 = "
      "parity; simulated device clock)");
  auto& device = gpusim::Device::Instance();
  auto device_time = [&](const std::function<void()>& fn) {
    double best_t = 1e99;
    for (int rep = 0; rep < 3; ++rep) {
      device.ResetTimers();
      fn();
      best_t = std::min(best_t, device.simulated_seconds());
    }
    return best_t;
  };
  std::printf("%-12s %12s %12s %10s %16s\n", "layer", "cudnn-sim",
              "isaac-sim", "relative", "tuned tile cfg");
  for (const NamedShape& ns : kLayers) {
    auto in = RandomVec(ns.shape.InputSize(), 1);
    auto w = RandomVec(ns.shape.WeightSize(), 2);
    std::vector<float> out(ns.shape.OutputSize());
    // Warm the tuner.
    kernels::isaac_sim::Conv2d(in.data(), w.data(), nullptr, out.data(),
                               ns.shape);
    const double t_cudnn = device_time([&] {
      kernels::cudnn_sim::Conv2d(in.data(), w.data(), nullptr, out.data(),
                                 ns.shape);
    });
    const double t_isaac = device_time([&] {
      kernels::isaac_sim::Conv2d(in.data(), w.data(), nullptr, out.data(),
                                 ns.shape);
    });
    std::printf("%-12s %9.3f ms %9.3f ms %9.2fx %16d\n", ns.name,
                1e3 * t_cudnn, 1e3 * t_isaac, t_cudnn / t_isaac,
                kernels::isaac_sim::TunedConfigIndex(ns.shape));
  }
  std::printf(
      "\nPaper reference: ISAAC provides very competitive performance in\n"
      "comparison with cuDNN for a variety of workloads (input-aware\n"
      "auto-tuning picks the tile configuration per shape).\n");
  return 0;
}
