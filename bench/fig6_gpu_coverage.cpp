// Experiment E4 — Figure 6 of the paper: "Statement and branch coverage for
// a CUDA code modified to be run in the CPU".
//
// The paper compiles 2D/3D stencil CUDA kernels to the CPU with cuda4cpu and
// measures coverage. Here the same kernels run on the gpusim layer with
// coverage probes; typical runs use only the zero-boundary mode, so full
// statement/branch coverage is not achieved — matching the figure.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "coverage/coverage.h"
#include "kernels/stencil.h"
#include "report/renderers.h"

namespace {

void RunStencilWorkload() {
  using namespace kernels::stencil;
  // Representative run: zero-boundary configuration only, one domain size
  // that is not a multiple of the block size (so out-of-domain threads and
  // boundary reads both occur).
  {
    const int h = 50, w = 70;
    std::vector<float> in(static_cast<std::size_t>(h) * w, 1.0f);
    std::vector<float> out(in.size());
    StencilOptions opt;  // Boundary::kZero
    for (int iter = 0; iter < 3; ++iter) {
      Stencil2D5Point(in.data(), out.data(), h, w, opt);
      std::swap(in, out);
    }
  }
  {
    const int d = 10, h = 20, w = 30;
    std::vector<float> in(static_cast<std::size_t>(d) * h * w, 1.0f);
    std::vector<float> out(in.size());
    StencilOptions opt;
    for (int iter = 0; iter < 2; ++iter) {
      Stencil3D7Point(in.data(), out.data(), d, h, w, opt);
      std::swap(in, out);
    }
  }
}

void BM_Stencil2D(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<float> in(static_cast<std::size_t>(n) * n, 1.0f);
  std::vector<float> out(in.size());
  for (auto _ : state) {
    kernels::stencil::Stencil2D5Point(in.data(), out.data(), n, n);
    benchmark::DoNotOptimize(out[0]);
  }
}
BENCHMARK(BM_Stencil2D)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

void BM_Stencil3D(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<float> in(static_cast<std::size_t>(n) * n * n, 1.0f);
  std::vector<float> out(in.size());
  for (auto _ : state) {
    kernels::stencil::Stencil3D7Point(in.data(), out.data(), n, n, n);
    benchmark::DoNotOptimize(out[0]);
  }
}
BENCHMARK(BM_Stencil3D)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  certkit::cov::Registry::Instance().ResetAll();
  RunStencilWorkload();

  benchutil::PrintHeader(
      "Figure 6 — Statement and branch coverage for CUDA stencil kernels "
      "run on the CPU");
  std::vector<certkit::cov::CoverageRow> rows;
  for (const auto& row : certkit::cov::Snapshot()) {
    if (row.unit.rfind("stencil/", 0) == 0) rows.push_back(row);
  }
  std::printf("%s\n",
              certkit::report::RenderCoverage(rows, /*include_mcdc=*/false)
                  .c_str());
  std::printf(
      "Paper reference: full coverage is not achieved for either statements\n"
      "or branches (Observations 11-12: GPU coverage tooling is limited;\n"
      "the periodic/reflect boundary paths here are never exercised by the\n"
      "representative workload).\n");
  return 0;
}
