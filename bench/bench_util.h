// Shared helpers for the per-figure/table benchmark binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>

#include "corpus/analyze.h"
#include "corpus/generator.h"
#include "support/check.h"

namespace benchutil {

inline constexpr std::uint64_t kCorpusSeed = 26262;

// Generates and analyzes the calibrated Apollo-like corpus (cached per
// process — several benches share it).
inline const certkit::corpus::CorpusAnalysis& Corpus() {
  static const certkit::corpus::CorpusAnalysis* analysis = [] {
    auto corpus = certkit::corpus::GenerateCorpus(
        certkit::corpus::ApolloLikeSpec(), kCorpusSeed);
    auto analyzed = certkit::corpus::AnalyzeGeneratedCorpus(corpus);
    CERTKIT_CHECK_MSG(analyzed.ok(), analyzed.status().ToString());
    return new certkit::corpus::CorpusAnalysis(std::move(analyzed).value());
  }();
  return *analysis;
}

// Median-of-N wall-clock timing for the figure-7/8 ratio summaries.
inline double TimeSeconds(const std::function<void()>& fn, int repeats = 3) {
  double best = 1e99;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

inline void PrintHeader(const char* title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title);
  std::printf("==============================================================\n");
}

}  // namespace benchutil

#endif  // BENCH_BENCH_UTIL_H_
