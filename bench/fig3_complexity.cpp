// Experiment E1 — Figure 3 of the paper: "Complexity, number of LOC, and the
// number of functions in Apollo Modules".
//
// Runs the certkit metrics engine over the calibrated Apollo-like corpus and
// prints, per module, LOC, function counts, and the number of functions above
// the cyclomatic-complexity thresholds 10/20/50. The paper's headline — 554
// functions with CC > 10 across the 220k-LOC framework, dozens of
// moderate-or-higher functions per module — is reproduced in the TOTAL row.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "report/renderers.h"

namespace {

void BM_AnalyzeCorpusComplexity(benchmark::State& state) {
  // Times the full single-pass pipeline over one module: generate, then the
  // driver's per-file map (lex + parse + metrics + rule passes) and ordered
  // reduce.
  const auto spec = certkit::corpus::ApolloLikeSpec();
  const auto& module_spec = spec[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    auto files = certkit::corpus::GenerateModule(module_spec,
                                                 benchutil::kCorpusSeed);
    certkit::corpus::GeneratedModule gm{module_spec, std::move(files)};
    auto analyzed = certkit::corpus::AnalyzeGeneratedCorpus({gm});
    CERTKIT_CHECK(analyzed.ok());
    benchmark::DoNotOptimize(
        analyzed.value().modules.front().metrics.function_count);
  }
  state.SetLabel(module_spec.name);
}
BENCHMARK(BM_AnalyzeCorpusComplexity)->DenseRange(0, 8)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  benchutil::PrintHeader(
      "Figure 3 — Complexity, LOC, and functions per Apollo-like module");
  const auto& corpus = benchutil::Corpus();
  std::vector<certkit::metrics::ModuleMetrics> metrics;
  for (const auto& mod : corpus.modules) metrics.push_back(mod.metrics);
  std::printf("%s\n",
              certkit::report::RenderModuleComplexity(metrics).c_str());
  std::printf(
      "Paper reference: >220k LOC total; modules of 5k-60k LOC; 554\n"
      "functions with cyclomatic complexity > 10 across the framework\n"
      "(Observation 1: AD frameworks present high cyclomatic complexity).\n");
  return 0;
}
