// Experiment — ISO 26262-6 Tables 4 & 5 (error detection / error handling
// mechanisms at the software architectural level), the normative context of
// the paper's §3.1.4 (defensive implementation) and §3.1.5 ("the code
// properly uses C++ exception handling in most of the cases").
//
// Two subjects are assessed side by side:
//   1. the Apollo-like corpus (calibrated to the paper: defensive
//      mechanisms absent);
//   2. this repository's own AD stack (src/ad + src/nn, when run from the
//      repository root) — which carries contracts, checksums, and an
//      emergency-stop degradation path.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "bench/bench_util.h"
#include "driver/codebase_loader.h"
#include "report/renderers.h"
#include "rules/error_handling.h"
#include "support/flags.h"

namespace {

// Locates this repository's AD stack. Honors --root (path to the source
// tree to assess); otherwise tries the working directory, then the repo
// layout relative to the benchmark binary (build/bench/<exe> -> ../../src/ad)
// so the bench also works when not launched from the repository root.
std::string ResolveOwnStackRoot(const certkit::support::FlagParser& flags,
                                const char* argv0) {
  if (const auto root = flags.Get("root"); root.has_value()) return *root;
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory("src/ad", ec)) return "src/ad";
  const fs::path relative_to_exe =
      fs::path(argv0).parent_path() / ".." / ".." / "src" / "ad";
  if (fs::is_directory(relative_to_exe, ec)) {
    return relative_to_exe.lexically_normal().string();
  }
  return "src/ad";
}

certkit::rules::ErrorHandlingStats CorpusStats() {
  std::vector<certkit::rules::ErrorHandlingStats> parts;
  for (const auto& mod : benchutil::Corpus().modules) {
    for (const auto& file : mod.files) {
      parts.push_back(certkit::rules::AnalyzeErrorHandling(file));
    }
  }
  return certkit::rules::MergeErrorHandling(parts);
}

void BM_ErrorHandlingCensus(benchmark::State& state) {
  for (auto _ : state) {
    auto stats = CorpusStats();
    benchmark::DoNotOptimize(stats.functions_total);
  }
}
BENCHMARK(BM_ErrorHandlingCensus)->Unit(benchmark::kMillisecond);

void PrintSubject(const char* label,
                  const certkit::rules::ErrorHandlingStats& stats) {
  benchutil::PrintHeader(label);
  std::printf(
      "  functions %lld | try %lld | catch %lld (%lld catch-all) | throw "
      "%lld\n  assertions %lld (%.2f/function) | status-returning %lld | "
      "checksum %lld | degradation %lld\n\n",
      static_cast<long long>(stats.functions_total),
      static_cast<long long>(stats.try_blocks),
      static_cast<long long>(stats.catch_handlers),
      static_cast<long long>(stats.catch_all_handlers),
      static_cast<long long>(stats.throw_sites),
      static_cast<long long>(stats.assertion_sites),
      stats.AssertionDensityPerFunction(),
      static_cast<long long>(stats.status_returning_functions),
      static_cast<long long>(stats.checksum_sites),
      static_cast<long long>(stats.degradation_sites));
  std::printf("%s\n", certkit::report::RenderTechniqueAssessment(
                          certkit::rules::ErrorDetectionTable(),
                          certkit::rules::AssessErrorDetection(stats))
                          .c_str());
  std::printf("%s\n", certkit::report::RenderTechniqueAssessment(
                          certkit::rules::ErrorHandlingTable(),
                          certkit::rules::AssessErrorHandling(stats))
                          .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  const certkit::support::FlagParser flags(argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  PrintSubject(
      "Tables 4 & 5 — subject 1: the Apollo-like corpus (paper calibration)",
      CorpusStats());

  // Subject 2: this repository's AD stack, if its sources are reachable.
  const std::string own_root = ResolveOwnStackRoot(flags, argv[0]);
  auto own = certkit::driver::LoadCodebase(own_root);
  if (own.ok() && !own.value().modules().empty()) {
    std::vector<certkit::rules::ErrorHandlingStats> parts;
    for (const auto& mod : own.value().modules()) {
      for (const auto& file : mod.files) {
        parts.push_back(certkit::rules::AnalyzeErrorHandling(file));
      }
    }
    PrintSubject(("Tables 4 & 5 — subject 2: this repository's AD stack (" +
                  own_root + ")")
                     .c_str(),
                 certkit::rules::MergeErrorHandling(parts));
  } else {
    std::printf("(%s not reachable — pass --root <dir> or run from the "
                "repository root to assess the AD stack)\n",
                own_root.c_str());
  }
  std::printf(
      "Paper context: Observation 6 — AD frameworks do not implement\n"
      "defensive programming; §3.1.5 — C++ exception handling is properly\n"
      "used in most cases. The corpus reproduces the former; the adpilot\n"
      "stack shows what the mechanisms look like when present (contracts,\n"
      "weight checksums, the REQ-PLAN-002 emergency-stop degradation).\n");
  return 0;
}
