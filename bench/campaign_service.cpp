// Campaign-as-a-service driver — the end-to-end contract of the serve /
// checkpoint / shard subsystem, runnable as one self-checking binary.
//
// It (1) processes a request batch at several pool widths and asserts every
// response line is byte-identical across widths (per-request attribution:
// a warm process with concurrent neighbors answers exactly like an idle
// one), (2) checkpoints a campaign mid-run, resumes it with a fresh runner,
// and asserts the result is byte-identical to an uninterrupted run, and
// (3) evaluates the same campaign as 1, 2, and 4 disjoint shard slices,
// folds the deltas in rotated orders, and asserts every merge equals the
// unsharded JSON. Any broken contract prints a diagnosis to stderr and
// exits nonzero — CI treats this binary like a test. Output is one JSON
// document, byte-identical for a fixed --seed; --timing adds wall-clock
// throughput fields.
//
// Usage:
//   campaign_service [--seed N] [--requests N] [--timing]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/checkpoint.h"
#include "campaign/runner.h"
#include "campaign/service.h"
#include "obs/metrics.h"
#include "support/flags.h"
#include "support/json.h"

namespace campaign = certkit::campaign;

namespace {

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "campaign_service: CONTRACT FAILURE: %s\n",
                 what.c_str());
    ++g_failures;
  }
}

campaign::CampaignConfig BaseConfig(std::uint64_t seed) {
  campaign::CampaignConfig config;
  config.seed = seed;
  config.jobs = 1;
  config.population = 3;
  config.generations = 2;
  config.ticks = 5;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  certkit::support::FlagParser flags(argc, argv);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(*flags.GetInt("seed", 2026));
  const int num_requests = static_cast<int>(*flags.GetInt("requests", 8));
  const bool timing = flags.GetBool("timing");

  // --- 1. serve: responses are a pure function of the request -------------
  std::vector<campaign::ServiceRequest> requests;
  for (int i = 0; i < num_requests; ++i) {
    campaign::ServiceRequest request;
    request.id = "bench-" + std::to_string(i);
    request.kind = "campaign";
    request.campaign = BaseConfig(seed + static_cast<std::uint64_t>(i));
    request.campaign.generations = 1;
    requests.push_back(request);
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::string> reference_lines;
  double widest_seconds = 0.0;
  for (int width : {1, 2, 4, 8}) {
    const auto w0 = std::chrono::steady_clock::now();
    campaign::CampaignService service(width);
    const auto responses = service.Process(requests);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - w0)
            .count();
    if (width == 8) widest_seconds = seconds;
    Check(responses.size() == requests.size(), "response count");
    std::vector<std::string> lines;
    for (const auto& r : responses) {
      Check(r.ok, "request " + r.id + " failed: " + r.error);
      Check(r.cover_facts > 0, "request " + r.id + " reported no coverage");
      lines.push_back(campaign::ServiceResponseJson(r));
    }
    if (reference_lines.empty()) {
      reference_lines = lines;
    } else {
      Check(lines == reference_lines,
            "responses differ at pool width " + std::to_string(width));
    }
  }
  Check(certkit::obs::MetricsRegistry::Instance()
                .GetGauge("service/queue_depth")
                .value() == 0.0,
        "queue depth did not settle to zero");

  // --- 2. checkpoint/kill/resume equals uninterrupted ---------------------
  const campaign::CampaignConfig base = BaseConfig(seed);
  campaign::CampaignRunner straight(base);
  const std::string reference = campaign::CampaignJson(straight.Run());
  {
    campaign::CampaignConfig interrupted = base;
    interrupted.stop_after_generations = 1;
    campaign::CampaignState state =
        campaign::CampaignRunner::FreshState(interrupted);
    // In-memory checkpoint round-trip stands in for the file (the file
    // framing is locked by tests/campaign/checkpoint_resume_test.cpp).
    campaign::CampaignRunner first(interrupted);
    Check(!first.RunFrom(&state).complete, "stop-after did not stop");
    const std::string frozen = campaign::CheckpointJson(interrupted, state);
    campaign::CampaignState thawed;
    bool mismatch = false;
    std::string error;
    Check(campaign::ParseCheckpoint(frozen,
                                    campaign::ConfigFingerprint(interrupted),
                                    &thawed, &mismatch, &error),
          "checkpoint parse: " + error);
    campaign::CampaignConfig rest = base;
    campaign::CampaignRunner second(rest);
    const auto resumed = second.RunFrom(&thawed);
    Check(resumed.complete, "resumed run did not complete");
    Check(campaign::CampaignJson(resumed) == reference,
          "resumed campaign JSON differs from uninterrupted run");
  }

  // --- 3. shard/merge equals unsharded, any order -------------------------
  for (const int shards : {1, 2, 4}) {
    for (int rotation = 0; rotation < shards; ++rotation) {
      campaign::CampaignConfig config = base;
      config.shard_count = shards;
      campaign::CampaignState state =
          campaign::CampaignRunner::FreshState(config);
      while (state.next_generation < config.generations) {
        std::vector<campaign::ShardDelta> deltas;
        for (int i = 0; i < shards; ++i) {
          campaign::CampaignConfig shard_config = config;
          shard_config.shard_index = i;
          campaign::CampaignState shard_state = state;
          campaign::CampaignRunner runner(shard_config);
          deltas.push_back(runner.RunShardGeneration(&shard_state));
        }
        std::rotate(deltas.begin(), deltas.begin() + rotation, deltas.end());
        campaign::CampaignRunner merger(config);
        std::string error;
        Check(merger.MergeShardDeltas(deltas, &state, &error),
              "merge failed: " + error);
      }
      const std::string merged = campaign::CampaignJson(
          campaign::CampaignRunner::Finalize(base, state));
      Check(merged == reference,
            std::to_string(shards) + " shards, rotation " +
                std::to_string(rotation) + ": merged JSON differs");
    }
  }
  const double total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // --- report -------------------------------------------------------------
  std::string out = "{\"bench\":\"campaign_service\",\"seed\":" +
                    std::to_string(seed) +
                    ",\"requests\":" + std::to_string(num_requests) +
                    ",\"pool_widths\":[1,2,4,8]" +
                    ",\"serve_identical_across_widths\":" +
                    (g_failures == 0 ? "true" : "false") +
                    ",\"resume_identical\":true,\"shard_counts\":[1,2,4]";
  if (timing) {
    out += ",\"serve_width8_seconds\":" +
           certkit::support::JsonNumber(widest_seconds) +
           ",\"total_seconds\":" + certkit::support::JsonNumber(total_seconds);
  }
  out += ",\"contract_failures\":" + std::to_string(g_failures) + "}";
  std::printf("%s\n", out.c_str());
  return g_failures == 0 ? 0 : 1;
}
