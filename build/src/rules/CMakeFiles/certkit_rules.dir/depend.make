# Empty dependencies file for certkit_rules.
# This may be replaced when dependencies are built.
