
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rules/assessor.cpp" "src/rules/CMakeFiles/certkit_rules.dir/assessor.cpp.o" "gcc" "src/rules/CMakeFiles/certkit_rules.dir/assessor.cpp.o.d"
  "/root/repo/src/rules/codebase_loader.cpp" "src/rules/CMakeFiles/certkit_rules.dir/codebase_loader.cpp.o" "gcc" "src/rules/CMakeFiles/certkit_rules.dir/codebase_loader.cpp.o.d"
  "/root/repo/src/rules/coverage_assessor.cpp" "src/rules/CMakeFiles/certkit_rules.dir/coverage_assessor.cpp.o" "gcc" "src/rules/CMakeFiles/certkit_rules.dir/coverage_assessor.cpp.o.d"
  "/root/repo/src/rules/defensive.cpp" "src/rules/CMakeFiles/certkit_rules.dir/defensive.cpp.o" "gcc" "src/rules/CMakeFiles/certkit_rules.dir/defensive.cpp.o.d"
  "/root/repo/src/rules/error_handling.cpp" "src/rules/CMakeFiles/certkit_rules.dir/error_handling.cpp.o" "gcc" "src/rules/CMakeFiles/certkit_rules.dir/error_handling.cpp.o.d"
  "/root/repo/src/rules/finding.cpp" "src/rules/CMakeFiles/certkit_rules.dir/finding.cpp.o" "gcc" "src/rules/CMakeFiles/certkit_rules.dir/finding.cpp.o.d"
  "/root/repo/src/rules/iso26262.cpp" "src/rules/CMakeFiles/certkit_rules.dir/iso26262.cpp.o" "gcc" "src/rules/CMakeFiles/certkit_rules.dir/iso26262.cpp.o.d"
  "/root/repo/src/rules/misra.cpp" "src/rules/CMakeFiles/certkit_rules.dir/misra.cpp.o" "gcc" "src/rules/CMakeFiles/certkit_rules.dir/misra.cpp.o.d"
  "/root/repo/src/rules/style.cpp" "src/rules/CMakeFiles/certkit_rules.dir/style.cpp.o" "gcc" "src/rules/CMakeFiles/certkit_rules.dir/style.cpp.o.d"
  "/root/repo/src/rules/traceability.cpp" "src/rules/CMakeFiles/certkit_rules.dir/traceability.cpp.o" "gcc" "src/rules/CMakeFiles/certkit_rules.dir/traceability.cpp.o.d"
  "/root/repo/src/rules/unit_design.cpp" "src/rules/CMakeFiles/certkit_rules.dir/unit_design.cpp.o" "gcc" "src/rules/CMakeFiles/certkit_rules.dir/unit_design.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/certkit_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/certkit_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/certkit_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/lex/CMakeFiles/certkit_lex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/certkit_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
