file(REMOVE_RECURSE
  "CMakeFiles/certkit_rules.dir/assessor.cpp.o"
  "CMakeFiles/certkit_rules.dir/assessor.cpp.o.d"
  "CMakeFiles/certkit_rules.dir/codebase_loader.cpp.o"
  "CMakeFiles/certkit_rules.dir/codebase_loader.cpp.o.d"
  "CMakeFiles/certkit_rules.dir/coverage_assessor.cpp.o"
  "CMakeFiles/certkit_rules.dir/coverage_assessor.cpp.o.d"
  "CMakeFiles/certkit_rules.dir/defensive.cpp.o"
  "CMakeFiles/certkit_rules.dir/defensive.cpp.o.d"
  "CMakeFiles/certkit_rules.dir/error_handling.cpp.o"
  "CMakeFiles/certkit_rules.dir/error_handling.cpp.o.d"
  "CMakeFiles/certkit_rules.dir/finding.cpp.o"
  "CMakeFiles/certkit_rules.dir/finding.cpp.o.d"
  "CMakeFiles/certkit_rules.dir/iso26262.cpp.o"
  "CMakeFiles/certkit_rules.dir/iso26262.cpp.o.d"
  "CMakeFiles/certkit_rules.dir/misra.cpp.o"
  "CMakeFiles/certkit_rules.dir/misra.cpp.o.d"
  "CMakeFiles/certkit_rules.dir/style.cpp.o"
  "CMakeFiles/certkit_rules.dir/style.cpp.o.d"
  "CMakeFiles/certkit_rules.dir/traceability.cpp.o"
  "CMakeFiles/certkit_rules.dir/traceability.cpp.o.d"
  "CMakeFiles/certkit_rules.dir/unit_design.cpp.o"
  "CMakeFiles/certkit_rules.dir/unit_design.cpp.o.d"
  "libcertkit_rules.a"
  "libcertkit_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certkit_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
