file(REMOVE_RECURSE
  "libcertkit_rules.a"
)
