file(REMOVE_RECURSE
  "libkernels.a"
)
