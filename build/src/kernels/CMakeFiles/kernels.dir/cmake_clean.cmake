file(REMOVE_RECURSE
  "CMakeFiles/kernels.dir/conv.cpp.o"
  "CMakeFiles/kernels.dir/conv.cpp.o.d"
  "CMakeFiles/kernels.dir/gemm.cpp.o"
  "CMakeFiles/kernels.dir/gemm.cpp.o.d"
  "CMakeFiles/kernels.dir/stencil.cpp.o"
  "CMakeFiles/kernels.dir/stencil.cpp.o.d"
  "libkernels.a"
  "libkernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
