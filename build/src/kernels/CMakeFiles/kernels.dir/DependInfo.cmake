
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/conv.cpp" "src/kernels/CMakeFiles/kernels.dir/conv.cpp.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/conv.cpp.o.d"
  "/root/repo/src/kernels/gemm.cpp" "src/kernels/CMakeFiles/kernels.dir/gemm.cpp.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/gemm.cpp.o.d"
  "/root/repo/src/kernels/stencil.cpp" "src/kernels/CMakeFiles/kernels.dir/stencil.cpp.o" "gcc" "src/kernels/CMakeFiles/kernels.dir/stencil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/certkit_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/certkit_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
