
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/architecture.cpp" "src/metrics/CMakeFiles/certkit_metrics.dir/architecture.cpp.o" "gcc" "src/metrics/CMakeFiles/certkit_metrics.dir/architecture.cpp.o.d"
  "/root/repo/src/metrics/function_metrics.cpp" "src/metrics/CMakeFiles/certkit_metrics.dir/function_metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/certkit_metrics.dir/function_metrics.cpp.o.d"
  "/root/repo/src/metrics/halstead.cpp" "src/metrics/CMakeFiles/certkit_metrics.dir/halstead.cpp.o" "gcc" "src/metrics/CMakeFiles/certkit_metrics.dir/halstead.cpp.o.d"
  "/root/repo/src/metrics/module_metrics.cpp" "src/metrics/CMakeFiles/certkit_metrics.dir/module_metrics.cpp.o" "gcc" "src/metrics/CMakeFiles/certkit_metrics.dir/module_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/certkit_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lex/CMakeFiles/certkit_lex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/certkit_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
