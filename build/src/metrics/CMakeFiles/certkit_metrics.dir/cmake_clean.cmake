file(REMOVE_RECURSE
  "CMakeFiles/certkit_metrics.dir/architecture.cpp.o"
  "CMakeFiles/certkit_metrics.dir/architecture.cpp.o.d"
  "CMakeFiles/certkit_metrics.dir/function_metrics.cpp.o"
  "CMakeFiles/certkit_metrics.dir/function_metrics.cpp.o.d"
  "CMakeFiles/certkit_metrics.dir/halstead.cpp.o"
  "CMakeFiles/certkit_metrics.dir/halstead.cpp.o.d"
  "CMakeFiles/certkit_metrics.dir/module_metrics.cpp.o"
  "CMakeFiles/certkit_metrics.dir/module_metrics.cpp.o.d"
  "libcertkit_metrics.a"
  "libcertkit_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certkit_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
