file(REMOVE_RECURSE
  "libcertkit_metrics.a"
)
