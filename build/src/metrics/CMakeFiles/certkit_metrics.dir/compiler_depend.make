# Empty compiler generated dependencies file for certkit_metrics.
# This may be replaced when dependencies are built.
