# Empty dependencies file for certkit_lex.
# This may be replaced when dependencies are built.
