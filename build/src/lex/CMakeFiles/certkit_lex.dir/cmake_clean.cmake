file(REMOVE_RECURSE
  "CMakeFiles/certkit_lex.dir/lexer.cpp.o"
  "CMakeFiles/certkit_lex.dir/lexer.cpp.o.d"
  "CMakeFiles/certkit_lex.dir/token.cpp.o"
  "CMakeFiles/certkit_lex.dir/token.cpp.o.d"
  "libcertkit_lex.a"
  "libcertkit_lex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certkit_lex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
