file(REMOVE_RECURSE
  "libcertkit_lex.a"
)
