file(REMOVE_RECURSE
  "libcertkit_coverage.a"
)
