# Empty compiler generated dependencies file for certkit_coverage.
# This may be replaced when dependencies are built.
