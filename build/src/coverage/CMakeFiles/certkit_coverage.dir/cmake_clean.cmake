file(REMOVE_RECURSE
  "CMakeFiles/certkit_coverage.dir/coverage.cpp.o"
  "CMakeFiles/certkit_coverage.dir/coverage.cpp.o.d"
  "libcertkit_coverage.a"
  "libcertkit_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certkit_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
