# Empty compiler generated dependencies file for certkit_corpus.
# This may be replaced when dependencies are built.
