file(REMOVE_RECURSE
  "CMakeFiles/certkit_corpus.dir/analyze.cpp.o"
  "CMakeFiles/certkit_corpus.dir/analyze.cpp.o.d"
  "CMakeFiles/certkit_corpus.dir/generator.cpp.o"
  "CMakeFiles/certkit_corpus.dir/generator.cpp.o.d"
  "libcertkit_corpus.a"
  "libcertkit_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certkit_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
