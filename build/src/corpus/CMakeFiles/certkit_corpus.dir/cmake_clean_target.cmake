file(REMOVE_RECURSE
  "libcertkit_corpus.a"
)
