file(REMOVE_RECURSE
  "CMakeFiles/certkit_ast.dir/parser.cpp.o"
  "CMakeFiles/certkit_ast.dir/parser.cpp.o.d"
  "libcertkit_ast.a"
  "libcertkit_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certkit_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
