file(REMOVE_RECURSE
  "libcertkit_ast.a"
)
