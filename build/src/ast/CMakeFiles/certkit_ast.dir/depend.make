# Empty dependencies file for certkit_ast.
# This may be replaced when dependencies are built.
