file(REMOVE_RECURSE
  "CMakeFiles/nn.dir/basic_layers.cpp.o"
  "CMakeFiles/nn.dir/basic_layers.cpp.o.d"
  "CMakeFiles/nn.dir/conv_layer.cpp.o"
  "CMakeFiles/nn.dir/conv_layer.cpp.o.d"
  "CMakeFiles/nn.dir/detection.cpp.o"
  "CMakeFiles/nn.dir/detection.cpp.o.d"
  "CMakeFiles/nn.dir/network.cpp.o"
  "CMakeFiles/nn.dir/network.cpp.o.d"
  "CMakeFiles/nn.dir/nms.cpp.o"
  "CMakeFiles/nn.dir/nms.cpp.o.d"
  "CMakeFiles/nn.dir/preprocess.cpp.o"
  "CMakeFiles/nn.dir/preprocess.cpp.o.d"
  "CMakeFiles/nn.dir/weights.cpp.o"
  "CMakeFiles/nn.dir/weights.cpp.o.d"
  "libnn.a"
  "libnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
