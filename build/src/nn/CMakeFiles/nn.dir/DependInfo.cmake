
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/basic_layers.cpp" "src/nn/CMakeFiles/nn.dir/basic_layers.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/basic_layers.cpp.o.d"
  "/root/repo/src/nn/conv_layer.cpp" "src/nn/CMakeFiles/nn.dir/conv_layer.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/conv_layer.cpp.o.d"
  "/root/repo/src/nn/detection.cpp" "src/nn/CMakeFiles/nn.dir/detection.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/detection.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/nms.cpp" "src/nn/CMakeFiles/nn.dir/nms.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/nms.cpp.o.d"
  "/root/repo/src/nn/preprocess.cpp" "src/nn/CMakeFiles/nn.dir/preprocess.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/preprocess.cpp.o.d"
  "/root/repo/src/nn/weights.cpp" "src/nn/CMakeFiles/nn.dir/weights.cpp.o" "gcc" "src/nn/CMakeFiles/nn.dir/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/certkit_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/certkit_support.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
