file(REMOVE_RECURSE
  "libadpilot.a"
)
