# Empty dependencies file for adpilot.
# This may be replaced when dependencies are built.
