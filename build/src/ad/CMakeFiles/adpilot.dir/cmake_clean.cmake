file(REMOVE_RECURSE
  "CMakeFiles/adpilot.dir/behavior.cpp.o"
  "CMakeFiles/adpilot.dir/behavior.cpp.o.d"
  "CMakeFiles/adpilot.dir/canbus.cpp.o"
  "CMakeFiles/adpilot.dir/canbus.cpp.o.d"
  "CMakeFiles/adpilot.dir/common.cpp.o"
  "CMakeFiles/adpilot.dir/common.cpp.o.d"
  "CMakeFiles/adpilot.dir/control.cpp.o"
  "CMakeFiles/adpilot.dir/control.cpp.o.d"
  "CMakeFiles/adpilot.dir/localization.cpp.o"
  "CMakeFiles/adpilot.dir/localization.cpp.o.d"
  "CMakeFiles/adpilot.dir/perception.cpp.o"
  "CMakeFiles/adpilot.dir/perception.cpp.o.d"
  "CMakeFiles/adpilot.dir/pipeline.cpp.o"
  "CMakeFiles/adpilot.dir/pipeline.cpp.o.d"
  "CMakeFiles/adpilot.dir/planning.cpp.o"
  "CMakeFiles/adpilot.dir/planning.cpp.o.d"
  "CMakeFiles/adpilot.dir/prediction.cpp.o"
  "CMakeFiles/adpilot.dir/prediction.cpp.o.d"
  "CMakeFiles/adpilot.dir/routing.cpp.o"
  "CMakeFiles/adpilot.dir/routing.cpp.o.d"
  "CMakeFiles/adpilot.dir/scenario.cpp.o"
  "CMakeFiles/adpilot.dir/scenario.cpp.o.d"
  "CMakeFiles/adpilot.dir/tracking.cpp.o"
  "CMakeFiles/adpilot.dir/tracking.cpp.o.d"
  "libadpilot.a"
  "libadpilot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adpilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
