
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ad/behavior.cpp" "src/ad/CMakeFiles/adpilot.dir/behavior.cpp.o" "gcc" "src/ad/CMakeFiles/adpilot.dir/behavior.cpp.o.d"
  "/root/repo/src/ad/canbus.cpp" "src/ad/CMakeFiles/adpilot.dir/canbus.cpp.o" "gcc" "src/ad/CMakeFiles/adpilot.dir/canbus.cpp.o.d"
  "/root/repo/src/ad/common.cpp" "src/ad/CMakeFiles/adpilot.dir/common.cpp.o" "gcc" "src/ad/CMakeFiles/adpilot.dir/common.cpp.o.d"
  "/root/repo/src/ad/control.cpp" "src/ad/CMakeFiles/adpilot.dir/control.cpp.o" "gcc" "src/ad/CMakeFiles/adpilot.dir/control.cpp.o.d"
  "/root/repo/src/ad/localization.cpp" "src/ad/CMakeFiles/adpilot.dir/localization.cpp.o" "gcc" "src/ad/CMakeFiles/adpilot.dir/localization.cpp.o.d"
  "/root/repo/src/ad/perception.cpp" "src/ad/CMakeFiles/adpilot.dir/perception.cpp.o" "gcc" "src/ad/CMakeFiles/adpilot.dir/perception.cpp.o.d"
  "/root/repo/src/ad/pipeline.cpp" "src/ad/CMakeFiles/adpilot.dir/pipeline.cpp.o" "gcc" "src/ad/CMakeFiles/adpilot.dir/pipeline.cpp.o.d"
  "/root/repo/src/ad/planning.cpp" "src/ad/CMakeFiles/adpilot.dir/planning.cpp.o" "gcc" "src/ad/CMakeFiles/adpilot.dir/planning.cpp.o.d"
  "/root/repo/src/ad/prediction.cpp" "src/ad/CMakeFiles/adpilot.dir/prediction.cpp.o" "gcc" "src/ad/CMakeFiles/adpilot.dir/prediction.cpp.o.d"
  "/root/repo/src/ad/routing.cpp" "src/ad/CMakeFiles/adpilot.dir/routing.cpp.o" "gcc" "src/ad/CMakeFiles/adpilot.dir/routing.cpp.o.d"
  "/root/repo/src/ad/scenario.cpp" "src/ad/CMakeFiles/adpilot.dir/scenario.cpp.o" "gcc" "src/ad/CMakeFiles/adpilot.dir/scenario.cpp.o.d"
  "/root/repo/src/ad/tracking.cpp" "src/ad/CMakeFiles/adpilot.dir/tracking.cpp.o" "gcc" "src/ad/CMakeFiles/adpilot.dir/tracking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/nn.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/certkit_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/certkit_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/certkit_support.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
