file(REMOVE_RECURSE
  "libcertkit_report.a"
)
