# Empty dependencies file for certkit_report.
# This may be replaced when dependencies are built.
