file(REMOVE_RECURSE
  "CMakeFiles/certkit_report.dir/renderers.cpp.o"
  "CMakeFiles/certkit_report.dir/renderers.cpp.o.d"
  "CMakeFiles/certkit_report.dir/table.cpp.o"
  "CMakeFiles/certkit_report.dir/table.cpp.o.d"
  "libcertkit_report.a"
  "libcertkit_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certkit_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
