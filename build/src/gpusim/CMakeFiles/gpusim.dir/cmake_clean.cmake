file(REMOVE_RECURSE
  "CMakeFiles/gpusim.dir/gpusim.cpp.o"
  "CMakeFiles/gpusim.dir/gpusim.cpp.o.d"
  "CMakeFiles/gpusim.dir/stream.cpp.o"
  "CMakeFiles/gpusim.dir/stream.cpp.o.d"
  "libgpusim.a"
  "libgpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
