file(REMOVE_RECURSE
  "CMakeFiles/certkit_support.dir/check.cpp.o"
  "CMakeFiles/certkit_support.dir/check.cpp.o.d"
  "CMakeFiles/certkit_support.dir/flags.cpp.o"
  "CMakeFiles/certkit_support.dir/flags.cpp.o.d"
  "CMakeFiles/certkit_support.dir/io.cpp.o"
  "CMakeFiles/certkit_support.dir/io.cpp.o.d"
  "CMakeFiles/certkit_support.dir/rng.cpp.o"
  "CMakeFiles/certkit_support.dir/rng.cpp.o.d"
  "CMakeFiles/certkit_support.dir/status.cpp.o"
  "CMakeFiles/certkit_support.dir/status.cpp.o.d"
  "CMakeFiles/certkit_support.dir/strings.cpp.o"
  "CMakeFiles/certkit_support.dir/strings.cpp.o.d"
  "libcertkit_support.a"
  "libcertkit_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certkit_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
