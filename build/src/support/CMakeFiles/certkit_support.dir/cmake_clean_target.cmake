file(REMOVE_RECURSE
  "libcertkit_support.a"
)
