# Empty dependencies file for certkit_support.
# This may be replaced when dependencies are built.
