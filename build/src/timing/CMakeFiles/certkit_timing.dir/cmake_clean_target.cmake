file(REMOVE_RECURSE
  "libcertkit_timing.a"
)
