file(REMOVE_RECURSE
  "CMakeFiles/certkit_timing.dir/timing.cpp.o"
  "CMakeFiles/certkit_timing.dir/timing.cpp.o.d"
  "libcertkit_timing.a"
  "libcertkit_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certkit_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
