# Empty dependencies file for certkit_timing.
# This may be replaced when dependencies are built.
