file(REMOVE_RECURSE
  "CMakeFiles/brookauto_test.dir/gpusim/brookauto_test.cpp.o"
  "CMakeFiles/brookauto_test.dir/gpusim/brookauto_test.cpp.o.d"
  "brookauto_test"
  "brookauto_test.pdb"
  "brookauto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brookauto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
