# Empty compiler generated dependencies file for brookauto_test.
# This may be replaced when dependencies are built.
