file(REMOVE_RECURSE
  "CMakeFiles/halstead_test.dir/metrics/halstead_test.cpp.o"
  "CMakeFiles/halstead_test.dir/metrics/halstead_test.cpp.o.d"
  "halstead_test"
  "halstead_test.pdb"
  "halstead_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halstead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
