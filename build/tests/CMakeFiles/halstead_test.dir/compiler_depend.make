# Empty compiler generated dependencies file for halstead_test.
# This may be replaced when dependencies are built.
