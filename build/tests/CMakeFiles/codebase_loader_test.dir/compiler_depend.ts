# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for codebase_loader_test.
