# Empty compiler generated dependencies file for codebase_loader_test.
# This may be replaced when dependencies are built.
