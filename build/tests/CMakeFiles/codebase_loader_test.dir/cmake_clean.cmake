file(REMOVE_RECURSE
  "CMakeFiles/codebase_loader_test.dir/rules/codebase_loader_test.cpp.o"
  "CMakeFiles/codebase_loader_test.dir/rules/codebase_loader_test.cpp.o.d"
  "codebase_loader_test"
  "codebase_loader_test.pdb"
  "codebase_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codebase_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
