file(REMOVE_RECURSE
  "CMakeFiles/ad_modules_test.dir/ad/modules_test.cpp.o"
  "CMakeFiles/ad_modules_test.dir/ad/modules_test.cpp.o.d"
  "ad_modules_test"
  "ad_modules_test.pdb"
  "ad_modules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_modules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
