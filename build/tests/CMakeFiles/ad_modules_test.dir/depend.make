# Empty dependencies file for ad_modules_test.
# This may be replaced when dependencies are built.
