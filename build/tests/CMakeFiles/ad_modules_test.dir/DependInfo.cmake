
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ad/modules_test.cpp" "tests/CMakeFiles/ad_modules_test.dir/ad/modules_test.cpp.o" "gcc" "tests/CMakeFiles/ad_modules_test.dir/ad/modules_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ad/CMakeFiles/adpilot.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nn.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/certkit_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/certkit_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/certkit_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
