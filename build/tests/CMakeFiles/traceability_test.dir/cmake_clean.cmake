file(REMOVE_RECURSE
  "CMakeFiles/traceability_test.dir/rules/traceability_test.cpp.o"
  "CMakeFiles/traceability_test.dir/rules/traceability_test.cpp.o.d"
  "traceability_test"
  "traceability_test.pdb"
  "traceability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traceability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
