# Empty compiler generated dependencies file for traceability_test.
# This may be replaced when dependencies are built.
