file(REMOVE_RECURSE
  "CMakeFiles/style_defensive_test.dir/rules/style_defensive_test.cpp.o"
  "CMakeFiles/style_defensive_test.dir/rules/style_defensive_test.cpp.o.d"
  "style_defensive_test"
  "style_defensive_test.pdb"
  "style_defensive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/style_defensive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
