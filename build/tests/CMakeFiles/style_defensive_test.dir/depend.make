# Empty dependencies file for style_defensive_test.
# This may be replaced when dependencies are built.
