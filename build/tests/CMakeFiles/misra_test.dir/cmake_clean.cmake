file(REMOVE_RECURSE
  "CMakeFiles/misra_test.dir/rules/misra_test.cpp.o"
  "CMakeFiles/misra_test.dir/rules/misra_test.cpp.o.d"
  "misra_test"
  "misra_test.pdb"
  "misra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
