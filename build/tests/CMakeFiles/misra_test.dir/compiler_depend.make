# Empty compiler generated dependencies file for misra_test.
# This may be replaced when dependencies are built.
