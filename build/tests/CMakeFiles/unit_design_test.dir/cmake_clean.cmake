file(REMOVE_RECURSE
  "CMakeFiles/unit_design_test.dir/rules/unit_design_test.cpp.o"
  "CMakeFiles/unit_design_test.dir/rules/unit_design_test.cpp.o.d"
  "unit_design_test"
  "unit_design_test.pdb"
  "unit_design_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
