# Empty dependencies file for unit_design_test.
# This may be replaced when dependencies are built.
