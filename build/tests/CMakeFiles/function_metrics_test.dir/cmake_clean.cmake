file(REMOVE_RECURSE
  "CMakeFiles/function_metrics_test.dir/metrics/function_metrics_test.cpp.o"
  "CMakeFiles/function_metrics_test.dir/metrics/function_metrics_test.cpp.o.d"
  "function_metrics_test"
  "function_metrics_test.pdb"
  "function_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
