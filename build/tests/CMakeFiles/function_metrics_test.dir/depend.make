# Empty dependencies file for function_metrics_test.
# This may be replaced when dependencies are built.
