# Empty dependencies file for parser_edge_test.
# This may be replaced when dependencies are built.
