# Empty compiler generated dependencies file for coverage_assessor_test.
# This may be replaced when dependencies are built.
