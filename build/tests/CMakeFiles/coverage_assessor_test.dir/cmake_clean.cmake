file(REMOVE_RECURSE
  "CMakeFiles/coverage_assessor_test.dir/rules/coverage_assessor_test.cpp.o"
  "CMakeFiles/coverage_assessor_test.dir/rules/coverage_assessor_test.cpp.o.d"
  "coverage_assessor_test"
  "coverage_assessor_test.pdb"
  "coverage_assessor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_assessor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
