# Empty compiler generated dependencies file for ad_pipeline_test.
# This may be replaced when dependencies are built.
