file(REMOVE_RECURSE
  "CMakeFiles/ad_pipeline_test.dir/ad/pipeline_test.cpp.o"
  "CMakeFiles/ad_pipeline_test.dir/ad/pipeline_test.cpp.o.d"
  "ad_pipeline_test"
  "ad_pipeline_test.pdb"
  "ad_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
