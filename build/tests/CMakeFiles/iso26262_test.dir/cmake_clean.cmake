file(REMOVE_RECURSE
  "CMakeFiles/iso26262_test.dir/rules/iso26262_test.cpp.o"
  "CMakeFiles/iso26262_test.dir/rules/iso26262_test.cpp.o.d"
  "iso26262_test"
  "iso26262_test.pdb"
  "iso26262_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iso26262_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
