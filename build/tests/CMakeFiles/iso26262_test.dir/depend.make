# Empty dependencies file for iso26262_test.
# This may be replaced when dependencies are built.
