file(REMOVE_RECURSE
  "CMakeFiles/localization_property_test.dir/ad/localization_property_test.cpp.o"
  "CMakeFiles/localization_property_test.dir/ad/localization_property_test.cpp.o.d"
  "localization_property_test"
  "localization_property_test.pdb"
  "localization_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/localization_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
