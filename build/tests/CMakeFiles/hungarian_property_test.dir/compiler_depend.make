# Empty compiler generated dependencies file for hungarian_property_test.
# This may be replaced when dependencies are built.
