file(REMOVE_RECURSE
  "CMakeFiles/hungarian_property_test.dir/ad/hungarian_property_test.cpp.o"
  "CMakeFiles/hungarian_property_test.dir/ad/hungarian_property_test.cpp.o.d"
  "hungarian_property_test"
  "hungarian_property_test.pdb"
  "hungarian_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hungarian_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
