file(REMOVE_RECURSE
  "CMakeFiles/table10_12_coverage.dir/table10_12_coverage.cpp.o"
  "CMakeFiles/table10_12_coverage.dir/table10_12_coverage.cpp.o.d"
  "table10_12_coverage"
  "table10_12_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table10_12_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
