# Empty dependencies file for table10_12_coverage.
# This may be replaced when dependencies are built.
