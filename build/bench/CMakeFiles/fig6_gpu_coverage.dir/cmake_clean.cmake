file(REMOVE_RECURSE
  "CMakeFiles/fig6_gpu_coverage.dir/fig6_gpu_coverage.cpp.o"
  "CMakeFiles/fig6_gpu_coverage.dir/fig6_gpu_coverage.cpp.o.d"
  "fig6_gpu_coverage"
  "fig6_gpu_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gpu_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
