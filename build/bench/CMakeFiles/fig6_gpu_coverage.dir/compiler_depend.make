# Empty compiler generated dependencies file for fig6_gpu_coverage.
# This may be replaced when dependencies are built.
