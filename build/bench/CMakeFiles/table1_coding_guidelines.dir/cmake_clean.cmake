file(REMOVE_RECURSE
  "CMakeFiles/table1_coding_guidelines.dir/table1_coding_guidelines.cpp.o"
  "CMakeFiles/table1_coding_guidelines.dir/table1_coding_guidelines.cpp.o.d"
  "table1_coding_guidelines"
  "table1_coding_guidelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_coding_guidelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
