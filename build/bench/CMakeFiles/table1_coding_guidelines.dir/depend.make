# Empty dependencies file for table1_coding_guidelines.
# This may be replaced when dependencies are built.
