file(REMOVE_RECURSE
  "CMakeFiles/table3_unit_design.dir/table3_unit_design.cpp.o"
  "CMakeFiles/table3_unit_design.dir/table3_unit_design.cpp.o.d"
  "table3_unit_design"
  "table3_unit_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_unit_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
