# Empty compiler generated dependencies file for table3_unit_design.
# This may be replaced when dependencies are built.
