# Empty compiler generated dependencies file for fig8a_gemm.
# This may be replaced when dependencies are built.
