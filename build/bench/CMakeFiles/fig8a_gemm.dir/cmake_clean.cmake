file(REMOVE_RECURSE
  "CMakeFiles/fig8a_gemm.dir/fig8a_gemm.cpp.o"
  "CMakeFiles/fig8a_gemm.dir/fig8a_gemm.cpp.o.d"
  "fig8a_gemm"
  "fig8a_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
