file(REMOVE_RECURSE
  "CMakeFiles/obs_timing_wcet.dir/obs_timing_wcet.cpp.o"
  "CMakeFiles/obs_timing_wcet.dir/obs_timing_wcet.cpp.o.d"
  "obs_timing_wcet"
  "obs_timing_wcet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_timing_wcet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
