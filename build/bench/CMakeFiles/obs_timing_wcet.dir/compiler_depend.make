# Empty compiler generated dependencies file for obs_timing_wcet.
# This may be replaced when dependencies are built.
