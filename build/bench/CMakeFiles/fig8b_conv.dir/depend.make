# Empty dependencies file for fig8b_conv.
# This may be replaced when dependencies are built.
