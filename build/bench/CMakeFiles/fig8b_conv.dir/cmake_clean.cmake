file(REMOVE_RECURSE
  "CMakeFiles/fig8b_conv.dir/fig8b_conv.cpp.o"
  "CMakeFiles/fig8b_conv.dir/fig8b_conv.cpp.o.d"
  "fig8b_conv"
  "fig8b_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
