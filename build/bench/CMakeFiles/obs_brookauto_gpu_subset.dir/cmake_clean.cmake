file(REMOVE_RECURSE
  "CMakeFiles/obs_brookauto_gpu_subset.dir/obs_brookauto_gpu_subset.cpp.o"
  "CMakeFiles/obs_brookauto_gpu_subset.dir/obs_brookauto_gpu_subset.cpp.o.d"
  "obs_brookauto_gpu_subset"
  "obs_brookauto_gpu_subset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_brookauto_gpu_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
