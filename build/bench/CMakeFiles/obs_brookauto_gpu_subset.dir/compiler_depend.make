# Empty compiler generated dependencies file for obs_brookauto_gpu_subset.
# This may be replaced when dependencies are built.
