file(REMOVE_RECURSE
  "CMakeFiles/obs_misra_language_subset.dir/obs_misra_language_subset.cpp.o"
  "CMakeFiles/obs_misra_language_subset.dir/obs_misra_language_subset.cpp.o.d"
  "obs_misra_language_subset"
  "obs_misra_language_subset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_misra_language_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
