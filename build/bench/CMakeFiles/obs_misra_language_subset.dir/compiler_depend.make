# Empty compiler generated dependencies file for obs_misra_language_subset.
# This may be replaced when dependencies are built.
