
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/obs_misra_language_subset.cpp" "bench/CMakeFiles/obs_misra_language_subset.dir/obs_misra_language_subset.cpp.o" "gcc" "bench/CMakeFiles/obs_misra_language_subset.dir/obs_misra_language_subset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/certkit_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/certkit_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/certkit_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/certkit_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/certkit_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lex/CMakeFiles/certkit_lex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/certkit_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
