file(REMOVE_RECURSE
  "CMakeFiles/fig7_objdet_libs.dir/fig7_objdet_libs.cpp.o"
  "CMakeFiles/fig7_objdet_libs.dir/fig7_objdet_libs.cpp.o.d"
  "fig7_objdet_libs"
  "fig7_objdet_libs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_objdet_libs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
