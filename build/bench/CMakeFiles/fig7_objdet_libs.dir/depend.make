# Empty dependencies file for fig7_objdet_libs.
# This may be replaced when dependencies are built.
