# Empty compiler generated dependencies file for table2_architecture.
# This may be replaced when dependencies are built.
