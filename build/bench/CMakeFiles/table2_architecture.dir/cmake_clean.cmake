file(REMOVE_RECURSE
  "CMakeFiles/table2_architecture.dir/table2_architecture.cpp.o"
  "CMakeFiles/table2_architecture.dir/table2_architecture.cpp.o.d"
  "table2_architecture"
  "table2_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
