# Empty compiler generated dependencies file for table4_5_error_mechanisms.
# This may be replaced when dependencies are built.
