file(REMOVE_RECURSE
  "CMakeFiles/table4_5_error_mechanisms.dir/table4_5_error_mechanisms.cpp.o"
  "CMakeFiles/table4_5_error_mechanisms.dir/table4_5_error_mechanisms.cpp.o.d"
  "table4_5_error_mechanisms"
  "table4_5_error_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_5_error_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
