file(REMOVE_RECURSE
  "CMakeFiles/certkit.dir/certkit_cli.cpp.o"
  "CMakeFiles/certkit.dir/certkit_cli.cpp.o.d"
  "certkit"
  "certkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
