# Empty dependencies file for certkit.
# This may be replaced when dependencies are built.
