file(REMOVE_RECURSE
  "CMakeFiles/assess_codebase.dir/assess_codebase.cpp.o"
  "CMakeFiles/assess_codebase.dir/assess_codebase.cpp.o.d"
  "assess_codebase"
  "assess_codebase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assess_codebase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
