# Empty compiler generated dependencies file for assess_codebase.
# This may be replaced when dependencies are built.
