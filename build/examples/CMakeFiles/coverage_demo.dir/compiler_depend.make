# Empty compiler generated dependencies file for coverage_demo.
# This may be replaced when dependencies are built.
