# Empty compiler generated dependencies file for ad_drive_demo.
# This may be replaced when dependencies are built.
