file(REMOVE_RECURSE
  "CMakeFiles/ad_drive_demo.dir/ad_drive_demo.cpp.o"
  "CMakeFiles/ad_drive_demo.dir/ad_drive_demo.cpp.o.d"
  "ad_drive_demo"
  "ad_drive_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_drive_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
