// certkit quickstart: parse a C++/CUDA snippet, compute metrics, and run the
// guideline checkers — the 60-second tour of the public API.
//
//   $ ./quickstart
#include <cstdio>

#include "ast/parser.h"
#include "metrics/function_metrics.h"
#include "metrics/module_metrics.h"
#include "rules/misra.h"
#include "rules/style.h"
#include "rules/unit_design.h"

int main() {
  // A small CUDA-flavored source with the kinds of findings the paper's
  // Figure 4 discusses: raw pointers, dynamic device memory, a goto, a
  // C-style cast, multiple exit points.
  const char* source = R"cpp(
#include <cstdint>

int g_frame_count = 0;

__global__ void scale_bias_gpu(float* output, const float* biases, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    output[i] = output[i] * 2.0f + biases[i];
  }
}

int process_frame(float* data, int size, double gain) {
  if (size <= 0) goto fail;
  for (int k = 0; k < size; ++k) {
    data[k] = data[k] * (float)gain;
  }
  g_frame_count += 1;
  return size;
fail:
  return -1;
}
)cpp";

  auto parsed = certkit::ast::ParseSource("snippet.cu", source);
  if (!parsed.ok()) {
    std::printf("parse failed: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  const certkit::ast::SourceFileModel& model = parsed.value();

  std::printf("=== structure ===\n");
  std::printf("functions: %zu, globals: %zu, casts: %zu, includes: %zu\n\n",
              model.functions.size(), model.globals.size(),
              model.casts.size(), model.includes.size());

  std::printf("=== per-function metrics (Lizard rule) ===\n");
  for (const auto& fn : model.functions) {
    const auto m = certkit::metrics::ComputeFunctionMetrics(model, fn);
    std::printf("  %-18s CC=%-3d NLOC=%-3d params=%d returns=%d %s\n",
                m.qualified_name.c_str(), m.cyclomatic_complexity, m.nloc,
                m.param_count, m.return_count,
                fn.is_cuda_kernel ? "[CUDA kernel]" : "");
  }

  std::printf("\n=== MISRA-subset findings ===\n");
  const auto misra = certkit::rules::CheckMisra(model);
  for (const auto& f : misra.findings) {
    std::printf("  %s:%d [%s] %s\n", f.file.c_str(), f.line,
                f.rule_id.c_str(), f.message.c_str());
  }

  std::printf("\n=== unit-design statistics (ISO 26262-6 Table 8) ===\n");
  std::vector<certkit::ast::SourceFileModel> files;
  files.push_back(model);  // copy: the module takes ownership
  auto module = certkit::metrics::AnalyzeModule("snippet", std::move(files));
  const auto unit = certkit::rules::AnalyzeUnitDesign(module);
  std::printf("  multi-exit functions : %lld of %lld\n",
              static_cast<long long>(unit.stats.functions_multi_exit),
              static_cast<long long>(unit.stats.functions_total));
  std::printf("  mutable globals      : %lld\n",
              static_cast<long long>(unit.stats.mutable_globals));
  std::printf("  pointer parameters   : %lld\n",
              static_cast<long long>(unit.stats.pointer_params));
  std::printf("  explicit casts       : %lld\n",
              static_cast<long long>(unit.stats.explicit_casts));
  std::printf("  goto statements      : %lld\n",
              static_cast<long long>(unit.stats.goto_statements));

  std::printf("\n=== CUDA dialect (Observations 3-4) ===\n");
  const auto cuda = certkit::rules::AnalyzeCudaDialect(model);
  std::printf("  kernels: %d, pointer params in kernels: %d\n",
              cuda.kernel_count, cuda.kernel_pointer_params);
  return 0;
}
