// certkit quickstart: analyze a C++/CUDA snippet through the shared
// AnalysisDriver and read the precomputed artifacts — the 60-second tour of
// the public API.
//
//   $ ./quickstart
#include <cstdio>

#include "driver/analysis_driver.h"
#include "rules/unit_design.h"

int main() {
  // A small CUDA-flavored source with the kinds of findings the paper's
  // Figure 4 discusses: raw pointers, dynamic device memory, a goto, a
  // C-style cast, multiple exit points.
  const char* source = R"cpp(
#include <cstdint>

int g_frame_count = 0;

__global__ void scale_bias_gpu(float* output, const float* biases, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    output[i] = output[i] * 2.0f + biases[i];
  }
}

int process_frame(float* data, int size, double gain) {
  if (size <= 0) goto fail;
  for (int k = 0; k < size; ++k) {
    data[k] = data[k] * (float)gain;
  }
  g_frame_count += 1;
  return size;
fail:
  return -1;
}
)cpp";

  // One driver call replaces the parse → metrics → rule-checker sequence:
  // every artifact below comes out of this single analysis pass.
  certkit::driver::DriverOptions options;
  options.default_module = "snippet";
  certkit::driver::AnalysisDriver driver(options);
  auto analyzed = driver.AnalyzeSources({{"snippet.cu", source}});
  if (!analyzed.ok() || analyzed.value().files.empty()) {
    std::printf("analysis failed\n");
    return 1;
  }
  const certkit::driver::CodebaseAnalysis& cb = analyzed.value();
  const certkit::driver::FileAnalysis& fa = cb.files[0];
  const certkit::ast::SourceFileModel& model =
      cb.modules[fa.module_index].files[fa.file_index];

  std::printf("=== structure ===\n");
  std::printf("functions: %zu, globals: %zu, casts: %zu, includes: %zu\n\n",
              model.functions.size(), model.globals.size(),
              model.casts.size(), model.includes.size());

  std::printf("=== per-function metrics (Lizard rule) ===\n");
  for (std::size_t i = 0; i < fa.functions.size(); ++i) {
    const auto& m = fa.functions[i];
    std::printf("  %-18s CC=%-3d NLOC=%-3d params=%d returns=%d %s\n",
                m.qualified_name.c_str(), m.cyclomatic_complexity, m.nloc,
                m.param_count, m.return_count,
                model.functions[i].is_cuda_kernel ? "[CUDA kernel]" : "");
  }

  std::printf("\n=== MISRA-subset findings ===\n");
  for (const auto& f : fa.misra.findings) {
    std::printf("  %s:%d [%s] %s\n", f.file.c_str(), f.line,
                f.rule_id.c_str(), f.message.c_str());
  }

  std::printf("\n=== unit-design statistics (ISO 26262-6 Table 8) ===\n");
  const auto& unit = cb.unit_design[fa.module_index];
  std::printf("  multi-exit functions : %lld of %lld\n",
              static_cast<long long>(unit.stats.functions_multi_exit),
              static_cast<long long>(unit.stats.functions_total));
  std::printf("  mutable globals      : %lld\n",
              static_cast<long long>(unit.stats.mutable_globals));
  std::printf("  pointer parameters   : %lld\n",
              static_cast<long long>(unit.stats.pointer_params));
  std::printf("  explicit casts       : %lld\n",
              static_cast<long long>(unit.stats.explicit_casts));
  std::printf("  goto statements      : %lld\n",
              static_cast<long long>(unit.stats.goto_statements));

  std::printf("\n=== CUDA dialect (Observations 3-4) ===\n");
  const auto cuda = certkit::rules::AnalyzeCudaDialect(model);
  std::printf("  kernels: %d, pointer params in kernels: %d\n",
              cuda.kernel_count, cuda.kernel_pointer_params);
  return 0;
}
