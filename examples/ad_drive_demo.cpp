// Closed-loop drive of the Apollo-like AD stack (Figure 1 of the paper):
// perception -> tracking -> prediction -> localization -> routing ->
// planning -> control -> CAN bus, over a simulated road with traffic.
//
//   $ ./ad_drive_demo [seconds]
#include <cstdio>
#include <cstdlib>

#include "ad/pipeline.h"

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 30.0;

  adpilot::PilotConfig cfg;
  cfg.scenario.num_vehicles = 3;
  cfg.scenario.seed = 2026;
  cfg.goal_x = 200.0;

  adpilot::ApolloPilot pilot(cfg);
  std::printf("Route: %zu waypoints, %.0f m. Driving for %.0f s...\n\n",
              pilot.route().waypoints.size(), pilot.route().length, seconds);
  std::printf("%6s %9s %9s %7s %6s %7s %9s %9s %8s\n", "t[s]", "x[m]",
              "y[m]", "v[m/s]", "dets", "tracks", "clear[m]", "behavior",
              "plan");

  const auto reports = pilot.Run(seconds);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i % 20 != 19) continue;  // print every 2 seconds
    const adpilot::TickReport& r = reports[i];
    std::printf("%6.1f %9.2f %9.2f %7.2f %6zu %7zu %9.2f %9s %8s\n",
                r.time, r.ground_truth.pose.position.x,
                r.ground_truth.pose.position.y, r.ground_truth.speed,
                r.detections, r.tracked_obstacles,
                r.min_obstacle_distance,
                adpilot::DrivingBehaviorName(r.behavior),
                r.plan_collision_free ? "ok" : "E-STOP");
  }

  std::printf("\n=== drive summary ===\n");
  std::printf("  distance traveled : %.1f m\n",
              reports.back().ground_truth.pose.position.x);
  std::printf("  goal reached      : %s\n",
              pilot.ReachedGoal() ? "yes" : "no");
  std::printf("  minimum clearance : %.2f m %s\n", pilot.MinClearanceSoFar(),
              pilot.MinClearanceSoFar() > 0.0 ? "(no collision)"
                                              : "(COLLISION)");
  const double loc_err = reports.back().localized.pose.position.DistanceTo(
      reports.back().ground_truth.pose.position);
  std::printf("  final localization error: %.2f m (GNSS noise: %.1f m)\n",
              loc_err, cfg.localization.gnss_noise);
  return pilot.MinClearanceSoFar() > 0.0 ? 0 : 1;
}
