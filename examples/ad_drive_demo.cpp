// Closed-loop drive of the Apollo-like AD stack (Figure 1 of the paper):
// perception -> tracking -> prediction -> localization -> routing ->
// planning -> control -> CAN bus, over a simulated road with traffic.
//
// The runtime safety layer (src/ad/safety) monitors every cycle; pass a
// fault name to watch it respond to an injected fault:
//
//   $ ./ad_drive_demo [seconds] [fault]
//     fault in: sensor_dropout detection_nan detection_range
//               stale_localization can_bit_flip can_frame_drop
//               timing_overrun
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "ad/pipeline.h"

namespace {

std::optional<adpilot::FaultKind> ParseFaultKind(const char* name) {
  for (int k = 0; k < adpilot::kNumFaultKinds; ++k) {
    const auto kind = static_cast<adpilot::FaultKind>(k);
    if (std::strcmp(name, adpilot::FaultKindName(kind)) == 0) return kind;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 30.0;

  adpilot::PilotConfig cfg;
  cfg.scenario.num_vehicles = 3;
  cfg.scenario.seed = 2026;
  cfg.goal_x = 200.0;

  adpilot::ApolloPilot pilot(cfg);

  adpilot::FaultInjector* injector = nullptr;
  adpilot::FaultCampaignConfig campaign;
  if (argc > 2) {
    const auto kind = ParseFaultKind(argv[2]);
    if (!kind.has_value()) {
      std::fprintf(stderr, "unknown fault kind: %s\n", argv[2]);
      return 2;
    }
    campaign.seed = cfg.scenario.seed;
    campaign.faults.push_back({*kind, /*onset_tick=*/50,
                               /*duration_ticks=*/40, /*magnitude=*/1.0});
    static adpilot::FaultInjector static_injector(campaign);
    injector = &static_injector;
    pilot.SetFaultInjector(injector);
    std::printf("Injecting %s over ticks [50, 90).\n",
                adpilot::FaultKindName(*kind));
  }

  std::printf("Route: %zu waypoints, %.0f m. Driving for %.0f s...\n\n",
              pilot.route().waypoints.size(), pilot.route().length, seconds);
  std::printf("%6s %9s %9s %7s %6s %7s %9s %9s %8s %9s\n", "t[s]", "x[m]",
              "y[m]", "v[m/s]", "dets", "tracks", "clear[m]", "behavior",
              "plan", "safety");

  const auto reports = pilot.Run(seconds);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i % 20 != 19) continue;  // print every 2 seconds
    const adpilot::TickReport& r = reports[i];
    char clearance[16];
    if (r.obstacle_in_range) {
      std::snprintf(clearance, sizeof(clearance), "%9.2f",
                    r.min_obstacle_distance);
    } else {
      std::snprintf(clearance, sizeof(clearance), "%9s", "none");
    }
    std::printf("%6.1f %9.2f %9.2f %7.2f %6zu %7zu %s %9s %8s %9s\n",
                r.time, r.ground_truth.pose.position.x,
                r.ground_truth.pose.position.y, r.ground_truth.speed,
                r.detections, r.tracked_obstacles, clearance,
                adpilot::DrivingBehaviorName(r.behavior),
                r.plan_collision_free ? "ok" : "E-STOP",
                adpilot::SafetyStateName(r.safety_state));
  }

  std::printf("\n=== drive summary ===\n");
  std::printf("  distance traveled : %.1f m\n",
              reports.back().ground_truth.pose.position.x);
  std::printf("  goal reached      : %s\n",
              pilot.ReachedGoal() ? "yes" : "no");
  if (pilot.HasClearanceSample()) {
    std::printf("  minimum clearance : %.2f m %s\n", pilot.MinClearanceSoFar(),
                pilot.MinClearanceSoFar() > 0.0 ? "(no collision)"
                                                : "(COLLISION)");
  } else {
    std::printf("  minimum clearance : no obstacles encountered\n");
  }
  const double loc_err = reports.back().localized.pose.position.DistanceTo(
      reports.back().ground_truth.pose.position);
  std::printf("  final localization error: %.2f m (GNSS noise: %.1f m)\n",
              loc_err, cfg.localization.gnss_noise);
  std::printf("  safety            : state %s | violations %lld | "
              "handled %lld\n",
              adpilot::SafetyStateName(pilot.safety_state()),
              static_cast<long long>(pilot.safety_log().size()),
              static_cast<long long>(pilot.safety_log().CountHandled()));
  if (injector != nullptr) {
    std::printf("  faults injected   : %lld\n",
                static_cast<long long>(injector->total_injected()));
  }
  const bool collided =
      pilot.HasClearanceSample() && pilot.MinClearanceSoFar() <= 0.0;
  return collided ? 1 : 0;
}
