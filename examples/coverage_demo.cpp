// Structural-coverage demo: statement, branch, and MC/DC on an instrumented
// subject, showing why branch coverage is not MC/DC (the paper's §3.2).
//
//   $ ./coverage_demo
#include <cstdio>

#include "coverage/coverage.h"

namespace {

using certkit::cov::Registry;
using certkit::cov::Unit;

// The subject: a tiny brake-arbitration function, instrumented by hand the
// same way the nn/ and kernels/ subjects are.
struct BrakeLogic {
  Unit& u = Registry::Instance().GetOrCreate("demo/brake_logic.cc");
  int d_engage;  // 3 conditions: driver_brake || (auto_mode && obstacle)
  int d_full;    // 1 condition: speed > 20

  BrakeLogic() {
    u.DeclareStatements(3);
    d_engage = u.DeclareDecision(3);
    d_full = u.DeclareDecision(1);
  }

  // Returns brake force in [0, 1].
  double Decide(bool driver_brake, bool auto_mode, bool obstacle,
                double speed) {
    const bool c0 = u.Cond(d_engage, 0, driver_brake);
    const bool c1 = u.Cond(d_engage, 1, auto_mode);
    const bool c2 = u.Cond(d_engage, 2, obstacle);
    if (!u.Dec(d_engage, c0 || (c1 && c2))) {
      u.Stmt(0);
      return 0.0;
    }
    if (u.Branch(d_full, speed > 20.0)) {
      u.Stmt(1);
      return 1.0;
    }
    u.Stmt(2);
    return 0.5;
  }
};

void Report(const Unit& u, const char* label) {
  std::printf("%-34s stmt %5.1f%%  branch %5.1f%%  MC/DC %5.1f%% (%lld/%lld "
              "conditions)\n",
              label, 100.0 * u.StatementCoverage(),
              100.0 * u.BranchCoverage(), 100.0 * u.McdcCoverage(),
              static_cast<long long>(u.mcdc_conditions_demonstrated()),
              static_cast<long long>(u.mcdc_conditions_total()));
}

}  // namespace

int main() {
  BrakeLogic logic;

  std::printf("Subject: brake = driver_brake || (auto_mode && obstacle)\n\n");

  // Test 1: the two "obvious" tests. Full branch coverage of the engage
  // decision — yet NO condition is demonstrated independent.
  logic.Decide(true, true, true, 30.0);    // engage, full brake
  logic.Decide(false, false, false, 10.0); // no brake
  Report(logic.u, "after 2 tests (happy/sad path):");

  // Test 2: unique-cause pairs, one per condition.
  logic.Decide(true, false, false, 10.0);  // driver_brake alone flips it
  logic.Decide(false, true, true, 10.0);   // auto&&obstacle path
  logic.Decide(false, false, true, 10.0);  // auto_mode shown independent
  logic.Decide(false, true, false, 10.0);  // obstacle shown independent
  Report(logic.u, "after MC/DC-directed tests:");

  std::printf(
      "\nThe first pair already achieved 100%% branch coverage, but 0%%\n"
      "MC/DC: the vectors (T,T,T) and (F,F,F) differ in every condition at\n"
      "once, demonstrating none of them. This is exactly why IEC 61508 and\n"
      "ISO 26262 ask for MC/DC at the highest integrity levels, and why the\n"
      "paper reports it separately in Figure 5.\n");
  return 0;
}
