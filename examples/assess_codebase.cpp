// Full ISO 26262-6 assessment of a real C++ source tree — the paper's
// workflow applied to any codebase, including this repository's own AD
// pipeline:
//
//   $ ./assess_codebase src/ad        # assess the adpilot stack
//   $ ./assess_codebase src           # assess everything under src/
//
// Every directory directly under the given root becomes one "module"
// (component); files at the root itself form the module "<root>".
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "metrics/module_metrics.h"
#include "report/renderers.h"
#include "rules/assessor.h"
#include "rules/traceability.h"
#include "support/io.h"

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : "src/ad";
  auto files = certkit::support::ListFiles(
      root, {".cc", ".cpp", ".cxx", ".h", ".hpp", ".cu", ".cuh"});
  if (!files.ok()) {
    std::printf("cannot list '%s': %s\nusage: %s <source-dir>\n",
                root.c_str(), files.status().ToString().c_str(), argv[0]);
    return 1;
  }
  if (files.value().empty()) {
    std::printf("no C/C++/CUDA sources under '%s'\n", root.c_str());
    return 1;
  }

  // Group files into modules by first-level subdirectory.
  std::map<std::string, std::vector<std::string>> by_module;
  for (const std::string& path : files.value()) {
    const fs::path rel = fs::relative(path, root);
    const std::string module =
        rel.has_parent_path() ? rel.begin()->string()
                              : fs::path(root).filename().string();
    by_module[module].push_back(path);
  }

  std::vector<certkit::metrics::ModuleAnalysis> modules;
  std::vector<certkit::rules::RawSource> raw_sources;
  std::vector<certkit::rules::TraceReport> traces;
  std::size_t parsed_files = 0;
  certkit::ast::ParseOptions parse_opts;
  parse_opts.lex_options.keep_comments = true;  // requirement traceability
  for (auto& [module, paths] : by_module) {
    std::vector<certkit::ast::SourceFileModel> parsed;
    for (const std::string& path : paths) {
      auto content = certkit::support::ReadFile(path);
      if (!content.ok()) {
        std::printf("  skipping %s: %s\n", path.c_str(),
                    content.status().ToString().c_str());
        continue;
      }
      auto model =
          certkit::ast::ParseSource(path, content.value(), parse_opts);
      if (!model.ok()) {
        std::printf("  skipping %s: %s\n", path.c_str(),
                    model.status().ToString().c_str());
        continue;
      }
      raw_sources.push_back(
          certkit::rules::RawSource{path, std::move(content).value()});
      traces.push_back(
          certkit::rules::AnalyzeTraceability(model.value()));
      parsed.push_back(std::move(model).value());
      ++parsed_files;
    }
    if (!parsed.empty()) {
      modules.push_back(
          certkit::metrics::AnalyzeModule(module, std::move(parsed)));
    }
  }
  std::printf("Assessing '%s': %zu files across %zu modules\n\n",
              root.c_str(), parsed_files, modules.size());

  // Figure-3-style module table.
  std::vector<certkit::metrics::ModuleMetrics> metric_rows;
  for (const auto& m : modules) metric_rows.push_back(m.metrics);
  std::printf("%s\n",
              certkit::report::RenderModuleComplexity(metric_rows).c_str());

  // The three ISO 26262-6 technique tables.
  certkit::rules::Assessor assessor(&modules, &raw_sources);
  std::printf("%s\n", certkit::report::RenderTechniqueAssessment(
                          certkit::rules::CodingGuidelinesTable(),
                          assessor.AssessCodingGuidelines())
                          .c_str());
  std::printf("%s\n", certkit::report::RenderTechniqueAssessment(
                          certkit::rules::ArchitecturalDesignTable(),
                          assessor.AssessArchitecture())
                          .c_str());
  std::printf("%s\n", certkit::report::RenderTechniqueAssessment(
                          certkit::rules::UnitDesignTable(),
                          assessor.AssessUnitDesign())
                          .c_str());

  // ASIL-D gap summary: which highly-recommended techniques fail.
  int gaps = 0;
  auto count_gaps = [&](const certkit::rules::TechniqueTable& table,
                        const certkit::rules::TableAssessment& assessment) {
    for (std::size_t i = 0; i < table.techniques.size(); ++i) {
      if (!certkit::rules::Satisfies(
              assessment.assessments[i].verdict,
              table.techniques[i].At(certkit::rules::Asil::kD))) {
        ++gaps;
        std::printf("  ASIL-D gap: %s — %s\n",
                    table.techniques[i].name.c_str(),
                    assessment.assessments[i].evidence.c_str());
      }
    }
  };
  // Requirement traceability (ISO 26262 life-cycle: link requirements to
  // the code implementing them).
  const certkit::rules::TraceReport trace =
      certkit::rules::MergeTraceReports(traces);
  std::printf("=== requirement traceability ===\n");
  std::printf("  requirement tags    : %zu distinct\n",
              trace.Requirements().size());
  for (const auto& link : trace.links) {
    std::printf("  %-14s -> %s\n", link.requirement.c_str(),
                link.function.empty() ? "(dangling)" : link.function.c_str());
  }
  std::printf("  traced functions    : %.1f%% (%lld of %lld untraced)\n\n",
              100.0 * trace.TraceabilityRatio(),
              static_cast<long long>(trace.untraced_functions.size()),
              static_cast<long long>(trace.functions_total));

  std::printf("=== certification gap summary (target: ASIL-D) ===\n");
  count_gaps(certkit::rules::CodingGuidelinesTable(),
             assessor.AssessCodingGuidelines());
  count_gaps(certkit::rules::ArchitecturalDesignTable(),
             assessor.AssessArchitecture());
  count_gaps(certkit::rules::UnitDesignTable(), assessor.AssessUnitDesign());
  if (gaps == 0) {
    std::printf("  none — all assessed techniques satisfy ASIL-D\n");
  } else {
    std::printf("  %d technique(s) below the ASIL-D recommendation\n", gaps);
  }
  return 0;
}
