// Full ISO 26262-6 assessment of a real C++ source tree — the paper's
// workflow applied to any codebase, including this repository's own AD
// pipeline:
//
//   $ ./assess_codebase src/ad        # assess the adpilot stack
//   $ ./assess_codebase src           # assess everything under src/
//   $ ./assess_codebase src --jobs 4  # pin the analysis worker count
//
// Every directory directly under the given root becomes one "module"
// (component); files at the root itself form the module "<root>". All the
// reading/parsing/metric work happens inside driver::AnalysisDriver — this
// example only renders the precomputed artifacts.
#include <cstdio>
#include <string>

#include "driver/analysis_driver.h"
#include "report/renderers.h"
#include "rules/assessor.h"
#include "support/flags.h"

int main(int argc, char** argv) {
  certkit::support::FlagParser flags(argc, argv);
  const std::string root =
      flags.positional().empty() ? "src/ad" : flags.positional()[0];

  certkit::driver::DriverOptions options;
  options.jobs = static_cast<int>(flags.GetInt("jobs", 0).value_or(0));
  certkit::driver::AnalysisDriver driver(options);
  auto analyzed = driver.AnalyzeTree(root);
  if (!analyzed.ok()) {
    std::printf("cannot analyze '%s': %s\nusage: %s <source-dir> [--jobs N]\n",
                root.c_str(), analyzed.status().ToString().c_str(), argv[0]);
    return 1;
  }
  const certkit::driver::CodebaseAnalysis& cb = analyzed.value();
  for (const std::string& path : cb.skipped) {
    std::printf("  skipping %s: unreadable or unparseable\n", path.c_str());
  }
  if (cb.files.empty()) {
    std::printf("no C/C++/CUDA sources under '%s'\n", root.c_str());
    return 1;
  }
  std::printf("Assessing '%s': %zu files across %zu modules\n\n",
              root.c_str(), cb.files.size(), cb.modules.size());

  // Figure-3-style module table.
  std::printf("%s\n", certkit::report::RenderModuleComplexity(
                          cb.ModuleMetricsRows())
                          .c_str());

  // The three ISO 26262-6 technique tables, from the precomputed per-file
  // and per-module artifacts.
  certkit::rules::Assessor assessor(cb.MakeAssessorInputs());
  std::printf("%s\n", certkit::report::RenderTechniqueAssessment(
                          certkit::rules::CodingGuidelinesTable(),
                          assessor.AssessCodingGuidelines())
                          .c_str());
  std::printf("%s\n", certkit::report::RenderTechniqueAssessment(
                          certkit::rules::ArchitecturalDesignTable(),
                          assessor.AssessArchitecture())
                          .c_str());
  std::printf("%s\n", certkit::report::RenderTechniqueAssessment(
                          certkit::rules::UnitDesignTable(),
                          assessor.AssessUnitDesign())
                          .c_str());

  // ASIL-D gap summary: which highly-recommended techniques fail.
  int gaps = 0;
  auto count_gaps = [&](const certkit::rules::TechniqueTable& table,
                        const certkit::rules::TableAssessment& assessment) {
    for (std::size_t i = 0; i < table.techniques.size(); ++i) {
      if (!certkit::rules::Satisfies(
              assessment.assessments[i].verdict,
              table.techniques[i].At(certkit::rules::Asil::kD))) {
        ++gaps;
        std::printf("  ASIL-D gap: %s — %s\n",
                    table.techniques[i].name.c_str(),
                    assessment.assessments[i].evidence.c_str());
      }
    }
  };
  // Requirement traceability (ISO 26262 life-cycle: link requirements to
  // the code implementing them).
  const certkit::rules::TraceReport trace = cb.MergedTrace();
  std::printf("=== requirement traceability ===\n");
  std::printf("  requirement tags    : %zu distinct\n",
              trace.Requirements().size());
  for (const auto& link : trace.links) {
    std::printf("  %-14s -> %s\n", link.requirement.c_str(),
                link.function.empty() ? "(dangling)" : link.function.c_str());
  }
  std::printf("  traced functions    : %.1f%% (%lld of %lld untraced)\n\n",
              100.0 * trace.TraceabilityRatio(),
              static_cast<long long>(trace.untraced_functions.size()),
              static_cast<long long>(trace.functions_total));

  std::printf("=== certification gap summary (target: ASIL-D) ===\n");
  count_gaps(certkit::rules::CodingGuidelinesTable(),
             assessor.AssessCodingGuidelines());
  count_gaps(certkit::rules::ArchitecturalDesignTable(),
             assessor.AssessArchitecture());
  count_gaps(certkit::rules::UnitDesignTable(), assessor.AssessUnitDesign());
  if (gaps == 0) {
    std::printf("  none — all assessed techniques satisfy ASIL-D\n");
  } else {
    std::printf("  %d technique(s) below the ASIL-D recommendation\n", gaps);
  }
  return 0;
}
