// trace_lint — standalone validator for certkit's Chrome trace-event
// exports.
//
//   trace_lint <trace.json> [more.json ...]
//
// Checks each file against the subset of the trace-event format certkit
// emits (see DESIGN.md): a {"traceEvents": [...]} document whose events are
// either "X" (complete, with integer ts >= 0 and dur >= 1) or "M"
// (metadata), plus the structural invariant the logical clock guarantees —
// within one tid, span intervals either nest or are disjoint; a partial
// overlap means the exporter's sequence clock is broken.
//
// The validator is an independent re-implementation (its own JSON parser,
// its own interval check) so exporter bugs cannot hide behind shared code.
//
// Exit status: 0 when every file validates, 1 otherwise (CI-friendly).
#include <cstdio>

#include "obs/trace_validate.h"
#include "support/io.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: trace_lint <trace.json> [more.json ...]\n");
    return 1;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    auto content = certkit::support::ReadFile(argv[i]);
    if (!content.ok()) {
      std::printf("%s: error: %s\n", argv[i],
                  content.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::string error;
    if (certkit::obs::ValidateChromeTrace(content.value(), &error)) {
      std::printf("%s: OK (%zu bytes)\n", argv[i], content.value().size());
    } else {
      std::printf("%s: INVALID: %s\n", argv[i], error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
