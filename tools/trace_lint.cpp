// trace_lint — standalone validator for certkit's observability exports.
//
//   trace_lint <file.json> [more.json ...]
//
// Two document kinds, dispatched on the root key:
//
//  * Chrome trace-event exports ({"traceEvents": [...]}): checked against
//    the subset certkit emits (see DESIGN.md) — events are either "X"
//    (complete, with integer ts >= 0 and dur >= 1) or "M" (metadata), plus
//    the structural invariant the logical clock guarantees — within one
//    tid, span intervals either nest or are disjoint; a partial overlap
//    means the exporter's sequence clock is broken.
//
//  * Flight-recorder dumps ({"flight_dump": {...}}): schema version,
//    well-formed trigger, per-thread event ordering strictly monotone in
//    the sequence clock, known event/stage/monitor/state vocabulary, and a
//    well-formed metrics snapshot (bucket arrays of length bounds+1 that
//    sum to the count; quantiles numeric or "+inf").
//
// Both validators are independent re-implementations (own JSON parsing,
// own invariant checks) so emitter bugs cannot hide behind shared code.
//
// Exit status: 0 when every file validates, 1 otherwise (CI-friendly).
#include <cstdio>
#include <string>

#include "obs/flight_validate.h"
#include "obs/trace_validate.h"
#include "support/io.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::printf("usage: trace_lint <file.json> [more.json ...]\n");
    return 1;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    auto content = certkit::support::ReadFile(argv[i]);
    if (!content.ok()) {
      std::printf("%s: error: %s\n", argv[i],
                  content.status().ToString().c_str());
      ++failures;
      continue;
    }
    // Dispatch on the root key: a flight dump opens with "flight_dump",
    // a trace with "traceEvents".
    const bool is_flight =
        content.value().find("\"flight_dump\"") != std::string::npos;
    std::string error;
    const bool ok =
        is_flight
            ? certkit::obs::ValidateFlightDump(content.value(), &error)
            : certkit::obs::ValidateChromeTrace(content.value(), &error);
    if (ok) {
      std::printf("%s: OK (%s, %zu bytes)\n", argv[i],
                  is_flight ? "flight dump" : "trace", content.value().size());
    } else {
      std::printf("%s: INVALID: %s\n", argv[i], error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
