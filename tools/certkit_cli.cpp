// certkit — the command-line front end of the assessment toolkit.
//
//   certkit metrics <dir> [--csv]          Figure-3-style module table
//   certkit misra <dir> [--max N]          MISRA-subset findings
//   certkit style <dir> [--max N]          style-guide findings
//   certkit assess <dir> [--asil D]        the three ISO 26262-6 tables +
//                                          gap list at the target ASIL
//   certkit traceability <dir>             requirement traceability
//   certkit campaign [--seed N] [--jobs N] coverage-guided scenario campaign
//   certkit replay <artifact> [--diff]     re-execute a finding artifact
//                                          bit-identically; differential
//                                          oracle + ddmin repro shrinking
//   certkit trace [--trace-out F]          instrumented pilot drive + mini
//                                          campaign; Chrome trace + metrics
//   certkit dump [--out F] [--ticks N]     instrumented pilot drive, then an
//                                          explicit flight-recorder dump
//
// All commands accept --jobs N to set the worker count (default: hardware
// concurrency). Output is bit-identical for every N — analysis merges
// per-file artifacts in stable path order, and the campaign merges
// candidate results in stable seed order. `trace` extends the contract to
// its exports: span timestamps are logical sequence numbers, so the trace
// and metrics files are byte-identical for any --jobs at a fixed --seed
// (wall-clock fields appear only under --timing).
//
// Exit status: 0 on success; 1 on usage/input errors; for `assess`, 2 when
// the codebase does not meet the target ASIL (CI-friendly); for `replay`,
// 2 when the re-execution or the differential oracle diverges.
#include <cstdio>
#include <iostream>
#include <string>

#include "ad/pipeline.h"
#include "campaign/checkpoint.h"
#include "campaign/minimize.h"
#include "campaign/replay.h"
#include "campaign/runner.h"
#include "campaign/service.h"
#include "driver/analysis_driver.h"
#include "metrics/halstead.h"
#include "obs/flight_recorder.h"
#include "obs/flight_validate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_validate.h"
#include "report/renderers.h"
#include "report/table.h"
#include "rules/assessor.h"
#include "support/flags.h"
#include "support/io.h"
#include "support/strings.h"

namespace {

using certkit::driver::AnalysisDriver;
using certkit::driver::CodebaseAnalysis;
using certkit::driver::DriverOptions;
using certkit::support::FlagParser;

int Usage() {
  std::printf(
      "usage: certkit <command> <source-dir> [flags]\n"
      "commands:\n"
      "  metrics <dir> [--csv]   per-module LOC/functions/complexity\n"
      "  functions <dir>         per-function metrics CSV (Lizard-style)\n"
      "  misra <dir> [--max N]   MISRA-subset findings (default N=25)\n"
      "  style <dir> [--max N]   style-guide findings\n"
      "  assess <dir> [--asil X] ISO 26262-6 tables + ASIL gap list\n"
      "  traceability <dir>      requirement-to-code traceability\n"
      "  campaign [--seed N] [--population N] [--generations N] [--timing]\n"
      "           [--artifact-dir DIR] [--checkpoint-dir DIR]\n"
      "           [--stop-after N] [--shard i/N]\n"
      "                          coverage-guided scenario campaign (JSON);\n"
      "                          --artifact-dir exports every kept finding\n"
      "                          as a replay artifact; --checkpoint-dir\n"
      "                          persists checkpoint + corpus store and\n"
      "                          resumes bit-identically; --stop-after N\n"
      "                          checkpoints and exits after N generations;\n"
      "                          --shard i/N evaluates one slice of one\n"
      "                          generation and writes a delta\n"
      "  merge-corpus --checkpoint-dir DIR [campaign flags]\n"
      "                          fold one generation of shard deltas into\n"
      "                          the checkpoint; byte-identical to the\n"
      "                          unsharded run; prints the campaign JSON\n"
      "                          when the final generation merges\n"
      "  serve --requests F | --stdin [--jobs N] [--timing]\n"
      "                          warm-process request loop: JSON-array or\n"
      "                          NDJSON campaign/analyze/stats requests,\n"
      "                          one response line each, in request order;\n"
      "                          --stdin answers one request per input line\n"
      "                          until EOF or a shutdown request; exit 2 if\n"
      "                          any request failed\n"
      "  replay <artifact.json> [--diff] [--minimize] [--out F]\n"
      "                          re-execute a finding bit-identically (FNV\n"
      "                          digest gate; exit 2 on divergence); --diff\n"
      "                          re-runs it across all backends and\n"
      "                          quantized-vs-fp32; --minimize shrinks the\n"
      "                          repro via delta debugging and writes the\n"
      "                          smallest artifact to F\n"
      "  trace [--trace-out F] [--metrics-out F] [--seed N] [--ticks N]\n"
      "        [--population N] [--generations N] [--timing]\n"
      "                          traced pilot drive + mini campaign; writes\n"
      "                          Chrome trace-event JSON (chrome://tracing)\n"
      "  dump [--out F] [--ticks N] [--timing]\n"
      "                          instrumented pilot drive, then an explicit\n"
      "                          flight-recorder dump (validated before\n"
      "                          writing; trace_lint checks it too)\n"
      "common flags:\n"
      "  --jobs N                analysis threads (default: all cores)\n"
      "  --cache-dir DIR         reuse per-file analysis artifacts across\n"
      "                          runs; only changed files are re-analyzed\n"
      "  --no-cache              ignore --cache-dir for this run\n"
      "  --cache-stats           print cache hit/miss counts to stderr\n"
      "  --cache-gc              prune cache entries this run did not use\n"
      "  --flight-dump F         black-box dump file for campaign/serve\n"
      "                          (default certkit_flight_dump.json); when\n"
      "                          given explicitly, also arms a dump on the\n"
      "                          first safe-stop oracle verdict\n");
  return 1;
}

certkit::support::Result<CodebaseAnalysis> Load(const FlagParser& flags) {
  if (flags.positional().size() < 2) {
    return certkit::support::InvalidArgumentError("missing <source-dir>");
  }
  const auto jobs = flags.GetInt("jobs", 0);
  if (!jobs.has_value()) {
    return certkit::support::InvalidArgumentError("--jobs must be an integer");
  }
  DriverOptions options;
  options.jobs = static_cast<int>(*jobs);
  if (!flags.GetBool("no-cache")) {
    options.cache_dir = flags.GetOr("cache-dir", "");
    options.cache_gc = flags.GetBool("cache-gc");
  }
  AnalysisDriver driver(options);
  auto analysis = driver.AnalyzeTree(flags.positional()[1]);
  if (flags.GetBool("cache-stats")) {
    // stderr so every command's stdout stays byte-identical with and
    // without the cache.
    auto& reg = certkit::obs::MetricsRegistry::Instance();
    std::fprintf(stderr, "cache: %lld hits, %lld misses\n",
                 static_cast<long long>(
                     reg.GetCounter("driver/cache_hits").value()),
                 static_cast<long long>(
                     reg.GetCounter("driver/cache_misses").value()));
    if (options.cache_gc) {
      std::fprintf(
          stderr, "cache-gc: %lld stale entries removed\n",
          static_cast<long long>(
              reg.GetCounter("driver/cache_gc_removed").value()));
    }
  }
  return analysis;
}

int CmdMetrics(const FlagParser& flags) {
  auto analysis = Load(flags);
  if (!analysis.ok()) {
    std::printf("error: %s\n", analysis.status().ToString().c_str());
    return 1;
  }
  const auto rows = analysis.value().ModuleMetricsRows();
  if (flags.GetBool("csv")) {
    certkit::report::Table table(
        {"module", "loc", "nloc", "functions", "cc_over10", "cc_over20",
         "cc_over50", "max_cc"});
    for (const auto& m : rows) {
      table.AddRow({m.name, std::to_string(m.loc), std::to_string(m.nloc),
                    std::to_string(m.function_count),
                    std::to_string(m.FunctionsOverCc(10)),
                    std::to_string(m.FunctionsOverCc(20)),
                    std::to_string(m.FunctionsOverCc(50)),
                    std::to_string(m.max_cc)});
    }
    std::printf("%s", table.ToCsv().c_str());
  } else {
    std::printf("%s",
                certkit::report::RenderModuleComplexity(rows).c_str());
  }
  return 0;
}

int PrintFindings(const std::vector<certkit::rules::Finding>& findings,
                  long long max_shown) {
  long long shown = 0;
  for (const auto& f : findings) {
    if (shown++ >= max_shown) {
      std::printf("  ... and %zu more (raise --max to see them)\n",
                  findings.size() - static_cast<std::size_t>(max_shown));
      break;
    }
    std::printf("  %s:%d [%s] %s\n", f.file.c_str(), f.line,
                f.rule_id.c_str(), f.message.c_str());
  }
  std::printf("total findings: %zu\n", findings.size());
  return 0;
}

// Per-function metrics in Lizard-style CSV: the raw data behind Figure 3.
// The metrics themselves are precomputed by the driver; only the
// maintainability index (which needs the parsed model) is derived here.
int CmdFunctions(const FlagParser& flags) {
  auto analysis = Load(flags);
  if (!analysis.ok()) {
    std::printf("error: %s\n", analysis.status().ToString().c_str());
    return 1;
  }
  const CodebaseAnalysis& cb = analysis.value();
  certkit::report::Table table({"module", "function", "cc", "nloc",
                                "params", "returns", "tokens", "mi"});
  for (const auto& file_indices : cb.files_by_module) {
    for (const std::size_t fi : file_indices) {
      const auto& fa = cb.files[fi];
      const auto& model =
          cb.modules[fa.module_index].files[fa.file_index];
      for (std::size_t k = 0; k < fa.functions.size(); ++k) {
        const auto& m = fa.functions[k];
        const double mi = certkit::metrics::FunctionMaintainabilityIndex(
            model, model.functions[k]);
        table.AddRow({fa.module, m.qualified_name,
                      std::to_string(m.cyclomatic_complexity),
                      std::to_string(m.nloc), std::to_string(m.param_count),
                      std::to_string(m.return_count),
                      std::to_string(m.token_count),
                      certkit::support::FormatDouble(mi, 1)});
      }
    }
  }
  std::printf("%s", table.ToCsv().c_str());
  return 0;
}

int CmdMisra(const FlagParser& flags) {
  auto analysis = Load(flags);
  if (!analysis.ok()) {
    std::printf("error: %s\n", analysis.status().ToString().c_str());
    return 1;
  }
  const auto max_shown = flags.GetInt("max", 25);
  if (!max_shown.has_value()) {
    std::printf("error: --max must be an integer\n");
    return 1;
  }
  std::vector<certkit::rules::Finding> findings;
  for (const auto& file_indices : analysis.value().files_by_module) {
    for (const std::size_t fi : file_indices) {
      const auto& report = analysis.value().files[fi].misra;
      findings.insert(findings.end(), report.findings.begin(),
                      report.findings.end());
    }
  }
  return PrintFindings(findings, *max_shown);
}

int CmdStyle(const FlagParser& flags) {
  auto analysis = Load(flags);
  if (!analysis.ok()) {
    std::printf("error: %s\n", analysis.status().ToString().c_str());
    return 1;
  }
  const auto max_shown = flags.GetInt("max", 25);
  if (!max_shown.has_value()) {
    std::printf("error: --max must be an integer\n");
    return 1;
  }
  std::vector<certkit::rules::Finding> findings;
  for (const auto& file_indices : analysis.value().files_by_module) {
    for (const std::size_t fi : file_indices) {
      const auto& report = analysis.value().files[fi].style.report;
      findings.insert(findings.end(), report.findings.begin(),
                      report.findings.end());
    }
  }
  return PrintFindings(findings, *max_shown);
}

int CmdAssess(const FlagParser& flags) {
  auto analysis = Load(flags);
  if (!analysis.ok()) {
    std::printf("error: %s\n", analysis.status().ToString().c_str());
    return 1;
  }
  const std::string asil_name = flags.GetOr("asil", "D");
  certkit::rules::Asil asil;
  if (asil_name == "A") {
    asil = certkit::rules::Asil::kA;
  } else if (asil_name == "B") {
    asil = certkit::rules::Asil::kB;
  } else if (asil_name == "C") {
    asil = certkit::rules::Asil::kC;
  } else if (asil_name == "D") {
    asil = certkit::rules::Asil::kD;
  } else {
    std::printf("error: --asil must be one of A, B, C, D\n");
    return 1;
  }

  const CodebaseAnalysis& cb = analysis.value();
  certkit::rules::Assessor assessor(cb.MakeAssessorInputs());
  struct Entry {
    const certkit::rules::TechniqueTable* table;
    certkit::rules::TableAssessment assessment;
  };
  std::vector<Entry> entries;
  entries.push_back({&certkit::rules::CodingGuidelinesTable(),
                     assessor.AssessCodingGuidelines()});
  entries.push_back({&certkit::rules::ArchitecturalDesignTable(),
                     assessor.AssessArchitecture()});
  entries.push_back(
      {&certkit::rules::UnitDesignTable(), assessor.AssessUnitDesign()});

  int gaps = 0;
  for (const auto& e : entries) {
    std::printf("%s\n", certkit::report::RenderTechniqueAssessment(
                            *e.table, e.assessment)
                            .c_str());
    for (std::size_t i = 0; i < e.table->techniques.size(); ++i) {
      if (!certkit::rules::Satisfies(e.assessment.assessments[i].verdict,
                                     e.table->techniques[i].At(asil))) {
        ++gaps;
        std::printf("ASIL-%s gap: %s — %s\n", asil_name.c_str(),
                    e.table->techniques[i].name.c_str(),
                    e.assessment.assessments[i].evidence.c_str());
      }
    }
  }
  std::printf("\n%d technique(s) below the ASIL-%s recommendation\n", gaps,
              asil_name.c_str());
  return gaps == 0 ? 0 : 2;
}

int CmdTraceability(const FlagParser& flags) {
  auto analysis = Load(flags);
  if (!analysis.ok()) {
    std::printf("error: %s\n", analysis.status().ToString().c_str());
    return 1;
  }
  const auto trace = analysis.value().MergedTrace();
  for (const auto& link : trace.links) {
    std::printf("  %-16s %s:%d -> %s\n", link.requirement.c_str(),
                link.file.c_str(), link.comment_line,
                link.function.empty() ? "(dangling)" : link.function.c_str());
  }
  std::printf("requirements: %zu distinct; traced functions: %.1f%% "
              "(%lld of %lld untraced)\n",
              trace.Requirements().size(), 100.0 * trace.TraceabilityRatio(),
              static_cast<long long>(trace.untraced_functions.size()),
              static_cast<long long>(trace.functions_total));
  return 0;
}

// Coverage-guided scenario campaign over the in-repo AD pipeline. Unlike
// the analysis commands this needs no <source-dir>: the subject is the
// instrumented detector compiled into the binary. With --checkpoint-dir the
// campaign persists (checkpoint + corpus store) and resumes bit-identically;
// with --shard i/N it evaluates one slice of one generation and writes a
// delta for `certkit merge-corpus`.
int CmdCampaign(const FlagParser& flags) {
  namespace campaign = certkit::campaign;
  campaign::CampaignConfig config;
  bool shard_mode = false;
  std::string error;
  if (!campaign::BuildCampaignConfig(flags, &config, &shard_mode, &error)) {
    std::printf("error: %s\n", error.c_str());
    return 1;
  }

  // Arm the black box: a fatal signal mid-campaign dumps the flight
  // recorder through a pre-opened fd, so `kill -ABRT` leaves a post-mortem
  // naming the last completed tick stage and safety state. An explicit
  // --flight-dump additionally arms the oracle trigger (first safe-stop).
  const std::string flight_path =
      flags.GetOr("flight-dump", "certkit_flight_dump.json");
  certkit::obs::SetFlightWallClock(config.include_timing);
  if (!certkit::obs::InstallFlightSignalHandlers(flight_path)) {
    std::printf("error: cannot open --flight-dump '%s'\n",
                flight_path.c_str());
    return 1;
  }
  if (flags.Get("flight-dump").has_value()) {
    certkit::obs::ArmFlightOracleDump(flight_path);
  }

  campaign::CampaignState state = campaign::CampaignRunner::FreshState(config);
  if (!config.checkpoint_dir.empty()) {
    const auto load = campaign::LoadCampaignCheckpoint(config.checkpoint_dir,
                                                       config, &state, &error);
    if (load == campaign::CheckpointLoad::kMismatch ||
        load == campaign::CheckpointLoad::kCorrupt) {
      std::printf("error: %s\n",
                  campaign::CheckpointDiagnostic(load, config.checkpoint_dir,
                                                 error)
                      .c_str());
      return 1;
    }
  }

  campaign::CampaignRunner runner(config);
  if (shard_mode) {
    if (state.next_generation >= config.generations) {
      std::printf("{\"shard\":\"%d/%d\",\"status\":\"complete\","
                  "\"next_generation\":%d}\n",
                  config.shard_index, config.shard_count,
                  state.next_generation);
      return 0;
    }
    const campaign::ShardDelta delta = runner.RunShardGeneration(&state);
    const auto status =
        campaign::WriteShardDelta(config.checkpoint_dir, config, delta);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("{\"shard\":\"%d/%d\",\"generation\":%d,\"evaluated\":%zu,"
                "\"delta\":%s}\n",
                delta.shard_index, delta.shard_count, delta.generation,
                delta.evals.size(),
                certkit::support::JsonEscape(
                    campaign::ShardDeltaPath(config.checkpoint_dir,
                                             delta.generation,
                                             delta.shard_index,
                                             delta.shard_count))
                    .c_str());
    return 0;
  }

  const auto result = runner.RunFrom(&state);
  if (!result.complete) {
    std::printf("{\"status\":\"checkpointed\",\"next_generation\":%d,"
                "\"generations\":%d,\"evaluated_total\":%lld}\n",
                result.next_generation, config.generations,
                static_cast<long long>(result.evaluated_total));
    return 0;
  }
  std::printf("%s\n", campaign::CampaignJson(result).c_str());
  return 0;
}

// Folds one generation of shard deltas (written by `certkit campaign
// --shard i/N`) into the shared checkpoint, exactly as the unsharded serial
// merge would have — the merged campaign is byte-identical to a run that
// never sharded. Prints the full campaign JSON once the final generation
// merges; a progress line otherwise.
int CmdMergeCorpus(const FlagParser& flags) {
  namespace campaign = certkit::campaign;
  campaign::CampaignConfig config;
  bool shard_mode = false;
  std::string error;
  if (!campaign::BuildCampaignConfig(flags, &config, &shard_mode, &error)) {
    std::printf("error: %s\n", error.c_str());
    return 1;
  }
  if (shard_mode) {
    std::printf("error: merge-corpus takes the campaign flags, not --shard\n");
    return 1;
  }
  if (config.checkpoint_dir.empty()) {
    std::printf("error: merge-corpus requires --checkpoint-dir\n");
    return 1;
  }

  campaign::CampaignState state = campaign::CampaignRunner::FreshState(config);
  const auto load = campaign::LoadCampaignCheckpoint(config.checkpoint_dir,
                                                     config, &state, &error);
  if (load == campaign::CheckpointLoad::kMismatch ||
      load == campaign::CheckpointLoad::kCorrupt) {
    std::printf("error: %s\n",
                campaign::CheckpointDiagnostic(load, config.checkpoint_dir,
                                               error)
                    .c_str());
    return 1;
  }
  if (state.next_generation >= config.generations) {
    std::printf("%s\n",
                campaign::CampaignJson(campaign::CampaignRunner::Finalize(
                                           config, state))
                    .c_str());
    return 0;
  }

  std::vector<campaign::ShardDelta> deltas;
  if (!campaign::LoadShardDeltas(config.checkpoint_dir, config,
                                 state.next_generation, &deltas, &error)) {
    std::printf("error: %s\n", error.c_str());
    return 1;
  }
  campaign::CampaignRunner runner(config);
  const int merged_generation = state.next_generation;
  if (!runner.MergeShardDeltas(deltas, &state, &error)) {
    std::printf("error: %s\n", error.c_str());
    return 1;
  }
  const auto status = campaign::WriteCampaignCheckpoint(config.checkpoint_dir,
                                                        config, state);
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return 1;
  }
  campaign::RemoveShardDeltas(config.checkpoint_dir, merged_generation);
  if (state.next_generation >= config.generations) {
    std::printf("%s\n",
                campaign::CampaignJson(campaign::CampaignRunner::Finalize(
                                           config, state))
                    .c_str());
    return 0;
  }
  std::printf("{\"status\":\"merged\",\"generation\":%d,"
              "\"next_generation\":%d,\"generations\":%d}\n",
              merged_generation, state.next_generation, config.generations);
  return 0;
}

// Warm-process request loop: reads a batch of campaign/analysis requests
// (JSON array or NDJSON), fans them out over the service pool, and prints
// one response line per request in request order. Exit 0 when every request
// succeeded, 2 when any returned ok=false, 1 on usage/parse errors.
int CmdServe(const FlagParser& flags) {
  namespace campaign = certkit::campaign;
  const std::string requests_path = flags.GetOr("requests", "");
  const bool use_stdin = flags.GetBool("stdin");
  if (requests_path.empty() && !use_stdin) {
    std::printf("error: serve needs --requests <file> (JSON array or "
                "NDJSON of request objects) or --stdin\n");
    return 1;
  }
  const auto jobs = flags.GetInt("jobs", 0);
  if (!jobs) {
    std::printf("error: --jobs must be an integer\n");
    return 1;
  }
  const bool timing = flags.GetBool("timing");
  // Same black-box arming as `certkit campaign`: a long-lived server is
  // exactly the process whose death needs a post-mortem.
  const std::string flight_path =
      flags.GetOr("flight-dump", "certkit_flight_dump.json");
  certkit::obs::SetFlightWallClock(timing);
  if (!certkit::obs::InstallFlightSignalHandlers(flight_path)) {
    std::printf("error: cannot open --flight-dump '%s'\n",
                flight_path.c_str());
    return 1;
  }
  if (flags.Get("flight-dump").has_value()) {
    certkit::obs::ArmFlightOracleDump(flight_path);
  }
  if (use_stdin) {
    campaign::CampaignService service(static_cast<int>(*jobs), timing);
    const campaign::ServeLoopResult result =
        campaign::RunServeLoop(std::cin, std::cout, &service);
    return result.failed > 0 ? 2 : 0;
  }
  const auto text = certkit::support::ReadFile(requests_path);
  if (!text.ok()) {
    std::printf("error: %s\n", text.status().ToString().c_str());
    return 1;
  }
  std::vector<campaign::ServiceRequest> requests;
  std::string error;
  if (!campaign::ParseServiceRequests(text.value(), &requests, &error)) {
    std::printf("error: %s: %s\n", requests_path.c_str(), error.c_str());
    return 1;
  }
  campaign::CampaignService service(static_cast<int>(*jobs), timing);
  const auto responses = service.Process(requests);
  bool any_failed = false;
  for (const auto& response : responses) {
    std::printf("%s\n", campaign::ServiceResponseJson(response).c_str());
    if (!response.ok) any_failed = true;
  }
  return any_failed ? 2 : 0;
}

// Replays a finding artifact: re-executes its candidate and gates on the
// recorded TickReport digest. --diff adds the differential oracle (every
// other backend + quantized-vs-fp32); --minimize delta-debugs the candidate
// down to the smallest one that still reproduces the divergence (or, when
// nothing diverges, the recorded oracle outcome) and writes it as a new
// artifact. Exit 0 = bit-identical and no differential divergence; 2 = some
// divergence; 1 = usage/parse errors.
int CmdReplay(const FlagParser& flags) {
  namespace campaign = certkit::campaign;
  if (flags.positional().size() < 2) {
    std::printf("error: replay needs an <artifact.json>\n");
    return 1;
  }
  const std::string path = flags.positional()[1];
  const auto text = certkit::support::ReadFile(path);
  if (!text.ok()) {
    std::printf("error: %s\n", text.status().ToString().c_str());
    return 1;
  }
  campaign::ReplayArtifact artifact;
  std::string error;
  if (!campaign::ParseReplayArtifact(text.value(), &artifact, &error)) {
    std::printf("error: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }

  const campaign::ReplayOutcome replay = campaign::ExecuteReplay(artifact);
  std::printf("replay: candidate %lld (%d ticks, backend %s%s)\n",
              static_cast<long long>(artifact.candidate.id),
              artifact.candidate.ticks,
              campaign::BackendTag(artifact.candidate.backend),
              artifact.candidate.quantized ? ", quantized" : "");
  std::printf("digest: recorded %s, replayed %s — %s\n",
              campaign::HexU64(artifact.report_digest).c_str(),
              campaign::HexU64(replay.report_digest).c_str(),
              replay.digest_matches ? "bit-identical" : "DIVERGED");
  if (!replay.digest_matches && replay.divergence.diverged) {
    std::printf("divergence: first at tick %lld in stream '%s'\n",
                static_cast<long long>(replay.divergence.tick),
                replay.divergence.stream.c_str());
  }
  if (!replay.verdict_matches) {
    std::printf("verdict: outcome changed (recorded %s)\n",
                artifact.outcome.c_str());
  }

  bool diverged = !replay.digest_matches || !replay.verdict_matches;
  // The divergence the minimizer should preserve, when one exists.
  const campaign::VariantSpec* to_minimize = nullptr;
  campaign::DifferentialReport diff;
  if (flags.GetBool("diff") || flags.GetBool("minimize")) {
    diff = campaign::RunDifferential(artifact.candidate);
    if (flags.GetBool("diff")) {
      std::printf("%s\n", campaign::DifferentialReportJson(diff).c_str());
    }
    for (const campaign::DifferentialArm& arm : diff.arms) {
      if (arm.divergence.diverged || !arm.outcome_matches) {
        if (to_minimize == nullptr) to_minimize = &arm.spec;
        std::printf("differential: variant '%s' %s (tick %lld, stream %s)\n",
                    arm.spec.name.c_str(),
                    arm.outcome_matches ? "stream diverged"
                                        : "outcome diverged",
                    static_cast<long long>(arm.divergence.tick),
                    arm.divergence.diverged ? arm.divergence.stream.c_str()
                                            : "-");
      }
    }
    if (diff.divergent > 0) diverged = true;
  }

  if (flags.GetBool("minimize")) {
    const campaign::ReplayPredicate keeps =
        to_minimize != nullptr
            ? campaign::DivergencePredicate(*to_minimize)
            : campaign::OutcomePredicate(artifact.outcome);
    std::printf("minimize: preserving %s\n",
                to_minimize != nullptr ? to_minimize->name.c_str()
                                       : "oracle outcome");
    const campaign::MinimizeResult shrunk =
        campaign::Minimize(artifact.candidate, keeps);
    std::printf("minimize: cost %lld -> %lld (%d moves, %d probes)\n",
                static_cast<long long>(shrunk.initial_cost),
                static_cast<long long>(shrunk.final_cost),
                shrunk.accepted_moves, shrunk.probes);
    const std::string out_path = flags.GetOr("out", path + ".min.json");
    const campaign::EvalResult eval =
        campaign::CampaignRunner::Evaluate(shrunk.candidate);
    const std::string json = campaign::ReplayArtifactJson(
        campaign::MakeArtifact(shrunk.candidate, eval));
    const auto status = certkit::support::WriteFile(out_path, json + "\n");
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("minimize: wrote %s\n", out_path.c_str());
  }

  return diverged ? 2 : 0;
}

// Observability demo: run a traced pilot drive (covering every pipeline
// stage plus the safety block) and a small traced campaign, then export the
// Chrome trace-event file and a metrics snapshot. Exports are validated
// before they are written, and — the core contract — byte-identical for any
// --jobs at a fixed --seed; --timing opts into wall-clock fields.
int CmdObsTrace(const FlagParser& flags) {
  namespace obs = certkit::obs;
  const auto seed = flags.GetInt("seed", 1);
  const auto jobs = flags.GetInt("jobs", 1);
  const auto ticks = flags.GetInt("ticks", 40);
  const auto population = flags.GetInt("population", 4);
  const auto generations = flags.GetInt("generations", 2);
  if (!seed || !jobs || !ticks || !population || !generations) {
    std::printf("error: trace flags must be integers\n");
    return 1;
  }
  const bool timing = flags.GetBool("timing");
  const std::string trace_out = flags.GetOr("trace-out", "certkit_trace.json");
  const std::string metrics_out = flags.GetOr("metrics-out", "");

  obs::SetTracingEnabled(true);

  // Solo pilot drive on this thread: one track with every stage span.
  {
    obs::SpanCapture capture;
    adpilot::PilotConfig cfg;
    cfg.safety.tick_deadline = 5.0;
    adpilot::ApolloPilot pilot(cfg);
    for (int t = 0; t < static_cast<int>(*ticks); ++t) pilot.Tick();
    obs::TraceRecorder::Instance().AddTrack("pilot drive", capture.Take());
  }

  // Mini campaign: fleet candidate tracks + the control track.
  certkit::campaign::CampaignConfig config;
  config.seed = static_cast<std::uint64_t>(*seed);
  config.jobs = static_cast<int>(*jobs);
  config.population = static_cast<int>(*population);
  config.generations = static_cast<int>(*generations);
  config.ticks = static_cast<int>(*ticks);
  config.include_timing = timing;
  certkit::campaign::CampaignRunner runner(config);
  const auto campaign_result = runner.Run();

  const std::string trace_json =
      obs::ChromeTraceJson(obs::TraceRecorder::Instance().Snapshot(), timing);
  std::string error;
  if (!obs::ValidateChromeTrace(trace_json, &error)) {
    std::printf("error: generated trace failed validation: %s\n",
                error.c_str());
    return 1;
  }
  auto status = certkit::support::WriteFile(trace_out, trace_json);
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("trace: %s (%lld tracks, %zu bytes) — load in "
              "chrome://tracing or Perfetto\n",
              trace_out.c_str(),
              static_cast<long long>(
                  obs::TraceRecorder::Instance().track_count()),
              trace_json.size());

  if (!metrics_out.empty()) {
    const std::string metrics_json = obs::MetricsJson(
        obs::MetricsRegistry::Instance().Snapshot(), timing);
    status = certkit::support::WriteFile(metrics_out, metrics_json);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("metrics: %s (%zu bytes)\n", metrics_out.c_str(),
                metrics_json.size());
  }
  std::printf("campaign: evaluated %lld candidates over %d generations\n",
              static_cast<long long>(campaign_result.evaluated_total),
              config.generations);
  return 0;
}

// Explicit flight-recorder dump: run a short instrumented pilot drive (so
// the rings hold real stage/safety events), then drain the black box into
// one validated JSON document — the same writer the fatal-signal and
// oracle triggers use.
int CmdDump(const FlagParser& flags) {
  namespace obs = certkit::obs;
  const auto ticks = flags.GetInt("ticks", 25);
  if (!ticks || *ticks < 1) {
    std::printf("error: --ticks must be a positive integer\n");
    return 1;
  }
  const bool timing = flags.GetBool("timing");
  const std::string out = flags.GetOr("out", "certkit_flight_dump.json");
  obs::SetFlightWallClock(timing);
  {
    adpilot::PilotConfig cfg;
    cfg.safety.tick_deadline = 5.0;
    adpilot::ApolloPilot pilot(cfg);
    for (int t = 0; t < static_cast<int>(*ticks); ++t) pilot.Tick();
  }
  const std::string dump =
      obs::FlightDumpString(obs::FlightDumpTrigger::kExplicit);
  std::string error;
  if (!obs::ValidateFlightDump(dump, &error)) {
    std::printf("error: generated dump failed validation: %s\n",
                error.c_str());
    return 1;
  }
  const auto status = certkit::support::WriteFile(out, dump);
  if (!status.ok()) {
    std::printf("error: %s\n", status.ToString().c_str());
    return 1;
  }
  const obs::FlightRecorderStats stats = obs::GetFlightRecorderStats();
  std::printf("flight dump: %s (%lld events recorded, %lld dropped, "
              "%zu bytes)\n",
              out.c_str(), static_cast<long long>(stats.events),
              static_cast<long long>(stats.dropped), dump.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  const std::string command = flags.positional()[0];
  if (command == "campaign") return CmdCampaign(flags);
  if (command == "merge-corpus") return CmdMergeCorpus(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "replay") return CmdReplay(flags);
  if (command == "metrics") return CmdMetrics(flags);
  if (command == "functions") return CmdFunctions(flags);
  if (command == "misra") return CmdMisra(flags);
  if (command == "style") return CmdStyle(flags);
  if (command == "assess") return CmdAssess(flags);
  if (command == "traceability") return CmdTraceability(flags);
  if (command == "trace") return CmdObsTrace(flags);
  if (command == "dump") return CmdDump(flags);
  std::printf("unknown command '%s'\n", command.c_str());
  return Usage();
}
